"""Closed-form latency models for each synchronization scheme (§V-A).

Each function predicts the *half round-trip time* of the ping-pong benchmark
for a payload of ``s`` bytes, mirroring the protocol diagrams of Figure 2.
Only costs on the critical path appear: e.g. ``t_start`` is excluded because
the benchmark (re)starts its request while the partner's message is still in
flight.  Tests assert simulation and model agree tightly, which pins the
protocol implementations to the paper's cost arguments.
"""

from __future__ import annotations

from repro.core.engine import T_MATCH, T_POLL, T_TEST_BASE
from repro.network.loggp import LogGPParams, TransportParams

#: ctrl-message handling cost inside the target's progress loop (µs);
#: mirrors the endpoint's per-packet bookkeeping, which is untimed beyond
#: the arrival wakeup — kept as an explicit model fudge of zero.
CTRL_HANDLING = 0.0


def _engine(params: TransportParams, s: int, same_node: bool) -> LogGPParams:
    return params.engine_for(s, same_node)


def _wire(params: TransportParams, s: int, same_node: bool) -> float:
    """Injection + latency for one message of ``s`` payload bytes."""
    if same_node:
        p = params.shm
        if s <= params.inline_max:
            return p.L
        return p.L + s * p.G
    p = _engine(params, s, same_node)
    return p.g + s * p.G + p.L


def na_test_success_cost(params: TransportParams | None = None) -> float:
    """CPU cost of a test() that matches exactly one fresh notification —
    the paper's o_r (0.07 µs with the defaults; ``o_recv`` rescales it)."""
    if params is None:
        return T_TEST_BASE + T_POLL + T_MATCH
    return params.o_recv


def na_put_half_rtt(params: TransportParams, s: int,
                    same_node: bool = False) -> float:
    """Notified put: o_s + wire + matched test at the target."""
    return params.o_send + _wire(params, s, same_node) \
        + na_test_success_cost(params)


def na_get_half_rtt(params: TransportParams, s: int,
                    same_node: bool = False) -> float:
    """Notified-get ping-pong half RTT on a **reliable** network.

    The target's notification fires when the read is *served* (§VIII case
    1), i.e. after the request leg plus the response injection — the
    response's wire latency L is off the critical path because the pong is
    driven by the notification, not by the data arrival."""
    if same_node:
        body = params.shm.L + s * params.shm.G
    else:
        from repro.network.fabric import GET_REQUEST_BYTES
        fma = params.fma
        req = fma.g + GET_REQUEST_BYTES * fma.G + fma.L
        resp_engine = _engine(params, s, same_node)
        resp_inject = resp_engine.g + s * resp_engine.G
        body = req + resp_inject
    return params.o_send + body + na_test_success_cost(params)


def mp_eager_half_rtt(params: TransportParams, s: int,
                      same_node: bool = False) -> float:
    """Eager send/recv: software overhead at both ends, the wire, and the
    receive-side user-buffer copy."""
    from repro.mpi.constants import EAGER_HEADER
    wire = _wire(params, s + EAGER_HEADER, same_node)
    copy = params.copy_o + s * params.copy_G
    return 2 * params.mpi_overhead + wire + copy


def mp_rndv_half_rtt(params: TransportParams, s: int,
                     same_node: bool = False) -> float:
    """Rendezvous: RTS + (async-answered) CTS + zero-copy DATA."""
    from repro.mpi.constants import CTS_BYTES, RTS_BYTES
    rts = _wire(params, RTS_BYTES, same_node)
    cts = _wire(params, CTS_BYTES, same_node) + params.async_progress_delay
    data = _wire(params, s, same_node)
    return params.mpi_overhead + rts + cts + data


def onesided_pscw_half_rtt(params: TransportParams, s: int,
                           same_node: bool = False) -> float:
    """General active target: the put must be *remotely complete* before
    MPI_Win_complete's control message goes out, so the half RTT carries the
    data commit, its ack, and the complete message (Figure 2c)."""
    from repro.rma.window import PSCW_MSG_BYTES
    eng = _engine(params, s, same_node)
    put_commit = params.o_send + _wire(params, s, same_node)
    ack = params.shm.L if same_node else eng.L
    complete = _wire(params, PSCW_MSG_BYTES, same_node)
    return put_commit + ack + complete + CTRL_HANDLING


def raw_put_half_rtt(params: TransportParams, s: int,
                     same_node: bool = False) -> float:
    """Busy-wait lower bound: bare transfer, no legal synchronization.

    Includes the o_send call cost of the put itself (MPI_Put + flush)."""
    return params.o_send + _wire(params, s, same_node)


#: protocol transaction counts on the critical path of one producer-consumer
#: transfer (Figure 2): what the transaction-audit benchmark checks.
PROTOCOL_TRANSACTIONS = {
    "mp_eager": 1,
    "mp_rndv": 3,
    "onesided_put_flag": 3,   # put + sync + flag
    "onesided_get": 3,        # ready flag + get request + get response
    "na_put": 1,
    "na_get": 2,              # request + response (single API call)
}


# ---------------------------------------------------------------------------
# Application-level model: the pipelined stencil (Figures 1 / 4b)
# ---------------------------------------------------------------------------
def stencil_row_cost(params: TransportParams, mode: str, cols_local: int,
                     flops_per_us: float, point_flops: float = 4.0) -> float:
    """Steady-state per-row cost of a middle pipeline rank (µs).

    In steady state the pipeline throughput is bounded by the per-rank CPU
    work per row: receive-side synchronization + row compute + send-side
    issue.  Wire latency only delays the pipeline fill.
    """
    from repro.mpi.endpoint import T_POST
    compute = cols_local * point_flops / flops_per_us
    fma = params.fma
    inject = fma.g + 8 * fma.G
    if mode == "na":
        recv = params.t_start + na_test_success_cost(params)
        send = params.o_send + inject
    elif mode == "mp":
        from repro.mpi.constants import EAGER_HEADER
        recv = (T_POST + params.mpi_overhead
                + params.copy_o + 8 * params.copy_G)
        send = params.mpi_overhead + (fma.g + (8 + EAGER_HEADER) * fma.G)
    else:
        raise ValueError(f"no steady-state model for mode {mode!r}")
    return recv + compute + send


def stencil_gmops(params: TransportParams, mode: str, nranks: int,
                  rows: int, cols: int, flops_per_us: float,
                  point_flops: float = 4.0,
                  point_mops: float = 4.0) -> float:
    """Predicted GMOPS of the Sync_p2p kernel (steady-state + fill)."""
    cols_local = cols // nranks
    row = stencil_row_cost(params, mode, cols_local, flops_per_us,
                           point_flops)
    fill = (nranks - 1) * (row + params.fma.L)
    total = (rows - 1) * row + fill
    mops = (rows - 1) * (cols - 1) * point_mops
    return mops / (total * 1000.0)


# ---------------------------------------------------------------------------
# Application-level model: the k-ary reduction tree (Figure 4c)
# ---------------------------------------------------------------------------
def tree_depth(nranks: int, arity: int) -> int:
    """Depth of the k-ary reduction tree over ``nranks`` ranks."""
    depth, reach = 0, 1
    while reach < nranks:
        reach = reach * arity + 1
        depth += 1
    return depth


def tree_reduce_time(params: TransportParams, nranks: int, arity: int,
                     s: int = 8) -> float:
    """Estimated NA tree-reduction latency.

    Per level: the child's issue + wire, plus the parent's counting wait.
    Notifications arrive one by one, so the waiting parent wakes per
    arrival and pays a full test pass each time (request load, CQ poll,
    match) — ``arity`` wake-ups per level, not one.  Two opposing effects
    are not modelled and keep this an estimate within ~2x: the barrier-exit
    skew of the starting ranks (pushes the simulation up) and the
    pipelining between levels of deep narrow trees (pushes it down).
    """
    scale = params.o_recv / (T_TEST_BASE + T_POLL + T_MATCH)
    per_wake = (T_TEST_BASE + 2 * T_POLL + T_MATCH) * scale
    per_level = (params.o_send + _wire(params, s, False) + params.t_start
                 + arity * per_wake)
    return tree_depth(nranks, arity) * per_level
