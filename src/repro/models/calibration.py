"""Fit LogGP parameters from measured (size, latency) samples.

Regenerates Table I of the paper: run one-way notified-put latency sweeps on
each transport, then least-squares fit ``latency = c + G * s``.  ``G`` is the
slope; ``L`` is recovered by subtracting the known software overheads from
the intercept.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LogGPFit:
    """Result of a linear latency fit."""

    L: float          # recovered zero-byte wire latency, µs
    G: float          # per-byte gap, µs/byte
    intercept: float  # raw fitted intercept (includes software overheads)
    residual: float   # RMS residual of the fit, µs

    def G_ns_per_byte(self) -> float:
        return self.G * 1e3


def fit_loggp(sizes: Sequence[int], latencies: Sequence[float],
              software_overhead: float = 0.0) -> LogGPFit:
    """Least-squares fit of ``latency = intercept + G * size``.

    ``software_overhead`` (o_send + o_recv + per-message engine gap etc.) is
    subtracted from the intercept to recover the wire L.
    """
    s = np.asarray(sizes, dtype=np.float64)
    t = np.asarray(latencies, dtype=np.float64)
    if s.shape != t.shape or s.size < 2:
        raise ValueError("need >=2 matching size/latency samples")
    A = np.vstack([np.ones_like(s), s]).T
    (intercept, G), res, *_ = np.linalg.lstsq(A, t, rcond=None)
    pred = intercept + G * s
    rms = float(np.sqrt(np.mean((pred - t) ** 2)))
    return LogGPFit(L=float(intercept - software_overhead), G=float(G),
                    intercept=float(intercept), residual=rms)
