"""Closed-form LogGP performance models and calibration fits.

:mod:`repro.models.performance` predicts the half round-trip latency of each
synchronization scheme from the LogGP parameters — the validation oracle the
tests compare the simulator against.  :mod:`repro.models.calibration` fits
L and G back out of simulated ping-pong measurements, regenerating Table I.
"""

from repro.models.calibration import LogGPFit, fit_loggp
from repro.models.performance import (
    PROTOCOL_TRANSACTIONS,
    mp_eager_half_rtt,
    mp_rndv_half_rtt,
    na_get_half_rtt,
    na_put_half_rtt,
    onesided_pscw_half_rtt,
    raw_put_half_rtt,
)

__all__ = [
    "na_put_half_rtt",
    "na_get_half_rtt",
    "mp_eager_half_rtt",
    "mp_rndv_half_rtt",
    "onesided_pscw_half_rtt",
    "raw_put_half_rtt",
    "PROTOCOL_TRANSACTIONS",
    "fit_loggp",
    "LogGPFit",
]
