"""Saturation-sweep drivers for the service workloads (svc_kv, svc_pubsub).

Each driver sweeps the aggregate offered load over ``rates`` (the
saturation sweep: latency percentiles stay flat at low load and blow up
past the knee) and reports, per point, the measured-request count, the
p50/p99/p999 of the end-to-end latency distribution (via
:class:`~repro.bench.load.LatencyDigest` — exact-rank, one-bucket-width
accuracy), and the achieved throughput over the measurement window.

Every column is a deterministic virtual-time quantity, so the tables are
byte-identical across ``--jobs``, ``--shards``, and schedulers — the
same contract the paper-figure drivers honor.  The ``rates`` tuple is
the sweep parameter (:data:`repro.bench.runner.SWEEP_PARAMS`), so points
fan out across a ``--jobs`` pool.
"""

from __future__ import annotations

from repro.bench.load import LatencyDigest
from repro.bench.report import Table
from repro.cluster import ClusterConfig

#: default aggregate offered loads (requests/s) for the saturation sweeps;
#: chosen to span flat -> knee -> saturated on the default topologies
KV_RATES = (100_000.0, 1_000_000.0, 4_000_000.0, 16_000_000.0)
PUBSUB_RATES = (50_000.0, 500_000.0, 2_000_000.0, 8_000_000.0)


def _digest_row(latencies, t_end_us: float, warmup_us: float
                ) -> tuple[int, float, float, float, float]:
    """(measured, p50, p99, p999, throughput_rps) for one sweep point."""
    digest = LatencyDigest()
    digest.record_many(latencies)
    p50, p99, p999 = digest.percentiles()
    window_us = float(t_end_us) - float(warmup_us)
    tput = digest.count / window_us * 1e6 if window_us > 0 else 0.0
    return digest.count, p50, p99, p999, float(tput)


def svc_kv(rates=KV_RATES, nservers: int = 4, nclients: int = 8,
           replication: int = 2, reqs_per_client: int = 64,
           get_frac: float = 0.5, nkeys: int = 64, zipf_skew: float = 0.9,
           ranks_per_node: int = 2, seed: int = 42) -> Table:
    """Sharded KV store: offered-load sweep with latency percentiles."""
    # deferred: repro.apps.services itself imports repro.bench.load
    from repro.apps.services import run_kv
    t = Table(
        f"svc_kv: sharded KV saturation sweep ({nservers} servers, "
        f"{nclients} clients, replication={replication}, "
        f"Zipf {zipf_skew})",
        ["rate_rps", "reqs", "measured", "p50_us", "p99_us", "p999_us",
         "tput_rps"])
    for rate in rates:
        r = run_kv(nservers=nservers, nclients=nclients,
                   replication=replication,
                   reqs_per_client=reqs_per_client, rate_rps=rate,
                   get_frac=get_frac, nkeys=nkeys, zipf_skew=zipf_skew,
                   verify=True, seed=seed,
                   config=ClusterConfig(nranks=nservers + nclients,
                                        ranks_per_node=ranks_per_node))
        measured, p50, p99, p999, tput = _digest_row(
            r["lat_put_us"] + r["lat_get_us"], r["t_end_us"],
            r["warmup_us"])
        t.add(rate, r["requests"], measured, round(p50, 3), round(p99, 3),
              round(p999, 3), round(tput, 3))
    t.notes = ("Open-loop offered-load sweep: per-request latency "
               "(put: counting replication acks; get: notified-put RPC "
               "to the primary) vs aggregate request rate.  Percentiles "
               "from the log-histogram digest (exact rank, one bucket "
               "width accuracy).")
    return t


def svc_kv_ft(replications=(1, 2, 3), nservers: int = 4, nclients: int = 8,
              reqs_per_client: int = 64, rate_rps: float = 16_000.0,
              get_frac: float = 0.5, nkeys: int = 64,
              zipf_skew: float = 0.9, death_frac: float = 0.3,
              detect_us: float = 200.0, ckpt_every: int = 8,
              ranks_per_node: int = 2, seed: int = 42) -> Table:
    """Availability and recovery time vs replication degree under a
    mid-run server death.

    Each row runs the fault-tolerant KV service with one server (rank 1)
    killed at ``death_frac`` of the expected run and reports
    availability, acked-write loss, failover count, the p99 latency of
    failover-affected requests (recovery time), and checkpoint-recovery
    coverage.  ``replication=1`` shows measurable acked-write loss; the
    paper's claim is zero loss at ``replication >= 2``.
    """
    # deferred: repro.apps.services itself imports repro.bench.load
    from repro.apps.services import run_kv_ft
    from repro.faults import FaultPlan
    expected_us = reqs_per_client * nclients / rate_rps * 1e6
    death_at = death_frac * expected_us
    t = Table(
        f"svc_kv_ft: availability vs replication ({nservers} servers, "
        f"{nclients} clients, 1 death at {death_frac:.0%} of run, "
        f"detect {detect_us:g}us)",
        ["replication", "reqs", "completed", "availability", "failed",
         "acked_lost", "failovers", "p99_us", "recovery_p99_us",
         "ckpt_epochs", "ckpt_recoverable"])
    for repl in replications:
        cfg = ClusterConfig(
            nranks=nservers + nclients, ranks_per_node=ranks_per_node,
            faults=FaultPlan(node_failures={1: death_at},
                             detect_us=detect_us))
        r = run_kv_ft(nservers=nservers, nclients=nclients,
                      replication=repl, reqs_per_client=reqs_per_client,
                      rate_rps=rate_rps, get_frac=get_frac, nkeys=nkeys,
                      zipf_skew=zipf_skew, verify=(repl >= 2),
                      ckpt_every=ckpt_every, seed=seed, config=cfg)
        _, _, p99, _, _ = _digest_row(
            r["lat_put_us"] + r["lat_get_us"], r["t_end_us"],
            r["warmup_us"])
        if r["lat_affected_us"]:
            _, _, rec_p99, _, _ = _digest_row(
                r["lat_affected_us"], r["t_end_us"], r["warmup_us"])
        else:
            rec_p99 = 0.0
        t.add(repl, r["requests"], r["completed"],
              round(r["availability"], 6), r["failed"], r["acked_lost"],
              r["failovers"], round(p99, 3), round(rec_p99, 3),
              r["ckpt_epochs"], r["ckpt_recoverable"])
    t.notes = ("Continuous node-failure injection: server rank 1 dies "
               "mid-run, its death detected after detect_us.  "
               "recovery_p99_us is the p99 latency among requests that "
               "needed a failover (re-pointed replication credit or get "
               "retry); acked_lost counts acked writes whose whole "
               "final replica set died — zero at replication >= 2.  At "
               "replication == nservers no spare remains for failover, "
               "so a write caught in the detection window fails fast "
               "instead (availability dips: more replicas without "
               "spares is not more availability).  "
               "Node-failure-only plans make no RNG draws, so every "
               "column is byte-identical across --jobs/--shards.")
    return t


def svc_pubsub(rates=PUBSUB_RATES, nbrokers: int = 2, npubs: int = 4,
               nsubs: int = 6, ntopics: int = 8, fanout: int = 3,
               msgs_per_pub: int = 64, batch: int = 4,
               zipf_skew: float = 0.9, ranks_per_node: int = 2,
               seed: int = 42) -> Table:
    """Pub/sub broker: publish-rate sweep with delivery percentiles."""
    # deferred: repro.apps.services itself imports repro.bench.load
    from repro.apps.services import run_pubsub
    t = Table(
        f"svc_pubsub: broker saturation sweep ({nbrokers} brokers, "
        f"{npubs} pubs, {nsubs} subs, fanout={fanout}, batch={batch})",
        ["rate_rps", "published", "delivered", "measured", "p50_us",
         "p99_us", "p999_us", "tput_rps"])
    for rate in rates:
        r = run_pubsub(nbrokers=nbrokers, npubs=npubs, nsubs=nsubs,
                       ntopics=ntopics, fanout=fanout,
                       msgs_per_pub=msgs_per_pub, rate_rps=rate,
                       batch=batch, zipf_skew=zipf_skew, seed=seed,
                       config=ClusterConfig(
                           nranks=nbrokers + npubs + nsubs,
                           ranks_per_node=ranks_per_node))
        measured, p50, p99, p999, tput = _digest_row(
            r["lat_us"], r["t_end_us"], r["warmup_us"])
        t.add(rate, r["published"], r["delivered"], measured,
              round(p50, 3), round(p99, 3), round(p999, 3),
              round(tput, 3))
    t.notes = ("Publish -> subscriber-batch-wakeup latency vs aggregate "
               "publish rate.  Larger batch amortizes wakeups but "
               "stretches the tail — the counting-notification "
               "trade-off, visible in p999.")
    return t
