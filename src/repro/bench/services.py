"""Saturation-sweep drivers for the service workloads (svc_kv, svc_pubsub).

Each driver sweeps the aggregate offered load over ``rates`` (the
saturation sweep: latency percentiles stay flat at low load and blow up
past the knee) and reports, per point, the measured-request count, the
p50/p99/p999 of the end-to-end latency distribution (via
:class:`~repro.bench.load.LatencyDigest` — exact-rank, one-bucket-width
accuracy), and the achieved throughput over the measurement window.

Every column is a deterministic virtual-time quantity, so the tables are
byte-identical across ``--jobs``, ``--shards``, and schedulers — the
same contract the paper-figure drivers honor.  The ``rates`` tuple is
the sweep parameter (:data:`repro.bench.runner.SWEEP_PARAMS`), so points
fan out across a ``--jobs`` pool.
"""

from __future__ import annotations

from repro.bench.load import LatencyDigest
from repro.bench.report import Table
from repro.cluster import ClusterConfig

#: default aggregate offered loads (requests/s) for the saturation sweeps;
#: chosen to span flat -> knee -> saturated on the default topologies
KV_RATES = (100_000.0, 1_000_000.0, 4_000_000.0, 16_000_000.0)
PUBSUB_RATES = (50_000.0, 500_000.0, 2_000_000.0, 8_000_000.0)


def _digest_row(latencies, t_end_us: float, warmup_us: float
                ) -> tuple[int, float, float, float, float]:
    """(measured, p50, p99, p999, throughput_rps) for one sweep point."""
    digest = LatencyDigest()
    digest.record_many(latencies)
    p50, p99, p999 = digest.percentiles()
    window_us = float(t_end_us) - float(warmup_us)
    tput = digest.count / window_us * 1e6 if window_us > 0 else 0.0
    return digest.count, p50, p99, p999, float(tput)


def svc_kv(rates=KV_RATES, nservers: int = 4, nclients: int = 8,
           replication: int = 2, reqs_per_client: int = 64,
           get_frac: float = 0.5, nkeys: int = 64, zipf_skew: float = 0.9,
           ranks_per_node: int = 2, seed: int = 42) -> Table:
    """Sharded KV store: offered-load sweep with latency percentiles."""
    # deferred: repro.apps.services itself imports repro.bench.load
    from repro.apps.services import run_kv
    t = Table(
        f"svc_kv: sharded KV saturation sweep ({nservers} servers, "
        f"{nclients} clients, replication={replication}, "
        f"Zipf {zipf_skew})",
        ["rate_rps", "reqs", "measured", "p50_us", "p99_us", "p999_us",
         "tput_rps"])
    for rate in rates:
        r = run_kv(nservers=nservers, nclients=nclients,
                   replication=replication,
                   reqs_per_client=reqs_per_client, rate_rps=rate,
                   get_frac=get_frac, nkeys=nkeys, zipf_skew=zipf_skew,
                   verify=True, seed=seed,
                   config=ClusterConfig(nranks=nservers + nclients,
                                        ranks_per_node=ranks_per_node))
        measured, p50, p99, p999, tput = _digest_row(
            r["lat_put_us"] + r["lat_get_us"], r["t_end_us"],
            r["warmup_us"])
        t.add(rate, r["requests"], measured, round(p50, 3), round(p99, 3),
              round(p999, 3), round(tput, 3))
    t.notes = ("Open-loop offered-load sweep: per-request latency "
               "(put: counting replication acks; get: notified-put RPC "
               "to the primary) vs aggregate request rate.  Percentiles "
               "from the log-histogram digest (exact rank, one bucket "
               "width accuracy).")
    return t


def svc_pubsub(rates=PUBSUB_RATES, nbrokers: int = 2, npubs: int = 4,
               nsubs: int = 6, ntopics: int = 8, fanout: int = 3,
               msgs_per_pub: int = 64, batch: int = 4,
               zipf_skew: float = 0.9, ranks_per_node: int = 2,
               seed: int = 42) -> Table:
    """Pub/sub broker: publish-rate sweep with delivery percentiles."""
    # deferred: repro.apps.services itself imports repro.bench.load
    from repro.apps.services import run_pubsub
    t = Table(
        f"svc_pubsub: broker saturation sweep ({nbrokers} brokers, "
        f"{npubs} pubs, {nsubs} subs, fanout={fanout}, batch={batch})",
        ["rate_rps", "published", "delivered", "measured", "p50_us",
         "p99_us", "p999_us", "tput_rps"])
    for rate in rates:
        r = run_pubsub(nbrokers=nbrokers, npubs=npubs, nsubs=nsubs,
                       ntopics=ntopics, fanout=fanout,
                       msgs_per_pub=msgs_per_pub, rate_rps=rate,
                       batch=batch, zipf_skew=zipf_skew, seed=seed,
                       config=ClusterConfig(
                           nranks=nbrokers + npubs + nsubs,
                           ranks_per_node=ranks_per_node))
        measured, p50, p99, p999, tput = _digest_row(
            r["lat_us"], r["t_end_us"], r["warmup_us"])
        t.add(rate, r["published"], r["delivered"], measured,
              round(p50, 3), round(p99, 3), round(p999, 3),
              round(tput, 3))
    t.notes = ("Publish -> subscriber-batch-wakeup latency vs aggregate "
               "publish rate.  Larger batch amortizes wakeups but "
               "stretches the tail — the counting-notification "
               "trade-off, visible in p999.")
    return t
