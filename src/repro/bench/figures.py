"""Drivers regenerating every figure and table of the paper's evaluation.

Scale note: the paper ran on Piz Daint at up to thousands of cores; the
drivers default to reduced domains/process counts that preserve the shapes.
Pass ``scale=1.0`` for the closest practical match (slower).
"""

from __future__ import annotations

import numpy as np

from repro.apps.cholesky import run_cholesky
from repro.apps.dht import run_dht
from repro.apps.overlap import OVERLAP_MODES, run_overlap
from repro.apps.pingpong import run_pingpong
from repro.apps.stencil import run_stencil
from repro.apps.tree import run_tree_reduction
from repro.bench.report import Table
from repro.bench.services import svc_kv, svc_kv_ft, svc_pubsub
from repro.cluster import Cluster, ClusterConfig, run_ranks
from repro.models.calibration import fit_loggp
from repro.network.loggp import TransportParams
from repro.sim.engine import events_scheduled

#: message sizes of the Figure 3 sweeps (bytes)
PINGPONG_SIZES = (8, 32, 128, 512, 2048, 8192, 32768, 131072)
OVERLAP_SIZES = (64, 512, 4096, 8192, 65536, 262144)


# ---------------------------------------------------------------------------
# Figure 1 / Figure 4b — pipelined stencil
# ---------------------------------------------------------------------------
def fig1_stencil_strong(nranks_list=(2, 4, 8, 16, 32), rows: int = 1280,
                        cols: int = 1280, scale: float = 1.0) -> Table:
    """Strong scaling of the Sync_p2p stencil (paper: 1280×12800 domain).

    The default shrinks the 12800-row dimension 10× for simulation speed.
    """
    rows = max(int(rows * scale), 16)
    t = Table(
        "Figure 1: stencil strong scaling, GMOPS "
        f"(domain {cols}x{rows}; paper: 1280x12800)",
        ["P", "MP", "OneSided(fence)", "OneSided(PSCW)", "NotifiedAccess",
         "NA/MP"])
    for p in nranks_list:
        gm = {}
        for mode in ("mp", "fence", "pscw", "na"):
            gm[mode] = run_stencil(mode, p, rows=rows, cols=cols)["gmops"]
        t.add(p, gm["mp"], gm["fence"], gm["pscw"], gm["na"],
              gm["na"] / gm["mp"])
    t.notes = ("Paper: NA consistently outperforms MP by more than 1.4x on "
               "32 processes; One Sided modes are far behind.")
    return t


def fig4b_stencil_weak(nranks_list=(2, 4, 8, 16), cols_per_rank: int = 1280,
                       rows: int = 1280, scale: float = 0.25) -> Table:
    """Weak scaling, 1280×1280 partition per PE (rows shrunk by ``scale``)."""
    rows = max(int(rows * scale), 16)
    t = Table(
        "Figure 4b: stencil weak scaling, GMOPS "
        f"({cols_per_rank}x{rows} partition per PE; paper: 1280x1280)",
        ["P", "MP", "OneSided(fence)", "OneSided(PSCW)", "NotifiedAccess",
         "NA/MP"])
    for p in nranks_list:
        cols = cols_per_rank * p
        gm = {}
        for mode in ("mp", "fence", "pscw", "na"):
            gm[mode] = run_stencil(mode, p, rows=rows, cols=cols)["gmops"]
        t.add(p, gm["mp"], gm["fence"], gm["pscw"], gm["na"],
              gm["na"] / gm["mp"])
    t.notes = ("Paper: NA improves the pipelined stencil more than 2.17x "
               "over Message Passing.")
    return t


# ---------------------------------------------------------------------------
# Figure 3 — ping-pong latency
# ---------------------------------------------------------------------------
def _pingpong_table(title: str, modes: dict[str, str], same_node: bool,
                    sizes=PINGPONG_SIZES, iters: int = 30) -> Table:
    t = Table(title, ["size_B"] + list(modes) + ["NA_vs_best_other"])
    for s in sizes:
        row = [s]
        vals = {}
        for label, mode in modes.items():
            r = run_pingpong(mode, s, iters=iters, same_node=same_node)
            vals[label] = r["half_rtt_us"]
            row.append(vals[label])
        others = [v for k, v in vals.items()
                  if not k.startswith("NA") and k != "raw"]
        na_key = next(k for k in vals if k.startswith("NA"))
        row.append(vals[na_key] / min(others))
        t.add(*row)
    return t


def fig3a_pingpong_put(sizes=PINGPONG_SIZES, iters: int = 30) -> Table:
    t = _pingpong_table(
        "Figure 3a: put ping-pong latency, inter-node (half RTT, us)",
        {"MP": "mp", "OneSided": "onesided_pscw", "NA": "na", "raw": "raw"},
        same_node=False, sizes=sizes, iters=iters)
    t.notes = ("Paper: NA needs less than 50% of MPI One Sided on small "
               "transfers and beats MP's eager protocol (copy overhead).")
    return t


def fig3b_pingpong_get(sizes=PINGPONG_SIZES, iters: int = 30) -> Table:
    t = _pingpong_table(
        "Figure 3b: get ping-pong latency, inter-node (half RTT, us)",
        {"MP": "mp", "OneSided": "onesided_pscw", "NA_get": "na_get",
         "raw": "raw"},
        same_node=False, sizes=sizes, iters=iters)
    t.notes = ("Paper: MP is a single transfer and thus has an advantage "
               "over get's request-reply; NA-get still beats One Sided.")
    return t


def fig3c_pingpong_shm(sizes=PINGPONG_SIZES, iters: int = 30) -> Table:
    t = _pingpong_table(
        "Figure 3c: put ping-pong latency, intra-node/XPMEM (half RTT, us)",
        {"MP": "mp", "OneSided": "onesided_pscw", "NA": "na", "raw": "raw"},
        same_node=True, sizes=sizes, iters=iters)
    t.notes = ("Paper: intra-node NA performs similar to MP — the round "
               "trip is negligible and the notification overhead dominates.")
    return t


# ---------------------------------------------------------------------------
# Figure 4a — overlap
# ---------------------------------------------------------------------------
def fig4a_overlap(sizes=OVERLAP_SIZES, iters: int = 15) -> Table:
    t = Table("Figure 4a: computation/communication overlap ratio",
              ["size_B", "MP", "OneSided(fence)", "OneSided(flush)", "NA"])
    for s in sizes:
        row = [s]
        for mode in OVERLAP_MODES:
            row.append(run_overlap(mode, s, iters=iters)["overlap_ratio"])
        t.add(*row)
    t.notes = ("Paper: NA achieves high overlap for all sizes (hardware "
               "offload, no copies); small messages are hard to overlap "
               "for fence and MP.")
    return t


# ---------------------------------------------------------------------------
# Figure 4c — tree reduction
# ---------------------------------------------------------------------------
def fig4c_tree(nranks_list=(4, 16, 64, 128), arity: int = 16,
               elems: int = 1, reps: int = 5) -> Table:
    t = Table(
        f"Figure 4c: {arity}-ary tree reduction of {elems * 8}B, time (us)",
        ["P", "MP", "OneSided(PSCW)", "VendorReduce", "NotifiedAccess",
         "NA/MP"])
    for p in nranks_list:
        v = {}
        for mode in ("mp", "pscw", "vendor", "na"):
            v[mode] = run_tree_reduction(mode, p, arity=arity, elems=elems,
                                         reps=reps)["time_us"]
        t.add(p, v["mp"], v["pscw"], v["vendor"], v["na"],
              v["na"] / v["mp"])
    t.notes = ("Paper: for latency-bound small-message reductions NA even "
               "outperforms the vendor-optimized reduce (counting "
               "notifications gather all children with one request).")
    return t


# ---------------------------------------------------------------------------
# Figure 5 — Cholesky
# ---------------------------------------------------------------------------
def fig5_cholesky(nranks_list=(1, 2, 4, 8, 16, 32), base_tiles: int = 8,
                  b: int = 32, flops_per_us: float = 60000.0) -> Table:
    """Weak scaling with 32×32-double tiles (8 KB transfers, as the paper).

    The tile-matrix dimension grows with P^(1/3) to keep per-process flops
    roughly constant.  The fast modeled CPU (``flops_per_us``, a threaded
    BLAS) reproduces the paper's "extreme case of a very small computation
    per process": communication dominates, which is what Figure 5 stresses.
    """
    t = Table(
        f"Figure 5: task-based Cholesky weak scaling, {b}x{b}-double tiles "
        "(8KB transfers), GFlop/s",
        ["P", "tiles", "MP", "OneSided(ring)", "NotifiedAccess", "NA/MP"])
    for p in nranks_list:
        ntiles = max(int(round(base_tiles * p ** (1 / 3))), base_tiles)
        v = {}
        for mode in ("mp", "onesided", "na"):
            cfg = ClusterConfig(nranks=p, flops_per_us=flops_per_us)
            v[mode] = run_cholesky(mode, p, ntiles=ntiles, b=b,
                                   config=cfg)["gflops"]
        t.add(p, ntiles, v["mp"], v["onesided"], v["na"],
              v["na"] / v["mp"])
    t.notes = ("Paper: the fine-grained dataflow NA implementation reaches "
               "up to 2x over Message Passing; the One Sided ring-buffer "
               "protocol trails both.")
    return t


# ---------------------------------------------------------------------------
# Table I — LogGP parameters
# ---------------------------------------------------------------------------
def table1_loggp(iters: int = 30) -> Table:
    """Fit L and G per transport from simulated notified-put ping-pongs."""
    from repro.core.engine import T_MATCH, T_POLL, T_TEST_BASE
    p = TransportParams()
    o_match = T_TEST_BASE + T_POLL + T_MATCH
    t = Table("Table I: LogGP parameters recovered by calibration",
              ["transport", "L_us(fit)", "L_us(paper)", "G_ns/B(fit)",
               "G_ns/B(paper)"])

    def sweep(sizes, same_node):
        lat = [run_pingpong("na", s, iters=iters,
                            same_node=same_node)["half_rtt_us"]
               for s in sizes]
        return sizes, lat

    # Shared memory (sizes above the inline cutoff so the copy G shows).
    sizes, lat = sweep((64, 256, 1024, 4096, 16384), same_node=True)
    fit = fit_loggp(sizes, lat, software_overhead=p.o_send + o_match)
    t.add("shared memory", fit.L, p.shm.L, fit.G_ns_per_byte(),
          p.shm.G * 1e3)
    # uGNI FMA (sizes at or below fma_max).
    sizes, lat = sweep((8, 64, 512, 2048, 4096), same_node=False)
    fit = fit_loggp(sizes, lat,
                    software_overhead=p.o_send + o_match + p.fma.g)
    t.add("uGNI FMA", fit.L, p.fma.L, fit.G_ns_per_byte(), p.fma.G * 1e3)
    # uGNI BTE (sizes above fma_max).
    sizes, lat = sweep((8192, 32768, 131072, 524288), same_node=False)
    fit = fit_loggp(sizes, lat,
                    software_overhead=p.o_send + o_match + p.bte.g)
    t.add("uGNI BTE", fit.L, p.bte.L, fit.G_ns_per_byte(), p.bte.G * 1e3)
    t.notes = ("Paper Table I: shm L=0.25us G=0.08ns/B; FMA L=1.02us "
               "G=0.105ns/B; BTE L=1.32us G=0.101ns/B.")
    return t


# ---------------------------------------------------------------------------
# §V — matching-path cache misses, §V-A call costs
# ---------------------------------------------------------------------------
def sec5_cache_misses() -> Table:
    """Measure compulsory cache misses of the matching path (§V)."""
    scenarios = {}

    def program(ctx):
        win = yield from ctx.win_allocate(4096)
        if ctx.rank == 0:
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.arange(8, dtype=np.float64),
                                         1, 0, tag=5)
            yield from ctx.barrier()
            yield from ctx.barrier()
            yield from ctx.na.put_notify(win, np.arange(8, dtype=np.float64),
                                         1, 0, tag=5)
            yield from ctx.barrier()
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=5)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()   # put committed in between
            ctx.cache.flush_all()      # everything cold
            before = ctx.cache.stats.snapshot()
            yield from ctx.na.wait(req)
            delta = ctx.cache.stats.delta(before)
            scenarios["cold, 1 notification"] = delta
            # Warm repeat: same request, same queue lines.
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.barrier()
            before = ctx.cache.stats.snapshot()
            yield from ctx.na.wait(req)
            scenarios["warm, 1 notification"] = ctx.cache.stats.delta(before)
        return None

    run_ranks(2, program)
    t = Table("Section V: matching-path cache misses per matched "
              "notification",
              ["scenario", "misses(request)", "misses(UQ)", "misses(total)",
               "paper_bound"])
    for name, d in scenarios.items():
        req_m = d.miss_for("na-request")
        uq_m = (d.miss_for("na-uq-head") + d.miss_for("na-uq-scan")
                + d.miss_for("na-uq-append"))
        bound = 2 if name.startswith("cold") else 2
        t.add(name, req_m, uq_m, d.misses, f"<= {bound}")
    t.notes = ("Paper: at most two compulsory misses — the 32B request "
               "structure and the UQ head line — when fewer than four "
               "notifications are active.")
    return t


# ---------------------------------------------------------------------------
# Figure 2 — protocol transaction audit
# ---------------------------------------------------------------------------
def fig2_transactions() -> Table:
    """Count wire transactions per producer-consumer transfer (Figure 2)."""
    results = {}

    def measure(name, program, nranks=2):
        cfg = ClusterConfig(nranks=nranks, trace=True)
        cluster = Cluster(cfg)
        cluster.run(program)
        # Subtract setup traffic using the marker recorded by the program.
        results[name] = cluster._audit_count  # type: ignore[attr-defined]

    def count_since(ctx, mark):
        return ctx.cluster.tracer.wire_transactions() - mark

    def mp_eager(ctx):
        data = np.arange(8, dtype=np.float64)
        yield from ctx.barrier()
        mark = ctx.cluster.tracer.wire_transactions()
        if ctx.rank == 0:
            yield from ctx.comm.send(data, 1, 3)
        else:
            yield from ctx.comm.recv(np.zeros(8), 0, 3)
        yield ctx.timeout(50)
        ctx.cluster._audit_count = count_since(ctx, mark)
        return None

    def mp_rndv(ctx):
        data = np.zeros(32768)
        yield from ctx.barrier()
        mark = ctx.cluster.tracer.wire_transactions()
        if ctx.rank == 0:
            yield from ctx.comm.send(data, 1, 3)
        else:
            yield from ctx.comm.recv(np.zeros(32768), 0, 3)
        yield ctx.timeout(50)
        ctx.cluster._audit_count = count_since(ctx, mark)
        return None

    def na_put(ctx):
        win = yield from ctx.win_allocate(64)
        req = None
        if ctx.rank == 1:
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
        yield from ctx.barrier()
        mark = ctx.cluster.tracer.wire_transactions()
        if ctx.rank == 0:
            yield from ctx.na.put_notify(win, np.arange(8, dtype=np.float64),
                                         1, 0, tag=1)
            yield from win.flush_local(1)
        else:
            yield from ctx.na.wait(req)
        yield ctx.timeout(50)
        ctx.cluster._audit_count = count_since(ctx, mark)
        return None

    def na_get(ctx):
        win = yield from ctx.win_allocate(64)
        req = None
        if ctx.rank == 1:
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
        yield from ctx.barrier()
        mark = ctx.cluster.tracer.wire_transactions()
        if ctx.rank == 0:
            buf = ctx.alloc(64)
            yield from ctx.na.get_notify(win, buf, 1, 0, nbytes=64, tag=1)
            yield from win.flush(1)
        else:
            yield from ctx.na.wait(req)
        yield ctx.timeout(50)
        ctx.cluster._audit_count = count_since(ctx, mark)
        return None

    def onesided_flag(ctx):
        """The paper's One Sided notification idiom: put + AMO + flag put."""
        win = yield from ctx.win_allocate(4096)
        nwin = yield from ctx.win_allocate(256)
        yield from win.lock_all()
        yield from nwin.lock_all()
        yield from ctx.barrier()
        mark = ctx.cluster.tracer.wire_transactions()
        if ctx.rank == 0:
            yield from win.put(np.arange(8, dtype=np.float64), 1, 0)
            dest = yield from nwin.fetch_and_op(1, 1, 0, "sum")
            yield from win.flush(1)
            yield from nwin.put(np.array([7], dtype=np.int64), 1,
                                8 * (1 + dest))
            yield from nwin.flush_local(1)
        else:
            # Polled flag: unrecorded view, with the ordering edge declared
            # once the poll observes the producer's flag write.
            ring = nwin.local(np.int64, mode="raw")
            while ring[1] == 0:
                yield ctx.timeout(0.3)
            ctx.san_acquire_at(nwin, 8)
        yield ctx.timeout(50)
        ctx.cluster._audit_count = count_since(ctx, mark)
        yield from win.unlock_all()
        yield from nwin.unlock_all()
        return None

    measure("mp_eager", mp_eager)
    measure("mp_rndv", mp_rndv)
    measure("na_put", na_put)
    measure("na_get", na_get)
    measure("onesided_put_flag", onesided_flag)

    expected = {"mp_eager": 1, "mp_rndv": 3, "na_put": 1, "na_get": 2,
                "onesided_put_flag": 4}
    t = Table("Figure 2: wire transactions per producer-consumer transfer",
              ["protocol", "transactions", "expected", "paper"])
    paper = {"mp_eager": "1", "mp_rndv": "3", "na_put": "1",
             "na_get": "1 call, request+reply",
             "onesided_put_flag": ">= 3"}
    for name, count in results.items():
        t.add(name, count, expected[name], paper[name])
    t.notes = ("Paper Fig. 2: all protocols except eager MP and NA need at "
               "least three transactions on the critical path.  Our AMO "
               "counts as two wire transactions (request + response), so "
               "the put+flag idiom shows 4.")
    return t


# ---------------------------------------------------------------------------
# Sharded-core weak scaling (beyond the paper: O(10k)-rank sweeps)
# ---------------------------------------------------------------------------
def shard_weak(nranks_list=(1024, 4096, 10000), shards: int = 4,
               rounds: int = 8, rows: int = 24, cols_per_rank: int = 16,
               ranks_per_node: int = 16, space_bytes: int = 1024 * 1024,
               motifs=("stencil", "dht")) -> Table:
    """Weak scaling of the sharded DES core on two contrasting motifs.

    Runs the latency-chain-bound stencil and the all-ranks-active DHT
    insert motif at rank counts far beyond the paper's 32-process runs,
    executed by the conservative-parallel sharded core
    (:mod:`repro.sim.shard`).  The table records only *deterministic*
    quantities (simulated events, virtual time) so scheduler/parallel/
    baseline byte-equality checks hold; the wall-clock side — events/sec
    and wall seconds, the numbers that show the sharded speedup — is
    captured by :func:`repro.bench.runner.run_experiment` metadata and
    lands in the trend ledger.  Compare ``--shards 1`` vs ``--shards 4``
    invocations to see the speedup.

    ``space_bytes`` is deliberately small: each rank's address space is
    eagerly allocated, so the default 64 MB/rank would need ~640 GB at
    10k ranks.  1 MB covers the endpoint bounce buffer plus the motifs'
    few KB of windows (10 GB total at the largest default point).
    """
    t = Table(
        f"Sharded weak scaling: stencil + DHT motifs, {shards} shards "
        f"({ranks_per_node} ranks/node)",
        ["P", "motif", "shards", "events", "virt_time_us",
         "events_per_rank"])
    for p in nranks_list:
        for motif in motifs:
            cfg = ClusterConfig(
                nranks=p, ranks_per_node=ranks_per_node,
                space_bytes=space_bytes, shards=shards)
            before = events_scheduled()
            if motif == "stencil":
                r = run_stencil("na", p, rows=rows, cols=cols_per_rank * p,
                                iters=1, config=cfg)
            else:
                r = run_dht(p, rounds=rounds, config=cfg)
            ev = events_scheduled() - before
            t.add(p, motif, shards, ev, r["time_us"], ev / p)
    t.notes = ("Beyond the paper: the sharded conservative-parallel core "
               "sweeps rank counts two orders of magnitude past the "
               "evaluation's 32 processes.  Virtual times are exact — "
               "identical to a serial shards=1 run.")
    return t


#: registry used by ``python -m repro.bench`` and EXPERIMENTS.md generation
ALL_EXPERIMENTS = {
    "fig1": fig1_stencil_strong,
    "fig2": fig2_transactions,
    "fig3a": fig3a_pingpong_put,
    "fig3b": fig3b_pingpong_get,
    "fig3c": fig3c_pingpong_shm,
    "fig4a": fig4a_overlap,
    "fig4b": fig4b_stencil_weak,
    "fig4c": fig4c_tree,
    "fig5": fig5_cholesky,
    "table1": table1_loggp,
    "sec5": sec5_cache_misses,
    "shard_weak": shard_weak,
    "svc_kv": svc_kv,
    "svc_kv_ft": svc_kv_ft,
    "svc_pubsub": svc_pubsub,
}
