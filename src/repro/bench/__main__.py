"""Regenerate every experiment table: ``python -m repro.bench [ids...]``.

With no arguments, runs all experiments in paper order and prints the
tables.  Pass experiment ids (fig1, fig2, fig3a, fig3b, fig3c, fig4a,
fig4b, fig4c, fig5, table1, sec5) to run a subset.

Options:

``--jobs N``
    Fan each experiment's sweep points over ``N`` worker processes (see
    :mod:`repro.bench.runner`).  The printed tables are byte-identical to
    a serial run; only wall time changes.
``--shards N``
    Run each individual sweep point on the sharded conservative-parallel
    DES core with ``N`` shard workers (see :mod:`repro.sim.shard`) —
    within-point parallelism, orthogonal to ``--jobs``.  Tables stay
    byte-identical (the sharded core is exact); only wall time changes.
``--json DIR``
    Additionally write a machine-readable ``BENCH_<id>.json`` per
    experiment under ``DIR`` (rows plus wall-time and events/sec metadata).
``--markdown PATH``
    Additionally write the tables as a markdown report.
``--history DIR``
    Append each experiment's events/sec metadata to the trend ledger
    under ``DIR`` (one ``<id>.jsonl`` per experiment; see
    :mod:`repro.bench.history`).  Defaults to ``benchmarks/history``
    when used with ``--trend``.
``--trend``
    Don't run anything: render the events/sec trajectory recorded in the
    ledger (optionally restricted to the given experiment ids) and exit.
"""

from __future__ import annotations

import sys
import time

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.report import to_markdown
from repro.bench.runner import run_experiment, write_bench_json


def _pop_option(argv: list[str], name: str) -> tuple[list[str], str | None]:
    if name not in argv:
        return argv, None
    i = argv.index(name)
    try:
        value = argv[i + 1]
    except IndexError:
        raise SystemExit(f"{name} needs a value")
    return argv[:i] + argv[i + 2:], value


def main(argv: list[str]) -> int:
    try:
        argv, md_path = _pop_option(argv, "--markdown")
        argv, json_dir = _pop_option(argv, "--json")
        argv, jobs_s = _pop_option(argv, "--jobs")
        argv, shards_s = _pop_option(argv, "--shards")
        argv, history_dir = _pop_option(argv, "--history")
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    trend = "--trend" in argv
    if trend:
        argv = [a for a in argv if a != "--trend"]
    try:
        jobs = int(jobs_s) if jobs_s is not None else 1
    except ValueError:
        print(f"--jobs needs an integer, got {jobs_s!r}", file=sys.stderr)
        return 2
    try:
        shards = int(shards_s) if shards_s is not None else 0
    except ValueError:
        print(f"--shards needs an integer, got {shards_s!r}",
              file=sys.stderr)
        return 2
    if trend:
        from repro.bench.history import render_trend
        print(render_trend(history_dir or "benchmarks/history",
                           argv or None))
        return 0
    ids = argv or list(ALL_EXPERIMENTS)
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; "
              f"available: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    md_parts = ["# Regenerated experiment tables", ""]
    for eid in ids:
        t0 = time.perf_counter()
        table, meta = run_experiment(eid, jobs=jobs, shards=shards,
                                     history_dir=history_dir)
        dt = time.perf_counter() - t0
        print(table)
        print(f"[{eid} regenerated in {dt:.1f}s wall; "
              f"{meta['events']:,} events, "
              f"{meta['events_per_s']:,.0f} events/s, "
              f"jobs={meta['jobs']}, shards={meta['shards']}]")
        print()
        md_parts.append(to_markdown(table))
        md_parts.append("")
        if json_dir is not None:
            path = write_bench_json(json_dir, table, meta)
            print(f"wrote {path}")
    if md_path is not None:
        with open(md_path, "w") as fh:
            fh.write("\n".join(md_parts))
        print(f"markdown report written to {md_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
