"""Regenerate every experiment table: ``python -m repro.bench [ids...]``.

With no arguments, runs all experiments in paper order and prints the
tables.  Pass experiment ids (fig1, fig2, fig3a, fig3b, fig3c, fig4a,
fig4b, fig4c, fig5, table1, sec5) to run a subset.  ``--markdown PATH``
additionally writes the tables as a markdown report.
"""

from __future__ import annotations

import sys
import time

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.report import to_markdown


def main(argv: list[str]) -> int:
    md_path = None
    if "--markdown" in argv:
        i = argv.index("--markdown")
        try:
            md_path = argv[i + 1]
        except IndexError:
            print("--markdown needs a path", file=sys.stderr)
            return 2
        argv = argv[:i] + argv[i + 2:]
    ids = argv or list(ALL_EXPERIMENTS)
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; "
              f"available: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    md_parts = ["# Regenerated experiment tables", ""]
    for eid in ids:
        t0 = time.perf_counter()
        table = ALL_EXPERIMENTS[eid]()
        dt = time.perf_counter() - t0
        print(table)
        print(f"[{eid} regenerated in {dt:.1f}s wall]")
        print()
        md_parts.append(to_markdown(table))
        md_parts.append("")
    if md_path is not None:
        with open(md_path, "w") as fh:
            fh.write("\n".join(md_parts))
        print(f"markdown report written to {md_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
