"""Parallel experiment runner: fan sweep points across a process pool.

Every figure driver in :mod:`repro.bench.figures` is a loop over independent
sweep points (process counts or message sizes) — each point builds its own
engines, so points can run in separate worker processes with no shared
state.  :func:`run_experiment` splits an experiment into per-point subcalls,
maps them over a ``multiprocessing`` pool, and merges the returned rows in
canonical (input-order) order, so the merged table is **byte-identical** to a
serial run: the simulation itself is deterministic, and each worker is
additionally re-seeded from a stable per-point seed so any library RNG state
matches no matter which worker picks the point up.

Alongside the plain-text table, the runner reports machine-readable metadata
(wall time, heap events simulated, events/sec) that
:func:`write_bench_json` serialises as ``BENCH_<experiment>.json`` — the
format the CI bench-smoke job diffs against the committed baselines.
"""

from __future__ import annotations

import inspect
import json
import multiprocessing.pool as _mp_pool
import os
import random
import time
import zlib
from typing import Any

import numpy as np

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.report import Table
from repro.sim.engine import events_scheduled
from repro.sim.scheduler import scheduler_name

#: experiment id -> name of the keyword whose values are independent sweep
#: points.  Experiments not listed here (fig2, table1, sec5) have
#: cross-point structure or are single measurements and always run whole.
SWEEP_PARAMS: dict[str, str] = {
    "fig1": "nranks_list",
    "fig3a": "sizes",
    "fig3b": "sizes",
    "fig3c": "sizes",
    "fig4a": "sizes",
    "fig4b": "nranks_list",
    "fig4c": "nranks_list",
    "fig5": "nranks_list",
    "shard_weak": "nranks_list",
    "svc_kv": "rates",
    "svc_kv_ft": "replications",
    "svc_pubsub": "rates",
}

#: scaled-down configurations used by the CI bench-smoke job and the
#: regression baselines under benchmarks/baselines/.  Every experiment in
#: :data:`repro.bench.figures.ALL_EXPERIMENTS` has an entry so each one
#: gets a committed baseline and a seeded trend-ledger series.
SMOKE_CONFIGS: dict[str, dict[str, Any]] = {
    "fig1": {"nranks_list": (2, 4, 8), "scale": 0.25},
    "fig2": {},
    "fig3a": {"sizes": (8, 512, 32768), "iters": 10},
    "fig3b": {"sizes": (8, 512, 32768), "iters": 10},
    "fig3c": {"sizes": (8, 512, 32768), "iters": 10},
    "fig4a": {"sizes": (64, 4096, 65536), "iters": 5},
    "fig4b": {"nranks_list": (2, 4), "scale": 0.1},
    "fig4c": {"nranks_list": (4, 16), "reps": 3},
    "fig5": {"nranks_list": (2, 4), "base_tiles": 4},
    "table1": {"iters": 10},
    "sec5": {},
    "shard_weak": {"nranks_list": (32, 64), "shards": 2, "rounds": 4,
                   "rows": 8, "cols_per_rank": 8, "ranks_per_node": 4},
    "svc_kv": {"rates": (200_000.0, 1_600_000.0, 6_400_000.0),
               "nservers": 2, "nclients": 4, "reqs_per_client": 16,
               "nkeys": 32},
    "svc_kv_ft": {"replications": (1, 2, 3), "nservers": 3,
                  "nclients": 4, "reqs_per_client": 16, "nkeys": 32,
                  "rate_rps": 8_000.0, "detect_us": 400.0,
                  "ckpt_every": 4},
    "svc_pubsub": {"rates": (100_000.0, 1_000_000.0, 4_000_000.0),
                   "nbrokers": 2, "npubs": 2, "nsubs": 4, "fanout": 2,
                   "msgs_per_pub": 16},
}


def _worker_pool(ctx, processes: int) -> _mp_pool.Pool:
    """A Pool whose workers are *not* daemonic.

    Plain ``Pool`` workers are daemons and may not have children, which
    would forbid a sweep point from forking shard workers — this pool
    lets ``jobs=N`` (across points) compose with ``shards=M`` (within a
    point).  The pool machinery force-sets ``daemon = True`` on each
    worker, so the process class itself must swallow the flag.  The
    context manager still reaps the workers on exit.
    """
    class _NoDaemonProcess(ctx.Process):
        @property
        def daemon(self):
            return False

        @daemon.setter
        def daemon(self, value):
            pass

    class _NoDaemonContext(type(ctx)):
        Process = _NoDaemonProcess

    return _mp_pool.Pool(processes, context=_NoDaemonContext())


def _point_seed(eid: str, index: int) -> int:
    """Stable per-point seed (crc32: identical across processes and runs)."""
    return zlib.crc32(f"{eid}:{index}".encode())


def _run_point(
        payload: tuple[str, dict[str, Any], int, int]) -> dict[str, Any]:
    """Worker body: run one experiment (sub)call and return its table parts.

    Top-level so it pickles under any multiprocessing start method.  A
    nonzero ``shards`` pins ``REPRO_SHARDS`` for the call, so every
    cluster the driver builds (unless it sets ``ClusterConfig.shards``
    itself) executes on the sharded conservative-parallel core.
    """
    eid, kwargs, seed, shards = payload
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
    prev = os.environ.get("REPRO_SHARDS")
    cp0 = 0.0
    if shards:
        from repro.sim.shard import critical_path_seconds
        cp0 = critical_path_seconds()
        os.environ["REPRO_SHARDS"] = str(shards)
    try:
        before = events_scheduled()
        table = ALL_EXPERIMENTS[eid](**kwargs)
        events = events_scheduled() - before
    finally:
        if shards:
            if prev is None:
                del os.environ["REPRO_SHARDS"]
            else:
                os.environ["REPRO_SHARDS"] = prev
    if shards:
        from repro.sim.shard import critical_path_seconds
        cp_s = critical_path_seconds() - cp0
    else:
        cp_s = 0.0
    return {
        "title": table.title,
        "columns": table.columns,
        "rows": table.rows,
        "notes": table.notes,
        "events": events,
        "cp_s": cp_s,
    }


def _sweep_points(eid: str, kwargs: dict[str, Any]):
    """Resolve the sweep parameter name and its values (from the kwargs or
    the driver's signature default); (None, None) for unsplittable ones."""
    param = SWEEP_PARAMS.get(eid)
    if param is None:
        return None, None
    if param in kwargs:
        values = kwargs[param]
    else:
        values = inspect.signature(
            ALL_EXPERIMENTS[eid]).parameters[param].default
    return param, list(values)


def run_experiment(eid: str, jobs: int = 1,
                   history_dir: str | None = None, shards: int = 0,
                   **kwargs: Any) -> tuple[Table, dict[str, Any]]:
    """Run one experiment, optionally fanning sweep points over ``jobs``
    worker processes.  Returns ``(table, meta)``.

    The table is byte-identical to a serial ``ALL_EXPERIMENTS[eid](**kwargs)``
    call regardless of ``jobs``.  ``meta`` carries ``wall_s`` (parent-side
    wall time), ``events`` (scheduler events simulated across all workers),
    ``events_per_s``, ``jobs`` (pool size actually used), ``scheduler``
    (the active event-scheduler implementation), ``shards``, the
    per-point ``seeds``, and — for points executed on the sharded core —
    ``cp_s``/``events_per_s_cp``, the critical-path CPU seconds and the
    aggregate fleet rate over them (the projected wall-clock rate with
    one dedicated core per shard; 0.0 for serial runs).  With
    ``history_dir`` set, the metadata is appended to the events/sec
    trend ledger (see :mod:`repro.bench.history`).

    ``shards`` selects *within-point* parallelism: each individual sweep
    point runs on the sharded conservative-parallel DES core
    (:mod:`repro.sim.shard`) with that many shard workers — orthogonal to
    ``jobs``, which fans independent points across a pool.  When the
    driver itself takes a ``shards`` keyword (e.g. ``shard_weak``) the
    value is passed straight through; otherwise it is applied via
    ``REPRO_SHARDS`` so every cluster the driver builds picks it up.
    Either way the table stays byte-identical (the sharded core is
    exact), so the merge and baseline contracts hold at any shard count.
    """
    if eid not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {eid!r}; "
                       f"available: {list(ALL_EXPERIMENTS)}")
    if shards:
        driver_params = inspect.signature(ALL_EXPERIMENTS[eid]).parameters
        if "shards" in driver_params:
            kwargs["shards"] = shards
    param, values = _sweep_points(eid, kwargs)
    t0 = time.perf_counter()
    if jobs <= 1 or param is None or len(values) <= 1:
        payloads = [(eid, dict(kwargs), _point_seed(eid, 0), shards)]
        results = [_run_point(p) for p in payloads]
        used_jobs = 1
    else:
        payloads = []
        for i, v in enumerate(values):
            sub = dict(kwargs)
            sub[param] = (v,)
            payloads.append((eid, sub, _point_seed(eid, i), shards))
        try:
            import multiprocessing as mp
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            import multiprocessing as mp
            ctx = mp.get_context()
        used_jobs = min(jobs, len(payloads))
        with _worker_pool(ctx, used_jobs) as pool:
            results = pool.map(_run_point, payloads)
    wall = time.perf_counter() - t0

    table = Table(results[0]["title"], list(results[0]["columns"]))
    table.notes = results[0]["notes"]
    for r in results:
        table.rows.extend(r["rows"])
    events = sum(r["events"] for r in results)
    # critical-path CPU seconds accumulated by sharded runs: the honest
    # parallel-throughput denominator when the host has fewer cores than
    # shards (see repro.sim.shard.critical_path_seconds) — 0.0 when no
    # point executed on the sharded core
    cp_s = sum(r.get("cp_s", 0.0) for r in results)
    meta = {
        "experiment": eid,
        "jobs": used_jobs,
        "shards": shards,
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "cp_s": cp_s,
        "events_per_s_cp": events / cp_s if cp_s > 0 else 0.0,
        "scheduler": scheduler_name(),
        "seeds": [p[2] for p in payloads],
        "kwargs": {k: _jsonable(v) for k, v in kwargs.items()},
    }
    if history_dir is not None:
        from repro.bench.history import append_entry
        append_entry(history_dir, meta)
    return table, meta


def _jsonable(v: Any) -> Any:
    """Coerce numpy scalars / sequences to plain JSON-serialisable values."""
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    return v


def bench_payload(table: Table, meta: dict[str, Any]) -> dict[str, Any]:
    """The ``BENCH_<eid>.json`` document for one experiment run."""
    return {
        "experiment": meta["experiment"],
        "title": table.title,
        "columns": list(table.columns),
        "rows": [[_jsonable(v) for v in row] for row in table.rows],
        "notes": table.notes,
        "jobs": meta["jobs"],
        "shards": meta.get("shards", 0),
        "wall_s": meta["wall_s"],
        "events": meta["events"],
        "events_per_s": meta["events_per_s"],
        "scheduler": meta.get("scheduler"),
        "seeds": meta["seeds"],
        "kwargs": meta["kwargs"],
    }


def write_bench_json(dir_path: str, table: Table,
                     meta: dict[str, Any]) -> str:
    """Write ``BENCH_<experiment>.json`` under ``dir_path``; returns path."""
    os.makedirs(dir_path, exist_ok=True)
    path = os.path.join(dir_path, f"BENCH_{meta['experiment']}.json")
    with open(path, "w") as fh:
        json.dump(bench_payload(table, meta), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
