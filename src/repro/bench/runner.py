"""Parallel experiment runner: fan sweep points across a process pool.

Every figure driver in :mod:`repro.bench.figures` is a loop over independent
sweep points (process counts or message sizes) — each point builds its own
engines, so points can run in separate worker processes with no shared
state.  :func:`run_experiment` splits an experiment into per-point subcalls,
maps them over a ``multiprocessing`` pool, and merges the returned rows in
canonical (input-order) order, so the merged table is **byte-identical** to a
serial run: the simulation itself is deterministic, and each worker is
additionally re-seeded from a stable per-point seed so any library RNG state
matches no matter which worker picks the point up.

Alongside the plain-text table, the runner reports machine-readable metadata
(wall time, heap events simulated, events/sec) that
:func:`write_bench_json` serialises as ``BENCH_<experiment>.json`` — the
format the CI bench-smoke job diffs against the committed baselines.
"""

from __future__ import annotations

import inspect
import json
import os
import random
import time
import zlib
from typing import Any

import numpy as np

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.report import Table
from repro.sim.engine import events_scheduled
from repro.sim.scheduler import scheduler_name

#: experiment id -> name of the keyword whose values are independent sweep
#: points.  Experiments not listed here (fig2, table1, sec5) have
#: cross-point structure or are single measurements and always run whole.
SWEEP_PARAMS: dict[str, str] = {
    "fig1": "nranks_list",
    "fig3a": "sizes",
    "fig3b": "sizes",
    "fig3c": "sizes",
    "fig4a": "sizes",
    "fig4b": "nranks_list",
    "fig4c": "nranks_list",
    "fig5": "nranks_list",
}

#: scaled-down configurations used by the CI bench-smoke job and the
#: regression baselines under benchmarks/baselines/.
SMOKE_CONFIGS: dict[str, dict[str, Any]] = {
    "fig1": {"nranks_list": (2, 4, 8), "scale": 0.25},
    "fig3a": {"sizes": (8, 512, 32768), "iters": 10},
    "fig4c": {"nranks_list": (4, 16), "reps": 3},
}


def _point_seed(eid: str, index: int) -> int:
    """Stable per-point seed (crc32: identical across processes and runs)."""
    return zlib.crc32(f"{eid}:{index}".encode())


def _run_point(payload: tuple[str, dict[str, Any], int]) -> dict[str, Any]:
    """Worker body: run one experiment (sub)call and return its table parts.

    Top-level so it pickles under any multiprocessing start method.
    """
    eid, kwargs, seed = payload
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
    before = events_scheduled()
    table = ALL_EXPERIMENTS[eid](**kwargs)
    return {
        "title": table.title,
        "columns": table.columns,
        "rows": table.rows,
        "notes": table.notes,
        "events": events_scheduled() - before,
    }


def _sweep_points(eid: str, kwargs: dict[str, Any]):
    """Resolve the sweep parameter name and its values (from the kwargs or
    the driver's signature default); (None, None) for unsplittable ones."""
    param = SWEEP_PARAMS.get(eid)
    if param is None:
        return None, None
    if param in kwargs:
        values = kwargs[param]
    else:
        values = inspect.signature(
            ALL_EXPERIMENTS[eid]).parameters[param].default
    return param, list(values)


def run_experiment(eid: str, jobs: int = 1,
                   history_dir: str | None = None,
                   **kwargs: Any) -> tuple[Table, dict[str, Any]]:
    """Run one experiment, optionally fanning sweep points over ``jobs``
    worker processes.  Returns ``(table, meta)``.

    The table is byte-identical to a serial ``ALL_EXPERIMENTS[eid](**kwargs)``
    call regardless of ``jobs``.  ``meta`` carries ``wall_s`` (parent-side
    wall time), ``events`` (scheduler events simulated across all workers),
    ``events_per_s``, ``jobs`` (pool size actually used), ``scheduler``
    (the active event-scheduler implementation), and the per-point
    ``seeds``.  With ``history_dir`` set, the metadata is appended to the
    events/sec trend ledger (see :mod:`repro.bench.history`).
    """
    if eid not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {eid!r}; "
                       f"available: {list(ALL_EXPERIMENTS)}")
    param, values = _sweep_points(eid, kwargs)
    t0 = time.perf_counter()
    if jobs <= 1 or param is None or len(values) <= 1:
        payloads = [(eid, dict(kwargs), _point_seed(eid, 0))]
        results = [_run_point(p) for p in payloads]
        used_jobs = 1
    else:
        payloads = []
        for i, v in enumerate(values):
            sub = dict(kwargs)
            sub[param] = (v,)
            payloads.append((eid, sub, _point_seed(eid, i)))
        try:
            import multiprocessing as mp
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            import multiprocessing as mp
            ctx = mp.get_context()
        used_jobs = min(jobs, len(payloads))
        with ctx.Pool(used_jobs) as pool:
            results = pool.map(_run_point, payloads)
    wall = time.perf_counter() - t0

    table = Table(results[0]["title"], list(results[0]["columns"]))
    table.notes = results[0]["notes"]
    for r in results:
        table.rows.extend(r["rows"])
    events = sum(r["events"] for r in results)
    meta = {
        "experiment": eid,
        "jobs": used_jobs,
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "scheduler": scheduler_name(),
        "seeds": [p[2] for p in payloads],
        "kwargs": {k: _jsonable(v) for k, v in kwargs.items()},
    }
    if history_dir is not None:
        from repro.bench.history import append_entry
        append_entry(history_dir, meta)
    return table, meta


def _jsonable(v: Any) -> Any:
    """Coerce numpy scalars / sequences to plain JSON-serialisable values."""
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    return v


def bench_payload(table: Table, meta: dict[str, Any]) -> dict[str, Any]:
    """The ``BENCH_<eid>.json`` document for one experiment run."""
    return {
        "experiment": meta["experiment"],
        "title": table.title,
        "columns": list(table.columns),
        "rows": [[_jsonable(v) for v in row] for row in table.rows],
        "notes": table.notes,
        "jobs": meta["jobs"],
        "wall_s": meta["wall_s"],
        "events": meta["events"],
        "events_per_s": meta["events_per_s"],
        "scheduler": meta.get("scheduler"),
        "seeds": meta["seeds"],
        "kwargs": meta["kwargs"],
    }


def write_bench_json(dir_path: str, table: Table,
                     meta: dict[str, Any]) -> str:
    """Write ``BENCH_<experiment>.json`` under ``dir_path``; returns path."""
    os.makedirs(dir_path, exist_ok=True)
    path = os.path.join(dir_path, f"BENCH_{meta['experiment']}.json")
    with open(path, "w") as fh:
        json.dump(bench_payload(table, meta), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
