"""Plain-text tables for experiment results."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Table:
    """A titled table of experiment rows."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row of {len(values)} values for {len(self.columns)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:
        return format_table(self)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.2f}"
        return f"{v:.3f}"
    return str(v)


def format_table(table: Table) -> str:
    """Render a :class:`Table` as aligned plain text."""
    cells = [[_fmt(v) for v in row] for row in table.rows]
    widths = [max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
              for i, c in enumerate(table.columns)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(table.columns, widths))
    lines = [table.title, "=" * len(table.title), header, sep]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if table.notes:
        lines.append("")
        lines.append(table.notes)
    return "\n".join(lines)


def geo_ratio(a: Sequence[float], b: Sequence[float]) -> float:
    """Geometric-mean ratio a/b over paired samples (speedup summaries)."""
    import math
    if len(a) != len(b) or not a:
        raise ValueError("need equal-length, non-empty sequences")
    s = 0.0
    for x, y in zip(a, b):
        if x <= 0 or y <= 0:
            raise ValueError("ratios need positive values")
        s += math.log(x / y)
    return math.exp(s / len(a))


def to_markdown(table: Table) -> str:
    """Render a :class:`Table` as GitHub-flavoured markdown."""
    lines = [f"## {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    if table.notes:
        lines.append("")
        lines.append(f"> {table.notes}")
    return "\n".join(lines)


#: recovery counters surfaced in fault tables, in display order
FAULT_COUNTERS = ("drops", "retries", "duplicates", "dup_suppressed",
                  "lost_ops")


def fault_table(results: Sequence[dict], title: str = "Reliability sweep",
                counters: Sequence[str] = FAULT_COUNTERS) -> Table:
    """Tabulate fault-injection sweep results.

    Each ``results`` entry is a :func:`repro.apps.pingpong.run_pingpong`-style
    dict: ``mode``, ``drop_prob`` (added by the sweep driver),
    ``half_rtt_us``, and optionally a ``faults`` counter dict (absent for
    fault-free runs — rendered as zeros so columns stay comparable).
    """
    table = Table(title, ["mode", "drop_prob", "half_rtt_us",
                          *counters])
    for res in results:
        fl = res.get("faults") or {}
        table.add(res["mode"], res.get("drop_prob", 0.0),
                  res["half_rtt_us"],
                  *(fl.get(c, 0) for c in counters))
    return table


def sweep(fn, grid: dict, title: str, metric: str) -> Table:
    """Run ``fn(**point)`` over the cartesian grid; tabulate one metric.

    ``grid`` maps parameter names to value lists; ``fn`` must return a dict
    containing ``metric``.  Rows are emitted in deterministic grid order.
    """
    import itertools as _it
    names = list(grid)
    table = Table(title, names + [metric])
    for values in _it.product(*(grid[n] for n in names)):
        point = dict(zip(names, values))
        result = fn(**point)
        table.add(*values, result[metric])
    return table
