"""Experiment harness: one driver per figure/table of the paper.

Each ``fig_*``/``table_*`` function runs the full parameter sweep on the
simulator and returns a :class:`~repro.bench.report.Table` whose rows mirror
what the paper plots; ``python -m repro.bench`` regenerates everything and
prints the tables (the source of EXPERIMENTS.md).

The drivers accept a ``scale`` factor shrinking domain sizes / process
counts so the pure-Python simulation stays fast; shapes (who wins, by what
factor, where crossovers fall) are preserved.
"""

from repro.bench.figures import (
    ALL_EXPERIMENTS,
    fig1_stencil_strong,
    fig2_transactions,
    fig3a_pingpong_put,
    fig3b_pingpong_get,
    fig3c_pingpong_shm,
    fig4a_overlap,
    fig4b_stencil_weak,
    fig4c_tree,
    fig5_cholesky,
    sec5_cache_misses,
    table1_loggp,
)
from repro.bench.load import LatencyDigest, ZipfKeys, arrival_times
from repro.bench.report import Table, format_table
from repro.bench.services import svc_kv, svc_pubsub
from repro.bench.runner import (
    SMOKE_CONFIGS,
    SWEEP_PARAMS,
    run_experiment,
    write_bench_json,
)

__all__ = [
    "Table",
    "format_table",
    "run_experiment",
    "write_bench_json",
    "SMOKE_CONFIGS",
    "SWEEP_PARAMS",
    "fig1_stencil_strong",
    "fig3a_pingpong_put",
    "fig3b_pingpong_get",
    "fig3c_pingpong_shm",
    "fig4a_overlap",
    "fig4b_stencil_weak",
    "fig4c_tree",
    "fig5_cholesky",
    "table1_loggp",
    "sec5_cache_misses",
    "fig2_transactions",
    "svc_kv",
    "svc_pubsub",
    "arrival_times",
    "ZipfKeys",
    "LatencyDigest",
    "ALL_EXPERIMENTS",
]
