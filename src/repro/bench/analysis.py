"""Post-run trace analysis: traffic matrices and message statistics.

Works on a cluster built with ``trace=True``; used by tests and available
to users for understanding a simulated application's communication shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate statistics of one traced run."""

    nranks: int
    messages: np.ndarray        # (nranks, nranks) message counts
    bytes_: np.ndarray          # (nranks, nranks) byte counts
    by_op: dict[str, int]

    @property
    def total_messages(self) -> int:
        return int(self.messages.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_.sum())

    def hottest_pair(self) -> tuple[int, int]:
        """(src, dst) moving the most bytes."""
        idx = int(np.argmax(self.bytes_))
        return idx // self.nranks, idx % self.nranks

    def imbalance(self) -> float:
        """Max/mean ratio of per-rank sent bytes (1.0 = perfectly even)."""
        sent = self.bytes_.sum(axis=1)
        mean = sent.mean()
        if mean == 0:
            return 1.0
        return float(sent.max() / mean)


def traffic_matrix(tracer: Tracer, nranks: int) -> TrafficSummary:
    """Build the (src, dst) traffic matrix from wire records."""
    if not tracer.enabled:
        raise ReproError(
            "tracer has no records; build the cluster with trace=True")
    messages = np.zeros((nranks, nranks), dtype=np.int64)
    bytes_ = np.zeros((nranks, nranks), dtype=np.int64)
    by_op: Counter[str] = Counter()
    for rec in tracer.records:
        if rec.kind != "wire":
            continue
        messages[rec.src, rec.dst] += 1
        bytes_[rec.src, rec.dst] += rec.nbytes
        by_op[rec.detail.get("op", "?")] += 1
    return TrafficSummary(nranks=nranks, messages=messages, bytes_=bytes_,
                          by_op=dict(by_op))


def message_size_histogram(tracer: Tracer,
                           edges=(0, 64, 512, 4096, 65536, 1 << 30)
                           ) -> dict[str, int]:
    """Histogram of wire message sizes across standard buckets."""
    if not tracer.enabled:
        raise ReproError(
            "tracer has no records; build the cluster with trace=True")
    sizes = [rec.nbytes for rec in tracer.records if rec.kind == "wire"]
    out = {}
    for lo, hi in zip(edges, edges[1:]):
        label = f"[{lo}, {hi})" if hi < (1 << 30) else f">= {lo}"
        out[label] = sum(1 for s in sizes if lo <= s < hi)
    return out
