"""Events/sec trend ledger: append-only history of bench runs.

Every :func:`~repro.bench.runner.run_experiment` call can append one line
of metadata to ``benchmarks/history/<experiment>.jsonl`` — a flat,
merge-friendly ledger that accumulates one entry per PR/CI run.  The
ledger is what turns the smoke job's single-point events/sec check into a
*trajectory*: ``python -m repro.bench --trend`` renders the per-run
events/sec series per experiment, and ``benchmarks/smoke.py`` fails when
the freshly measured throughput falls too far below the best recent
ledger entry (a slow-creep regression the 3x absolute tolerance would
miss).

Ledger entry schema (one JSON object per line)::

    {"ts": "2026-08-08T12:00:00Z", "rev": "835a47b",
     "experiment": "fig1", "scheduler": "calendar", "jobs": 2,
     "shards": 0, "events": 371560, "wall_s": 1.64,
     "events_per_s": 226305.0, "cp_s": 0.0, "events_per_s_cp": 0.0,
     "kwargs": {...}}

``cp_s`` / ``events_per_s_cp`` are nonzero only for runs that executed
on the sharded conservative-parallel core: critical-path CPU seconds
(slowest worker + coordinator, see
:func:`repro.sim.shard.critical_path_seconds`) and the events/sec over
that denominator — the aggregate fleet rate, i.e. the projected
wall-clock rate on a machine with one dedicated core per shard.  The
raw ``wall_s``/``events_per_s`` stay exactly as measured on the host.

Entries are environment-sensitive (they record wall time on whatever
machine ran them), so the *check* compares against the best of a recent
window rather than a single predecessor.  One ledger file can hold runs
of *different configurations* of an experiment (the smoke config next to
a 10k-rank weak-scaling point): entries record their ``kwargs``, and
:func:`trend_check` only compares entries whose configuration matches
the measurement's — a huge sharded sweep can't raise the floor the tiny
CI smoke config is held to.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Any

#: measured events/sec may be this many times below the best recent ledger
#: entry before the trend check fails (machine-to-machine variance is real;
#: a genuine scheduler regression shows up far beyond this).
TREND_TOLERANCE = 3.0

#: number of most-recent ledger entries the trend check compares against
TREND_WINDOW = 10

_SPARKS = "▁▂▃▄▅▆▇█"


def _git_rev() -> str | None:
    """Current short git revision, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except OSError:  # pragma: no cover - git missing entirely
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def history_path(dir_path: str, eid: str) -> str:
    return os.path.join(dir_path, f"{eid}.jsonl")


def append_entry(dir_path: str, meta: dict[str, Any], *,
                 rev: str | None = None,
                 ts: str | None = None) -> dict[str, Any]:
    """Append one run's metadata to the ledger; returns the entry written.

    ``meta`` is the dict returned by ``run_experiment``.  ``rev`` and
    ``ts`` default to the current git revision and UTC time.
    """
    entry = {
        "ts": ts or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rev": rev if rev is not None else _git_rev(),
        "experiment": meta["experiment"],
        "scheduler": meta.get("scheduler"),
        "jobs": meta["jobs"],
        "shards": meta.get("shards", 0),
        "events": meta["events"],
        "wall_s": round(float(meta["wall_s"]), 4),
        "events_per_s": round(float(meta["events_per_s"]), 1),
        "cp_s": round(float(meta.get("cp_s", 0.0)), 4),
        "events_per_s_cp": round(float(meta.get("events_per_s_cp", 0.0)), 1),
        "kwargs": meta.get("kwargs"),
    }
    os.makedirs(dir_path, exist_ok=True)
    with open(history_path(dir_path, meta["experiment"]), "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(dir_path: str, eid: str) -> list[dict[str, Any]]:
    """All ledger entries for ``eid``, oldest first ([] if none)."""
    path = history_path(dir_path, eid)
    entries: list[dict[str, Any]] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    except OSError:
        return []
    return entries


def trend_check(dir_path: str, eid: str, events_per_s: float,
                tolerance: float = TREND_TOLERANCE,
                window: int = TREND_WINDOW,
                kwargs: dict[str, Any] | None = None,
                require_history: bool = False) -> str | None:
    """Compare a fresh measurement against the recent ledger.

    Returns None when the measurement is acceptable, else a
    human-readable failure message.  The floor is ``best(last window
    entries) / tolerance``.  With ``kwargs`` given, only ledger entries
    recording the same experiment configuration count (entries
    predating config recording match any).  An empty ledger passes by
    default (a fresh checkout has no history); with ``require_history``
    it fails loudly instead — the CI gate sets it so a newly registered
    experiment must arrive with a seeded ledger series rather than
    silently skipping the trend check on every run.
    """
    entries = load_history(dir_path, eid)
    if kwargs is not None:
        entries = [e for e in entries
                   if "kwargs" not in e or e["kwargs"] == kwargs]
    if not entries:
        if require_history:
            return (f"{eid}: no ledger entries for this configuration "
                    f"under {dir_path} — seed the trend ledger "
                    f"(run benchmarks/smoke.py with --history and "
                    f"commit the appended {eid}.jsonl)")
        return None
    recent = entries[-window:]
    best = max(e["events_per_s"] for e in recent)
    floor = best / tolerance
    if events_per_s < floor:
        return (f"{eid}: events/sec trend regression: "
                f"{events_per_s:,.0f} < {floor:,.0f} (best of last "
                f"{len(recent)} ledger entries {best:,.0f} / "
                f"{tolerance}x tolerance)")
    return None


def _sparkline(values: list[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARKS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARKS[int((v - lo) / span * (len(_SPARKS) - 1))] for v in values)


def _ledger_order(found: list[str]) -> list[str]:
    """Stable experiment order for the trend report.

    Registry order first (the paper's figure order, then extensions like
    ``shard_weak``), then any ledger files for experiments no longer in
    the registry, alphabetically — so renders don't reshuffle as ledger
    files appear or experiments are added.
    """
    from repro.bench.figures import ALL_EXPERIMENTS
    present = set(found)
    ordered = [e for e in ALL_EXPERIMENTS if e in present]
    ordered += sorted(present - set(ALL_EXPERIMENTS))
    return ordered


def render_trend(dir_path: str, eids: list[str] | None = None) -> str:
    """Plain-text trend report over the ledger (for ``--trend``)."""
    if eids is None:
        found = [
            f[:-len(".jsonl")] for f in os.listdir(dir_path)
            if f.endswith(".jsonl")] if os.path.isdir(dir_path) else []
        eids = _ledger_order(found)
    lines: list[str] = []
    for eid in eids:
        entries = load_history(dir_path, eid)
        if not entries:
            lines.append(f"{eid}: no history")
            continue
        eps = [float(e["events_per_s"]) for e in entries]
        latest = entries[-1]
        first, last, best = eps[0], eps[-1], max(eps)
        rel = (last / first - 1.0) * 100.0 if first > 0 else 0.0
        lines.append(
            f"{eid}: {len(entries)} runs  {_sparkline(eps)}  "
            f"latest {last:,.0f} ev/s ({rel:+.0f}% vs first, "
            f"best {best:,.0f}) "
            f"[rev {latest.get('rev') or '?'}, "
            f"{latest.get('scheduler') or '?'} scheduler]")
    if not lines:
        return "no bench history found"
    return "\n".join(lines)
