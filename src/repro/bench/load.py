"""Open-loop load generation and latency-distribution measurement.

The paper's benchmarks are closed-loop (ping-pong: the next request is
only issued once the previous one completed), which measures *latency
under zero queueing* — useless for a serving story, where the question
is what the latency distribution looks like at a given *offered load*.
This module provides the three reusable pieces the service workloads
(:mod:`repro.apps.services`) need:

* :func:`arrival_times` — deterministic, seeded open-loop arrival
  schedules (Poisson or uniform-jitter processes).  Schedules are pure
  functions of ``(seed, label)``: the same seed yields a byte-identical
  schedule no matter the host, the ``--jobs`` pool layout, or the shard
  count, so the bench byte-equality contracts extend to the service
  tables.
* :class:`ZipfKeys` — key-popularity skew (Zipf over a fixed key space),
  the access pattern that concentrates load on a few hot shards.
* :class:`LatencyDigest` — a fixed-bucket log-histogram of per-request
  latencies supporting exact-rank p50/p99/p999 extraction with a
  one-bucket-width accuracy bound, and O(buckets) merge across ranks.

Digest design
-------------
Buckets are geometric: bucket ``i`` spans ``[lo * r^i, lo * r^(i+1))``
with ``r = 10^(1/buckets_per_decade)``, so relative resolution is
constant across the whole range (~7.5% per bucket at the default 32
buckets/decade).  Recording is a counter increment; merging is a vector
add.  ``percentile(p)`` selects the bucket containing the exact
``ceil(n*p/100)``-th order statistic (counts are exact, so the bucket is
exact) and returns the bucket's geometric midpoint — hence the returned
value is always within one bucket width of the true order statistic
(numpy's ``percentile(..., method="inverted_cdf")``), the bound the
property tests pin.  Samples outside ``[lo_us, hi_us)`` clamp into the
first/last bucket; pick bounds generously (the defaults span 10 ns to
10 s of virtual time).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.sim.rng import RngStream

#: processes supported by :func:`arrival_times`
ARRIVAL_PROCESSES = ("poisson", "uniform")

#: floor on inter-arrival gaps (µs): keeps schedules strictly increasing
#: even when the RNG draws an exact 0.0
_MIN_GAP_US = 1e-9


def arrival_times(seed: int, label: object, n: int, rate_rps: float,
                  process: str = "poisson") -> np.ndarray:
    """``n`` arrival offsets (µs, strictly increasing) at ``rate_rps``.

    ``process`` selects the inter-arrival law (mean ``1e6/rate_rps`` µs
    either way):

    * ``"poisson"`` — exponential gaps, the memoryless open-loop arrival
      process of classic service benchmarks;
    * ``"uniform"`` — gaps uniform over ``[0.5, 1.5] / rate``, a
      low-variance pacing useful to separate queueing effects from
      arrival burstiness.

    The schedule derives from ``RngStream(seed, "load", process, label)``
    only — deterministic replay is part of the contract (property-tested),
    because the service tables must stay byte-identical across ``--jobs``
    and ``--shards`` configurations.
    """
    if n < 1:
        raise ValueError(f"need at least one arrival, got n={n}")
    if rate_rps <= 0.0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if process not in ARRIVAL_PROCESSES:
        raise ValueError(f"unknown arrival process {process!r}; "
                         f"choose from {ARRIVAL_PROCESSES}")
    stream = RngStream(seed, "load", process, label)
    mean_us = 1e6 / rate_rps
    u = stream.array(n)                      # [0, 1) draws, float64
    if process == "poisson":
        gaps = -mean_us * np.log1p(-u)       # inverse-CDF exponential
    else:
        gaps = mean_us * (0.5 + u)
    np.maximum(gaps, _MIN_GAP_US, out=gaps)
    return np.cumsum(gaps)


class ZipfKeys:
    """Zipf(``skew``) popularity over ``nkeys`` keys (0-based ids).

    ``skew = 0`` degenerates to the uniform distribution; larger values
    concentrate traffic on low-numbered keys (rank-1 hottest).  Sampling
    is inverse-CDF over the precomputed mass function, so it is exactly
    reproducible from the :class:`~repro.sim.rng.RngStream` passed in.
    """

    def __init__(self, nkeys: int, skew: float = 0.99):
        if nkeys < 1:
            raise ValueError(f"nkeys must be >= 1, got {nkeys}")
        if skew < 0.0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.nkeys = nkeys
        self.skew = skew
        weights = np.arange(1, nkeys + 1, dtype=np.float64) ** -skew
        self._cdf = np.cumsum(weights / weights.sum())
        self._cdf[-1] = 1.0                  # guard FP undershoot

    def sample(self, stream: RngStream, n: int) -> np.ndarray:
        """``n`` key ids drawn from the popularity distribution."""
        u = stream.array(n)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)


class LatencyDigest:
    """Fixed-bucket log-histogram with exact-rank percentile extraction."""

    __slots__ = ("lo_us", "hi_us", "buckets_per_decade", "nbuckets",
                 "counts", "_log_lo", "_scale")

    def __init__(self, lo_us: float = 1e-2, hi_us: float = 1e7,
                 buckets_per_decade: int = 32):
        if not (0.0 < lo_us < hi_us):
            raise ValueError(f"need 0 < lo_us < hi_us, got "
                             f"({lo_us}, {hi_us})")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.lo_us = float(lo_us)
        self.hi_us = float(hi_us)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(hi_us / lo_us)
        self.nbuckets = max(1, math.ceil(decades * buckets_per_decade))
        self.counts = np.zeros(self.nbuckets, dtype=np.int64)
        self._log_lo = math.log10(self.lo_us)
        self._scale = float(buckets_per_decade)

    # -- recording ------------------------------------------------------
    def _index(self, value_us: float) -> int:
        if value_us <= self.lo_us:
            return 0
        i = int(math.floor(
            (math.log10(value_us) - self._log_lo) * self._scale))
        return min(max(i, 0), self.nbuckets - 1)

    def record(self, value_us: float) -> None:
        """Record one latency sample (µs)."""
        self.counts[self._index(value_us)] += 1

    def record_many(self, values_us: Iterable[float] | np.ndarray) -> None:
        """Record a batch of latency samples (µs)."""
        v = np.asarray(list(values_us) if not isinstance(values_us,
                                                         np.ndarray)
                       else values_us, dtype=np.float64)
        if v.size == 0:
            return
        clipped = np.clip(v, self.lo_us, None)
        idx = np.floor(
            (np.log10(clipped) - self._log_lo) * self._scale).astype(np.int64)
        np.clip(idx, 0, self.nbuckets - 1, out=idx)
        np.add.at(self.counts, idx, 1)

    def merge(self, other: LatencyDigest) -> None:
        """Fold another digest (identical bucketing) into this one."""
        if (other.lo_us, other.hi_us, other.buckets_per_decade) != \
                (self.lo_us, self.hi_us, self.buckets_per_decade):
            raise ValueError("cannot merge digests with different bucketing")
        self.counts += other.counts

    # -- extraction -----------------------------------------------------
    @property
    def count(self) -> int:
        """Total samples recorded."""
        return int(self.counts.sum())

    def bucket_bounds(self, i: int) -> tuple[float, float]:
        """``[lo, hi)`` edges of bucket ``i`` (µs)."""
        lo = self.lo_us * 10.0 ** (i / self._scale)
        hi = self.lo_us * 10.0 ** ((i + 1) / self._scale)
        return lo, hi

    def percentile(self, p: float) -> float:
        """Latency (µs) at percentile ``p`` (0 < p <= 100).

        Selects the bucket holding the exact ``ceil(n * p / 100)``-th
        order statistic and returns its geometric midpoint — within one
        bucket width of ``numpy.percentile(samples, p,
        method="inverted_cdf")`` for in-range samples.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        n = self.count
        if n == 0:
            raise ValueError("percentile of an empty digest")
        k = max(1, math.ceil(n * p / 100.0 - 1e-9))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += int(c)
            if seen >= k:
                lo, hi = self.bucket_bounds(i)
                return math.sqrt(lo * hi)
        raise AssertionError("unreachable: cumulative count underflow")

    def percentiles(self, ps: Sequence[float] = (50.0, 99.0, 99.9)
                    ) -> list[float]:
        """Batch :meth:`percentile` — default p50/p99/p999."""
        return [self.percentile(p) for p in ps]
