"""foMPI-NA-style API shim: the paper's C interface, near-verbatim.

The paper extends MPI with ``foMPI_Put_notify``, ``foMPI_Get_notify``,
``foMPI_Notify_init`` (+ the standard ``MPI_Start``/``Wait``/``Test``/
``Request_free``), keeping buffer/count/datatype signatures.  This module
exposes the same names and argument orders over the simulated runtime, so
the paper's Listing 1 transcribes almost line by line (see
``examples/listing1_pingpong.py``).

Every function takes the rank context ``ctx`` first (the simulator's stand-
in for the implicit MPI process state) and is used with ``yield from``.
Counts are in elements of the given NumPy dtype, displacements in the
window's disp units, exactly like the MPI calls.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.core.nrequest import NotifyRequest
from repro.mpi.constants import ANY_SOURCE, ANY_TAG  # noqa: F401  (re-export)
from repro.mpi.status import Status
from repro.rma.window import Window

#: re-exported wildcard names matching the MPI spelling
MPI_ANY_SOURCE = ANY_SOURCE
MPI_ANY_TAG = ANY_TAG


def Win_allocate(ctx, size_bytes: int,
                 disp_unit: int = 1) -> Generator[object, object, Window]:
    """MPI_Win_allocate (collective)."""
    win = yield from ctx.win_allocate(size_bytes, disp_unit=disp_unit)
    return win


def Win_free(ctx, win: Window) -> Generator[object, object, None]:
    """MPI_Win_free (collective)."""
    yield from win.free()


def Win_flush(ctx, target_rank: int,
              win: Window) -> Generator[object, object, None]:
    """MPI_Win_flush: remote completion of pending ops to ``target_rank``."""
    yield from win.flush(target_rank)


def Win_flush_local(ctx, target_rank: int,
                    win: Window) -> Generator[object, object, None]:
    yield from win.flush_local(target_rank)


def Put_notify(ctx, origin_buf: np.ndarray, origin_count: int, dtype,
               target_rank: int, target_disp: int, target_count: int,
               target_dtype, win: Window,
               tag: int) -> Generator[object, object, None]:
    """foMPI_Put_notify(origin_addr, origin_count, origin_type, ...)."""
    if origin_count * np.dtype(dtype).itemsize != \
            target_count * np.dtype(target_dtype).itemsize:
        raise ValueError("origin and target transfer sizes differ")
    data = np.ascontiguousarray(origin_buf).reshape(-1)[:origin_count]
    yield from ctx.na.put_notify(win, data.astype(dtype, copy=False),
                                 target_rank, target_disp, tag=tag)


def Get_notify(ctx, origin_region, origin_count: int, dtype,
               target_rank: int, target_disp: int, target_count: int,
               target_dtype, win: Window,
               tag: int) -> Generator[object, object, None]:
    """foMPI_Get_notify; ``origin_region`` is the local landing Region."""
    nbytes = target_count * np.dtype(target_dtype).itemsize
    if origin_count * np.dtype(dtype).itemsize != nbytes:
        raise ValueError("origin and target transfer sizes differ")
    yield from ctx.na.get_notify(win, origin_region, target_rank,
                                 target_disp, nbytes=nbytes, tag=tag)


def Notify_init(ctx, win: Window, source_rank: int, tag: int,
                expected_count: int
                ) -> Generator[object, object, NotifyRequest]:
    """foMPI_Notify_init: a persistent notification request."""
    req = yield from ctx.na.notify_init(win, source=source_rank, tag=tag,
                                        expected_count=expected_count)
    return req


def Start(ctx, request: NotifyRequest) -> Generator[object, object, None]:
    """MPI_Start on a notification request."""
    yield from ctx.na.start(request)


def Wait(ctx, request: NotifyRequest
         ) -> Generator[object, object, Status]:
    """MPI_Wait; returns the status of the last matching notified access."""
    status = yield from ctx.na.wait(request)
    return status


def Test(ctx, request: NotifyRequest
         ) -> Generator[object, object, tuple[bool, Status | None]]:
    """MPI_Test; returns (flag, status or None)."""
    done = yield from ctx.na.test(request)
    return done, (request.last_status if done else None)


def Request_free(ctx,
                 request: NotifyRequest) -> Generator[object, object, None]:
    """MPI_Request_free on a persistent notification request."""
    yield from ctx.na.request_free(request)
