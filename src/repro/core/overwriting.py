"""Overwriting notifications — the GASPI/GPI-2 scheme of §VII.

The paper's related-work taxonomy distinguishes three notification designs:

* **counting** identifiers (Split-C signaling stores, LAPI counters; our
  :mod:`repro.core.counters`) — scalable, but carry no value;
* **overwriting** identifiers (GASPI ``write_notify``; this module) — carry
  a value, but act as atomic registers: a second write to the same
  notification id before it is consumed *overwrites* the first, and arrival
  order across ids is lost;
* **queueing** (the paper's contribution) — values *and* arrival order,
  without per-producer slot coordination.

Here a target exposes an array of notification registers next to its
window.  ``write_notify`` delivers data and a nonzero value into one
register in a single transaction (in-order on the fabric, like GPI-2 on a
reliable network); the consumer polls/resets registers.  The lost-update
hazard and the O(#registers) scan cost are real and tested — they are the
reasons the paper gives for the queueing design.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MatchingError
from repro.rma.window import Window
from repro.sim.resources import Signal

#: CPU cost of scanning one notification register, µs
T_SLOT_SCAN = 0.008
#: CPU cost of consuming (reset) a fired register, µs
T_SLOT_RESET = 0.01


class NotificationSpace:
    """A target's array of overwriting notification registers."""

    def __init__(self, ctx, num: int):
        if num < 1:
            raise MatchingError("need at least one notification register")
        self.ctx = ctx
        self.num = num
        self.region = ctx.space.alloc(num * 8, align=64)
        # The registers *are* the synchronization primitive: they are
        # polled by design, so the sanitizer tracks them via per-slot
        # clocks instead of shadow accesses.
        self.region.san_ignore = True
        self.region.ndarray(np.int64)[:] = 0
        self.signal = Signal(ctx.engine, name=f"gaspi:{ctx.rank}")
        self.overwrites = 0           # lost updates observed at delivery
        #: clock of the write last delivered into each register —
        #: overwritten like the value itself (the §VII lost update)
        self.slot_clocks: list = [None] * num

    def _regs(self) -> np.ndarray:
        return self.region.ndarray(np.int64)

    def deliver(self, slot: int, value: int, san_clock=None) -> None:
        """Fabric-side register write (overwrites silently)."""
        regs = self._regs()
        if regs[slot] != 0:
            self.overwrites += 1       # the §VII lost-update hazard
        regs[slot] = value
        self.slot_clocks[slot] = san_clock
        self.signal.fire(slot)

    def free(self) -> None:
        self.region.free()


class OverwriteEngine:
    """GASPI-style notified writes for one rank."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.rank = ctx.rank
        self.engine = ctx.engine
        self.params = ctx.params
        #: notification spaces this rank exposes, keyed by window id
        self.spaces: dict[int, NotificationSpace] = {}

    # -- target side --------------------------------------------------------
    def notification_init(self, win: Window,
                          num: int) -> Generator[object, object,
                                                 NotificationSpace]:
        """Expose ``num`` notification registers for ``win``."""
        if win.id in self.spaces:
            raise MatchingError(
                f"window {win.id} already has a notification space")
        space = NotificationSpace(self.ctx, num)
        self.spaces[win.id] = space
        # Registration is collective-free in GASPI (segment-relative ids);
        # only the local setup cost is charged.
        yield self.engine.timeout(self.params.t_init)
        return space

    def waitsome(self, space: NotificationSpace, lo: int = 0,
                 num: int | None = None
                 ) -> Generator[object, object, tuple[int, int]]:
        """Block until some register in ``[lo, lo+num)`` is nonzero;
        returns ``(slot, value)`` and resets the register.

        The scan cost is proportional to the registers examined — the
        per-expected-notification storage/scan overhead §VII attributes to
        overwriting interfaces.
        """
        if num is None:
            num = space.num - lo
        if lo < 0 or num < 1 or lo + num > space.num:
            raise MatchingError(f"register range [{lo}, {lo + num}) "
                                f"outside space of {space.num}")
        while True:
            regs = space._regs()
            window = regs[lo:lo + num]
            hits = np.nonzero(window)[0]
            scanned = int(hits[0]) + 1 if hits.size else num
            yield self.engine.timeout(T_SLOT_SCAN * scanned)
            if hits.size:
                slot = lo + int(hits[0])
                # Read the value after the scan-time charge: overwriting
                # semantics — a racing second write is absorbed.
                value = int(regs[slot])
                regs[slot] = 0
                san = getattr(self.ctx.cluster, "sanitizer", None)
                if san is not None:
                    # Consuming the register orders the consumer after the
                    # write that (last) set it.
                    san.acquire(self.rank, space.slot_clocks[slot])
                yield self.engine.timeout(T_SLOT_RESET)
                return slot, value
            # A register may have fired while the scan time was charged;
            # re-check before arming the signal, or the wakeup is lost.
            if np.any(space._regs()[lo:lo + num]):
                continue
            yield space.signal.wait()

    # -- origin side --------------------------------------------------------
    def write_notify(self, win: Window, data: np.ndarray, target: int,
                     target_disp: int, slot: int,
                     value: int = 1) -> Generator[object, object, object]:
        """GASPI ``gaspi_write_notify``: data plus a register update, one
        transaction, ordered with respect to its own data."""
        if value == 0:
            raise MatchingError("notification value 0 means 'empty'")
        tgt_engine: OverwriteEngine = \
            self.ctx.cluster.ranks[target].gaspi
        space = tgt_engine.spaces.get(win.id)
        if space is None:
            raise MatchingError(
                f"rank {target} exposes no notification space for window "
                f"{win.id}")
        if not 0 <= slot < space.num:
            raise MatchingError(f"register {slot} outside space of "
                                f"{space.num}")
        data = np.ascontiguousarray(data)
        nbytes = int(data.nbytes)
        addr = win.shared.target_addr(target, target_disp, nbytes)
        yield self.engine.timeout(self.params.o_send)
        h = self.ctx.fabric.put(self.rank, target, addr, data,
                                win_id=win.id)
        win.record_pending(target, h)
        # Register update committed with (after) the data, same transaction.
        # A transfer the fault layer declared lost never commits, so its
        # register must never fire either (it used to, delivering a
        # notification for data that never arrived).
        if not h.failed:
            self.ctx.fabric._at(
                h.commit_at,
                lambda: space.deliver(
                    slot, value,
                    None if h.san_remote is None else h.san_remote.vc))
        if h.cpu_busy:
            yield self.engine.timeout(h.cpu_busy)
        return h
