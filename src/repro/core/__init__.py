"""Notified Access — the paper's contribution (§III–§IV).

Adds a remote completion notification to any RMA access:

* :meth:`NotifyEngine.put_notify` / :meth:`NotifyEngine.get_notify` /
  :meth:`NotifyEngine.accumulate_notify` — notified variants of the RMA
  data-movement calls, each carrying an integer ``tag``;
* :meth:`NotifyEngine.notify_init` — a **persistent** notification request
  bound to ``(window, source, tag, expected_count)``, supporting
  ``ANY_SOURCE``/``ANY_TAG`` wildcards and counting semantics;
* :meth:`NotifyEngine.start` / :meth:`NotifyEngine.test` /
  :meth:`NotifyEngine.wait` — request lifecycle, matching against the
  unexpected queue and the hardware destination completion queues.

The matching path is instrumented against the rank's cache-line model so the
"two compulsory cache misses" claim of §V is measured, not assumed.
"""

from repro.core.counters import CounterEngine, CounterRequest
from repro.core.engine import NotifyEngine
from repro.core.matching import UnexpectedQueue, UqEntry
from repro.core.nrequest import NotifyRequest
from repro.core.overwriting import NotificationSpace, OverwriteEngine

__all__ = [
    "NotifyEngine",
    "NotifyRequest",
    "UnexpectedQueue",
    "UqEntry",
    "CounterEngine",
    "CounterRequest",
    "OverwriteEngine",
    "NotificationSpace",
]
