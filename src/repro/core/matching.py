"""The Unexpected Queue (UQ) and notification matching (§IV-B).

Notifications polled off the hardware CQs that do not match the querying
request are appended to a single per-rank UQ, preserving arrival order.
The UQ is backed by a ring of 64-byte slots in the rank's address space;
the head pointer lives on the same cache line as the first slot, which is
what bounds a cold lookup to one miss for the queue (plus one for the
request structure) — the paper's two-compulsory-miss argument.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.errors import MatchingError
from repro.memory.address import Region
from repro.memory.cache import CACHE_LINE, CacheModel
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

#: default UQ capacity in entries
UQ_SLOTS = 512


@dataclass
class UqEntry:
    """One queued notification."""

    win_id: int
    source: int
    tag: int
    nbytes: int
    time: float
    slot_addr: int
    #: originating op's sanitizer clock (carried from the CQ entry)
    san: object = None


class UnexpectedQueue:
    """Arrival-ordered notification queue with cache accounting."""

    def __init__(self, region: Region, cache: CacheModel,
                 slots: int = UQ_SLOTS):
        need = slots * CACHE_LINE
        if region.nbytes < need:
            raise MatchingError(
                f"UQ region of {region.nbytes} B too small for "
                f"{slots} slots")
        self.region = region
        self.cache = cache
        self.slots = slots
        self._entries: deque[UqEntry] = deque()
        # Free-slot list, not a rotating cursor: entries are removed in
        # match order, not FIFO order, so after wraparound a cursor would
        # hand a live entry's slot to a new one and corrupt the per-slot
        # cache accounting.  Lowest-index-first keeps the layout compact.
        self._free_slots: list[int] = list(range(slots))
        self.appended = 0
        self.matched = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def head_addr(self) -> int:
        """The head pointer shares the cache line of slot 0 (§V)."""
        return self.region.addr

    def append(self, win_id: int, source: int, tag: int, nbytes: int,
               time: float, san: object = None) -> UqEntry:
        if not self._free_slots:
            raise MatchingError(
                f"unexpected queue overflow ({self.slots} slots)")
        slot = heapq.heappop(self._free_slots)
        slot_addr = self.region.addr + slot * CACHE_LINE
        entry = UqEntry(win_id, source, tag, nbytes, time, slot_addr,
                        san=san)
        self._entries.append(entry)
        self.appended += 1
        self.cache.touch(slot_addr, CACHE_LINE, label="na-uq-append")
        return entry

    def find_and_remove(self, req) -> UqEntry | None:
        """Oldest entry matching ``req``; touches scanned lines."""
        # Touching the head (pointer + first slots) is the one compulsory
        # queue miss; scanning further entries touches their slots.
        self.cache.touch(self.head_addr, 8, label="na-uq-head")
        for i, entry in enumerate(self._entries):
            self.cache.touch(entry.slot_addr, CACHE_LINE, label="na-uq-scan")
            if req.matches(entry.win_id, entry.source, entry.tag):
                del self._entries[i]
                self.matched += 1
                heapq.heappush(
                    self._free_slots,
                    (entry.slot_addr - self.region.addr) // CACHE_LINE)
                return entry
        return None

    def peek_match(self, win_id: int | None, source: int,
                   tag: int) -> UqEntry | None:
        """Probe-style lookup without consuming (no cache charging)."""
        for entry in self._entries:
            if win_id is not None and entry.win_id != win_id:
                continue
            if source != ANY_SOURCE and entry.source != source:
                continue
            if tag != ANY_TAG and entry.tag != tag:
                continue
            return entry
        return None
