"""The Unexpected Queue (UQ) and notification matching (§IV-B).

Notifications polled off the hardware CQs that do not match the querying
request are appended to a single per-rank UQ, preserving arrival order.
The UQ is backed by a ring of 64-byte slots in the rank's address space;
the head pointer lives on the same cache line as the first slot, which is
what bounds a cold lookup to one miss for the queue (plus one for the
request structure) — the paper's two-compulsory-miss argument.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import islice

import numpy as np

from repro.errors import MatchingError
from repro.memory.address import Region
from repro.memory.cache import CACHE_LINE, CacheModel
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

#: default UQ capacity in entries
UQ_SLOTS = 512

#: below this many queued entries a scalar scan beats the numpy setup cost
_VECTOR_MIN = 16


@dataclass
class UqEntry:
    """One queued notification."""

    win_id: int
    source: int
    tag: int
    nbytes: int
    time: float
    slot_addr: int
    #: originating op's sanitizer clock (carried from the CQ entry)
    san: object = None


class UnexpectedQueue:
    """Arrival-ordered notification queue with cache accounting."""

    def __init__(self, region: Region, cache: CacheModel,
                 slots: int = UQ_SLOTS):
        need = slots * CACHE_LINE
        if region.nbytes < need:
            raise MatchingError(
                f"UQ region of {region.nbytes} B too small for "
                f"{slots} slots")
        self.region = region
        self.cache = cache
        self.slots = slots
        self._entries: list[UqEntry] = []
        # Mirror columns of (win_id, source, tag) kept index-aligned with
        # ``_entries`` so a lookup can compare the whole queue in one
        # vectorized pass instead of a Python loop per entry — the §V
        # high-fan-in case queues thousands of wildcard notifications.
        # Capacity is exactly ``slots`` (append raises on overflow).
        self._win = np.empty(slots, dtype=np.int64)
        self._src = np.empty(slots, dtype=np.int64)
        self._tag = np.empty(slots, dtype=np.int64)
        # Free-slot list, not a rotating cursor: entries are removed in
        # match order, not FIFO order, so after wraparound a cursor would
        # hand a live entry's slot to a new one and corrupt the per-slot
        # cache accounting.  Lowest-index-first keeps the layout compact.
        self._free_slots: list[int] = list(range(slots))
        self.appended = 0
        self.matched = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def head_addr(self) -> int:
        """The head pointer shares the cache line of slot 0 (§V)."""
        return self.region.addr

    def append(self, win_id: int, source: int, tag: int, nbytes: int,
               time: float, san: object = None) -> UqEntry:
        if not self._free_slots:
            raise MatchingError(
                f"unexpected queue overflow ({self.slots} slots)")
        slot = heapq.heappop(self._free_slots)
        slot_addr = self.region.addr + slot * CACHE_LINE
        entry = UqEntry(win_id, source, tag, nbytes, time, slot_addr,
                        san=san)
        n = len(self._entries)
        self._win[n] = win_id
        self._src[n] = source
        self._tag[n] = tag
        self._entries.append(entry)
        self.appended += 1
        self.cache.touch(slot_addr, CACHE_LINE, label="na-uq-append")
        return entry

    def _first_match(self, win_id: int | None, source: int,
                     tag: int) -> int:
        """Index of the oldest entry matching the triple, or -1.

        One vectorized compare over the mirror columns — the textbook
        predicate (window equality, then source/tag unless wildcarded),
        evaluated for the whole queue at once.
        """
        n = len(self._entries)
        if win_id is not None:
            mask = self._win[:n] == win_id
            if source != ANY_SOURCE:
                mask &= self._src[:n] == source
            if tag != ANY_TAG:
                mask &= self._tag[:n] == tag
        elif source != ANY_SOURCE:
            mask = self._src[:n] == source
            if tag != ANY_TAG:
                mask &= self._tag[:n] == tag
        elif tag != ANY_TAG:
            mask = self._tag[:n] == tag
        else:
            return 0 if n else -1
        hits = np.flatnonzero(mask)
        return int(hits[0]) if hits.size else -1

    def _remove_at(self, idx: int) -> UqEntry:
        entries = self._entries
        entry = entries.pop(idx)
        n = len(entries)
        if idx < n:
            # Close the gap in the mirror columns (numpy buffers
            # overlapping slice assignment, so in-place shift is safe).
            self._win[idx:n] = self._win[idx + 1:n + 1]
            self._src[idx:n] = self._src[idx + 1:n + 1]
            self._tag[idx:n] = self._tag[idx + 1:n + 1]
        self.matched += 1
        heapq.heappush(
            self._free_slots,
            (entry.slot_addr - self.region.addr) // CACHE_LINE)
        return entry

    def find_and_remove(self, req) -> UqEntry | None:
        """Oldest entry matching ``req``; touches scanned lines."""
        # Touching the head (pointer + first slots) is the one compulsory
        # queue miss; scanning further entries touches their slots.
        self.cache.touch(self.head_addr, 8, label="na-uq-head")
        entries = self._entries
        win = getattr(req, "win", None)
        win_id = win.id if win is not None else getattr(req, "win_id", None)
        source = getattr(req, "source", None)
        tag = getattr(req, "tag", None)
        if (len(entries) < _VECTOR_MIN or win_id is None
                or source is None or tag is None):
            # Short queue or a request shape the bulk compare cannot
            # introspect: the original scalar scan.
            for i, entry in enumerate(entries):
                self.cache.touch(entry.slot_addr, CACHE_LINE,
                                 label="na-uq-scan")
                if req.matches(entry.win_id, entry.source, entry.tag):
                    return self._remove_at(i)
            return None
        idx = self._first_match(win_id, source, tag)
        # Identical cache accounting to the scalar scan: every slot up to
        # and including the match (or the whole queue on a miss) is
        # touched in arrival order.
        stop = idx + 1 if idx >= 0 else len(entries)
        touch = self.cache.touch
        for entry in islice(entries, stop):
            touch(entry.slot_addr, CACHE_LINE, label="na-uq-scan")
        if idx < 0:
            return None
        return self._remove_at(idx)

    def peek_match(self, win_id: int | None, source: int,
                   tag: int) -> UqEntry | None:
        """Probe-style lookup without consuming (no cache charging)."""
        entries = self._entries
        if len(entries) < _VECTOR_MIN:
            for entry in entries:
                if win_id is not None and entry.win_id != win_id:
                    continue
                if source != ANY_SOURCE and entry.source != source:
                    continue
                if tag != ANY_TAG and entry.tag != tag:
                    continue
                return entry
            return None
        idx = self._first_match(win_id, source, tag)
        return entries[idx] if idx >= 0 else None
