"""Persistent notification requests (§III-B, "Persistent Requests").

A request is a 32-byte structure — two 8-byte values (window, rank), two
4-byte values (tag, type), and two 4-byte values (count, matched) — allocated
in the owning rank's simulated address space so that the matching engine's
touches of it are measured against the cache model.
"""

from __future__ import annotations


from repro.errors import MatchingError
from repro.memory.address import Region
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.status import Status


class NotifyRequest:
    """A persistent request matching ``expected_count`` notified accesses."""

    __slots__ = ("win", "source", "tag", "expected", "matched", "active",
                 "region", "addr", "last_status", "freed", "starts",
                 "completions", "match_log")

    def __init__(self, win, source: int, tag: int, expected: int,
                 region: Region):
        if expected < 1:
            raise MatchingError(
                f"expected_count must be >= 1, got {expected}")
        if tag != ANY_TAG and not 0 <= tag <= 0xFFFF:
            raise MatchingError(
                f"tag {tag} outside the 16 significant tag bits")
        if source != ANY_SOURCE and not 0 <= source < win.shared.nranks:
            raise MatchingError(f"source rank {source} out of range")
        self.win = win
        self.source = source
        self.tag = tag
        self.expected = expected
        self.matched = 0
        self.active = False
        self.region = region
        self.addr = region.addr
        self.last_status: Status | None = None
        self.freed = False
        self.starts = 0
        self.completions = 0
        #: (source, tag, arrival_time) per matched notification of the
        #: current start epoch.  The times are NIC *arrival* clocks, not
        #: observation times: a consumer that tests lazily still reads
        #: the true completion instant — what latency accounting must
        #: use to stay invariant to same-timestamp scheduling order
        #: (the sharded core's tie-break freedom).
        self.match_log: list[tuple[int, int, float]] = []

    @property
    def completed(self) -> bool:
        return self.matched >= self.expected

    def matches(self, win_id: int, source: int, tag: int) -> bool:
        """Does a notification (win, source, tag) match this request?"""
        if win_id != self.win.id:
            return False
        if self.source != ANY_SOURCE and self.source != source:
            return False
        if self.tag != ANY_TAG and self.tag != tag:
            return False
        return True

    def _check_usable(self) -> None:
        if self.freed:
            raise MatchingError("use of a freed notification request")

    def __repr__(self) -> str:  # pragma: no cover
        src = "ANY" if self.source == ANY_SOURCE else self.source
        tag = "ANY" if self.tag == ANY_TAG else self.tag
        return (f"<NotifyRequest win={self.win.id} source={src} tag={tag} "
                f"matched={self.matched}/{self.expected} "
                f"active={self.active}>")
