"""The per-rank Notified Access engine: notified ops and request progress.

Requests are advanced **only inside test and wait** (§IV-B): test searches
the UQ first, then polls the hardware destination completion queues,
appending non-matching notifications to the UQ for later matching.  Wait is
a loop around test that blocks on CQ arrival when nothing is pending.

Timing constants are calibrated so a single-notification matched test costs
the paper's receive overhead ``o_r = 0.07 µs`` (Table/model of §V-A); the
API-call costs ``t_init``, ``t_free``, ``t_start``, ``t_na`` come straight
from :class:`~repro.network.loggp.TransportParams`.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.core.matching import UQ_SLOTS, UnexpectedQueue
from repro.core.nrequest import NotifyRequest
from repro.errors import MatchingError
from repro.memory.cache import CACHE_LINE
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.status import Status
from repro.network.cq import decode_immediate, encode_immediate
from repro.network.fabric import OpHandle
from repro.rma.window import Window

#: fixed cost of one test call (request load + branchwork), µs
T_TEST_BASE = 0.03
#: cost of polling one CQ entry, µs
T_POLL = 0.02
#: cost of processing a matching notification, µs
T_MATCH = 0.02
#: cost of appending a non-matching notification to the UQ, µs
T_APPEND = 0.03
#: cost of scanning one UQ entry, µs
T_SCAN = 0.005


class NotifyEngine:
    """Notified Access operations and matching for one rank."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.rank = ctx.rank
        self.engine = ctx.engine
        self.params = ctx.params
        uq_region = ctx.space.alloc(UQ_SLOTS * CACHE_LINE)
        self.uq = UnexpectedQueue(uq_region, ctx.cache)
        self.live_requests = 0
        self.notified_ops = 0
        self._san = getattr(ctx.cluster, "sanitizer", None)
        # The matching-path constants are calibrated so a single matched
        # test costs the paper's o_r with the default parameters; o_recv
        # scales the whole path for other platforms (e.g. the NoC preset).
        self._scale = self.params.o_recv / (T_TEST_BASE + T_POLL + T_MATCH)

    # ------------------------------------------------------------------
    # notified accesses (origin side)
    # ------------------------------------------------------------------
    def put_notify(self, win: Window, data: np.ndarray, target: int,
                   target_disp: int = 0,
                   tag: int = 0) -> Generator[object, object, OpHandle]:
        """Put with remote notification — one network transaction.

        Supports zero-byte payloads (``data`` empty): only the notification
        is delivered, the credit-message idiom of §III-B.
        """
        data = np.ascontiguousarray(data)
        nbytes = int(data.nbytes)
        addr = win.shared.target_addr(target, target_disp, nbytes)
        imm = encode_immediate(self.rank, tag)
        yield self.engine.timeout(self.params.o_send)   # t_na, pre-injection
        h = self.ctx.fabric.put(self.rank, target, addr, data,
                                win_id=win.id, immediate=imm)
        win.record_pending(target, h)
        self.notified_ops += 1
        if h.cpu_busy:
            yield self.engine.timeout(h.cpu_busy)
        return h

    def get_notify(self, win: Window, buf_region, target: int,
                   target_disp: int = 0, nbytes: int | None = None,
                   tag: int = 0,
                   local_offset: int = 0) -> Generator[object, object,
                                                       OpHandle]:
        """Get with a notification delivered to the **target** (data owner).

        The notification tells the target its buffer has been read and can
        be reused — consumer-managed buffering (§VI-B).
        """
        if nbytes is None:
            nbytes = buf_region.nbytes - local_offset
        addr = win.shared.target_addr(target, target_disp, nbytes)
        imm = encode_immediate(self.rank, tag)
        yield self.engine.timeout(self.params.o_send)   # t_na, pre-injection
        h = self.ctx.fabric.get(self.rank, target, addr, nbytes,
                                buf_region.addr + local_offset,
                                win_id=win.id, immediate=imm)
        win.record_pending(target, h)
        self.notified_ops += 1
        if h.cpu_busy:
            yield self.engine.timeout(h.cpu_busy)
        return h

    def accumulate_notify(self, win: Window, data: np.ndarray, target: int,
                          target_disp: int = 0, op: str = "sum",
                          tag: int = 0,
                          dtype=np.float64) -> Generator[object, object,
                                                         OpHandle]:
        """Notified MPI_Accumulate (the paper: "similar functions can be
        created for MPI's accumulate operations")."""
        data = np.ascontiguousarray(data)
        nbytes = int(data.nbytes)
        addr = win.shared.target_addr(target, target_disp, nbytes)
        imm = encode_immediate(self.rank, tag)
        yield self.engine.timeout(self.params.o_send)   # t_na, pre-injection
        h = self.ctx.fabric.put(self.rank, target, addr, data,
                                win_id=win.id, immediate=imm,
                                accumulate=op, acc_dtype=dtype)
        win.record_pending(target, h)
        self.notified_ops += 1
        if h.cpu_busy:
            yield self.engine.timeout(h.cpu_busy)
        return h

    # ------------------------------------------------------------------
    # request lifecycle (target side)
    # ------------------------------------------------------------------
    def notify_init(self, win: Window, source: int = ANY_SOURCE,
                    tag: int = ANY_TAG, expected_count: int = 1
                    ) -> Generator[object, object, NotifyRequest]:
        """Allocate a persistent notification request (MPI_Notify_init)."""
        region = self.ctx.space.alloc(self.params.request_bytes, align=64)
        req = NotifyRequest(win, source, tag, expected_count, region)
        self.live_requests += 1
        yield self.engine.timeout(self.params.t_init)
        return req

    def start(self, req: NotifyRequest) -> Generator[object, object, None]:
        """(Re)activate a persistent request (MPI_Start)."""
        req._check_usable()
        if req.active and not req.completed:
            raise MatchingError("MPI_Start on an active, incomplete request")
        req.matched = 0
        req.last_status = None
        req.match_log.clear()
        req.active = True
        req.starts += 1
        # Resetting the matched counter touches the request structure.
        self.ctx.cache.touch(req.addr, self.params.request_bytes,
                             label="na-request")
        yield self.engine.timeout(self.params.t_start)

    def request_free(self,
                     req: NotifyRequest) -> Generator[object, object, None]:
        """Free a persistent request (MPI_Request_free)."""
        req._check_usable()
        if req.active and not req.completed:
            raise MatchingError("freeing an active, incomplete request")
        req.freed = True
        req.region.free()
        self.live_requests -= 1
        yield self.engine.timeout(self.params.t_free)

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def test(self, req: NotifyRequest) -> Generator[object, object, bool]:
        """One matching pass; True when the request is complete (§IV-B)."""
        req._check_usable()
        if not req.active:
            raise MatchingError("test on an inactive request (call start)")
        cost = T_TEST_BASE * self._scale
        # 1. Load the request structure itself (first compulsory miss).
        self.ctx.cache.touch(req.addr, self.params.request_bytes,
                             label="na-request")
        if req.completed:
            yield self.engine.timeout(cost)
            return True
        # 2. Search the UQ for already-arrived matching notifications
        #    (second compulsory miss: the queue head).
        scanned_before = len(self.uq)
        while not req.completed:
            entry = self.uq.find_and_remove(req)
            if entry is None:
                break
            req.matched += 1
            req.last_status = Status(source=entry.source, tag=entry.tag,
                                     count=entry.nbytes)
            req.match_log.append((entry.source, entry.tag, entry.time))
            if self._san is not None:
                # Matching a notification is the acquire side of the
                # notified access: the consumer is now ordered after it.
                self._san.acquire_op(self.rank, entry.san)
            cost += T_MATCH * self._scale
        cost += scanned_before * T_SCAN * self._scale
        # 3. Poll the hardware destination queues for new notifications.
        nic = self.ctx.nic
        while not req.completed:
            cqe = nic.poll_notification()
            if cqe is None:
                cost += T_POLL * self._scale  # one empty poll
                break
            cost += T_POLL * self._scale
            source, tag = decode_immediate(cqe.immediate)
            if req.matches(cqe.win_id, source, tag):
                req.matched += 1
                req.last_status = Status(source=source, tag=tag,
                                         count=cqe.nbytes)
                req.match_log.append((source, tag, cqe.time))
                if self._san is not None:
                    self._san.acquire_op(self.rank, cqe.san)
                cost += T_MATCH * self._scale
            else:
                self.uq.append(cqe.win_id, source, tag, cqe.nbytes,
                               cqe.time, san=cqe.san)
                cost += T_APPEND * self._scale
        yield self.engine.timeout(cost)
        if req.completed:
            req.completions += 1
            return True
        return False

    def _death_timer(self, reqs: list[NotifyRequest]):
        """Fail-fast support for waits that could block on a dead peer.

        With node failures planned, a blocking wait races its arrival
        event against a timer to the next failure-*detection* instant
        (``death + detect_us``) so it re-examines its sources promptly
        instead of stalling to deadlock detection.  Raises
        :class:`~repro.errors.FaultError` naming the dead rank when every
        source the wait can still match is a detected-dead rank — no
        surviving node can ever complete it.  Wildcard (``ANY_SOURCE``)
        requests never fail here: any live rank may still match them, so
        failover for those lives in :mod:`repro.ft`.  Fault-free runs
        (no injector, or no ``node_failures``) take none of this path.
        """
        faults = self.ctx.fabric.faults
        if faults is None or not faults.plan.node_failures:
            return None
        now = self.engine.now
        dead = [r.source for r in reqs
                if r.source != ANY_SOURCE and faults.detected(r.source, now)]
        if dead and len(dead) == len(reqs):
            raise faults.dead_wait_error("notification", self.rank, dead[0])
        nxt = faults.next_detection(now)
        if nxt is None:
            return None
        return self.engine.timeout(nxt - now)

    def wait(self, req: NotifyRequest) -> Generator[object, object, Status]:
        """Block until the request completes; returns the status of the
        **last** matching notified access.

        Raises :class:`~repro.errors.FaultError` at the failure-detection
        latency when the request's (specific) source rank has died and the
        request cannot complete — see :meth:`_death_timer`.
        """
        while True:
            done = yield from self.test(req)
            if done:
                assert req.last_status is not None
                return req.last_status
            if self.ctx.nic.notification_pending():
                continue
            timer = self._death_timer([req])
            arrival = self.ctx.nic.notification_arrival()
            yield (arrival if timer is None
                   else self.engine.any_of([arrival, timer]))

    def probe(self, win: Window, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Generator[object, object,
                                               Status | None]:
        """Nonblocking probe of queued notifications (the paper notes probe
        semantics "can be added trivially")."""
        # Pull anything pending off the hardware queues into the UQ first.
        nic = self.ctx.nic
        cost = T_TEST_BASE * self._scale
        while True:
            cqe = nic.poll_notification()
            if cqe is None:
                break
            s, t = decode_immediate(cqe.immediate)
            self.uq.append(cqe.win_id, s, t, cqe.nbytes, cqe.time,
                           san=cqe.san)
            cost += (T_POLL + T_APPEND) * self._scale
        yield self.engine.timeout(cost)
        entry = self.uq.peek_match(win.id, source, tag)
        if entry is None:
            return None
        if self._san is not None:
            self._san.acquire_op(self.rank, entry.san)
        return Status(source=entry.source, tag=entry.tag,
                      count=entry.nbytes)

    # ------------------------------------------------------------------
    # multi-request completion
    # ------------------------------------------------------------------
    def testany(self, reqs: list[NotifyRequest]
                ) -> Generator[object, object, int | None]:
        """One matching pass over ``reqs``; returns the index of the first
        completed request, or None.

        A test of one request drains non-matching notifications into the
        UQ, where the other requests' tests find them — so a testany sweep
        costs one CQ drain plus per-request structure checks.
        """
        if not reqs:
            raise MatchingError("testany over an empty request list")
        for i, req in enumerate(reqs):
            done = yield from self.test(req)
            if done:
                return i
        return None

    def waitany(self, reqs: list[NotifyRequest]
                ) -> Generator[object, object, tuple[int, Status]]:
        """Block until any request completes; returns (index, status).

        Fails fast (:class:`~repro.errors.FaultError`) only when *every*
        request is source-specific to a detected-dead rank; as long as one
        request could still be matched by a live rank the wait stays up.
        """
        while True:
            idx = yield from self.testany(reqs)
            if idx is not None:
                status = reqs[idx].last_status
                assert status is not None
                return idx, status
            if self.ctx.nic.notification_pending():
                continue
            timer = self._death_timer(reqs)
            arrival = self.ctx.nic.notification_arrival()
            yield (arrival if timer is None
                   else self.engine.any_of([arrival, timer]))

    def waitall(self, reqs: list[NotifyRequest]
                ) -> Generator[object, object, list[Status]]:
        """Block until every request completes; returns their statuses."""
        for req in reqs:
            yield from self.wait(req)
        return [req.last_status for req in reqs]  # type: ignore[misc]

    # ------------------------------------------------------------------
    # §III's rejected alternative: notified synchronization
    # ------------------------------------------------------------------
    def flush_notify(self, win: Window, target: int,
                     tag: int = 0) -> Generator[object, object, None]:
        """A *notified flush*: notify the target that all previous accesses
        to it have completed (§III's alternative design).

        The paper rejects this as the primary mechanism because it always
        needs at least two network transfers per producer-consumer handoff
        where a notified access needs one, and because the piggy-backed
        ordering is only free on in-order paths.  Both effects are modelled:

        * if every pending access to ``target`` took the same in-order path
          (the FMA engine, or intra-node), the zero-byte notification is
          simply pipelined behind them — two transfers, no round trip;
        * otherwise (any BTE transfer — a separately queued engine, like an
          adaptively routed network) ordering cannot be piggy-backed and the
          implementation must first wait for remote completion, adding the
          round trip the paper warns about.
        """
        pending = win._pending.get(target, [])
        same_node = self.ctx.machine.same_node(self.rank, target)
        in_order = all(
            (h.nbytes <= self.params.fma_max or same_node)
            for h in pending)
        if not in_order:
            yield from win.flush(target)
        yield from self.put_notify(win, np.empty(0, dtype=np.uint8),
                                   target, 0, tag=tag)
