"""Hardware completion counters — the §VIII extension.

Some networks (e.g. Blue Gene/Q) increment a memory counter from the NIC
after an access completes.  The paper sketches how Notified Access could use
this: for *deterministic* matches (no wildcards), the target sets up a
static counter during ``notify_init`` and tells the source about it; test
and wait then "simply check this counter at lowest overheads".

This module implements that design:

* :class:`CounterCell` — an 8-byte counter in the target's address space,
  incremented by the fabric at data-commit time (no CQ entry at all);
* :meth:`CounterEngine.counter_init` — allocates the cell and registers the
  route with the source (charged one wire round trip, the init-time contact
  §VIII describes);
* :meth:`CounterEngine.put_counted` — a put that bumps the registered remote
  counter on commit;
* :meth:`CounterEngine.start` / ``test`` / ``wait`` — completion by reading
  the local counter word: a single potential cache miss and a fraction of
  the queue-matching cost.

Wildcards are rejected: counter routing is static by design.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MatchingError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.status import Status
from repro.rma.window import Window

#: CPU cost of one counter check (a load and a compare), µs
T_COUNTER_TEST = 0.01


class CounterCell:
    """An 8-byte completion counter living in a rank's address space."""

    __slots__ = ("region", "addr", "space", "signal", "increments",
                 "clocks")

    def __init__(self, ctx):
        self.region = ctx.space.alloc(8, align=64)
        self.addr = self.region.addr
        self.space = ctx.space
        from repro.sim.resources import Signal
        self.signal = Signal(ctx.engine, name=f"ctr:{ctx.rank}")
        self.increments = 0
        #: per-increment sanitizer clock of the committing put (or None)
        self.clocks: list = []
        self._store(0)

    def _store(self, value: int) -> None:
        self.space.mem[self.addr:self.addr + 8].view(np.int64)[0] = value

    @property
    def value(self) -> int:
        return int(self.space.mem[self.addr:self.addr + 8].view(
            np.int64)[0])

    def increment(self, nbytes: int, san_clock=None) -> None:
        """Called by the fabric at commit time (the NIC-side update)."""
        self._store(self.value + 1)
        self.increments += 1
        self.clocks.append(san_clock)
        self.signal.fire(nbytes)

    def free(self) -> None:
        self.region.free()


class CounterRequest:
    """A persistent completion-counter request (deterministic matching)."""

    __slots__ = ("win", "source", "tag", "expected", "cell", "consumed",
                 "active", "freed")

    def __init__(self, win: Window, source: int, tag: int, expected: int,
                 cell: CounterCell):
        self.win = win
        self.source = source
        self.tag = tag
        self.expected = expected
        self.cell = cell
        self.consumed = 0         # counter value already claimed
        self.active = False
        self.freed = False

    @property
    def completed(self) -> bool:
        return self.cell.value - self.consumed >= self.expected

    def _check_usable(self) -> None:
        if self.freed:
            raise MatchingError("use of a freed counter request")


class CounterEngine:
    """Per-rank driver for counter-based notified accesses."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.rank = ctx.rank
        self.engine = ctx.engine
        self.params = ctx.params
        #: routes this rank may increment: (win_id, target, tag) -> cell
        self.routes: dict[tuple[int, int, int], CounterCell] = {}

    # -- target side --------------------------------------------------------
    def counter_init(self, win: Window, source: int, tag: int,
                     expected_count: int = 1
                     ) -> Generator[object, object, CounterRequest]:
        """Set up a static counter and register it with ``source``.

        Charged ``t_init`` plus one wire round trip — the init-time contact
        with the source that §VIII describes.  Wildcards are rejected:
        counter routing is static.
        """
        if source in (ANY_SOURCE,) or tag in (ANY_TAG,):
            raise MatchingError(
                "completion counters need deterministic matches "
                "(no wildcards), per §VIII")
        if not 0 <= source < win.shared.nranks:
            raise MatchingError(f"source rank {source} out of range")
        if not 0 <= tag <= 0xFFFF:
            raise MatchingError(f"tag {tag} outside 16 significant bits")
        if expected_count < 1:
            raise MatchingError("expected_count must be >= 1")
        cell = CounterCell(self.ctx)
        req = CounterRequest(win, source, tag, expected_count, cell)
        # Register the route at the source (modelled as a control round
        # trip; the registry write itself is instantaneous bookkeeping).
        src_engine = self.ctx.cluster.ranks[source].counters
        src_engine.routes[(win.id, self.rank, tag)] = cell
        same = self.ctx.machine.same_node(self.rank, source)
        rtt = (2 * self.params.shm.L if same else 2 * self.params.fma.L)
        yield self.engine.timeout(self.params.t_init
                                  + (0.0 if source == self.rank else rtt))
        return req

    def start(self, req: CounterRequest) -> Generator[object, object, None]:
        req._check_usable()
        if req.active:
            raise MatchingError("start on an already-active request")
        req.active = True
        yield self.engine.timeout(self.params.t_start)

    def test(self, req: CounterRequest) -> Generator[object, object, bool]:
        """One counter check: a load and a compare (§VIII: "lowest
        overheads")."""
        req._check_usable()
        if not req.active:
            raise MatchingError("test on an inactive request")
        self.ctx.cache.touch(req.cell.addr, 8, label="na-counter")
        yield self.engine.timeout(T_COUNTER_TEST)
        if req.completed:
            return True
        return False

    def wait(self, req: CounterRequest) -> Generator[object, object, Status]:
        """Block until the counter crosses its threshold.

        Counter routes are always source-specific (wildcards are rejected
        at init), so with node failures planned the wait races the signal
        against a timer to the next failure-detection instant and raises
        :class:`~repro.errors.FaultError` naming the dead source at
        ``death + detect_us`` instead of stalling to deadlock detection.
        """
        while True:
            done = yield from self.test(req)
            if done:
                san = getattr(self.ctx.cluster, "sanitizer", None)
                if san is not None:
                    # Acquire exactly the increments this wait consumes:
                    # the counter proves those commits, nothing more.
                    lo = req.consumed
                    san.acquire_many(self.rank,
                                     req.cell.clocks[lo:lo + req.expected])
                req.consumed += req.expected
                req.active = False   # satisfied; start() re-arms it
                return Status(source=req.source, tag=req.tag)
            timer = None
            faults = self.ctx.fabric.faults
            if faults is not None and faults.plan.node_failures:
                now = self.engine.now
                if faults.detected(req.source, now):
                    raise faults.dead_wait_error("counter", self.rank,
                                                 req.source)
                nxt = faults.next_detection(now)
                if nxt is not None:
                    timer = self.engine.timeout(nxt - now)
            ev = req.cell.signal.wait()
            yield ev if timer is None else self.engine.any_of([ev, timer])

    def request_free(self,
                     req: CounterRequest) -> Generator[object, object, None]:
        req._check_usable()
        if req.active:
            raise MatchingError("freeing an active counter request")
        src_engine = self.ctx.cluster.ranks[req.source].counters
        src_engine.routes.pop((req.win.id, self.rank, req.tag), None)
        req.cell.free()
        req.freed = True
        yield self.engine.timeout(self.params.t_free)

    # -- origin side --------------------------------------------------------
    def put_counted(self, win: Window, data: np.ndarray, target: int,
                    target_disp: int = 0,
                    tag: int = 0) -> Generator[object, object, object]:
        """A put whose commit increments the registered remote counter."""
        cell = self.routes.get((win.id, target, tag))
        if cell is None:
            raise MatchingError(
                f"no counter registered at rank {target} for "
                f"(win={win.id}, tag={tag}); call counter_init there first")
        data = np.ascontiguousarray(data)
        nbytes = int(data.nbytes)
        addr = win.shared.target_addr(target, target_disp, nbytes)
        yield self.engine.timeout(self.params.o_send)
        h = self.ctx.fabric.put(self.rank, target, addr, data,
                                win_id=win.id)
        win.record_pending(target, h)
        # NIC-side counter update at commit time.  A transfer the fault
        # layer declared lost never commits, so its counter never moves.
        if not h.failed:
            self.ctx.fabric._at(
                h.commit_at,
                lambda: cell.increment(
                    nbytes,
                    None if h.san_remote is None else h.san_remote.vc))
        if h.cpu_busy:
            yield self.engine.timeout(h.cpu_busy)
        return h
