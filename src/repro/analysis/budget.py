"""Notification-budget balance under the wildcard matching lattice.

Posts and waits are matched as a bipartite flow problem: each posted
notification is one unit of supply at its target rank; each blocking
wait demands ``expected_count`` units compatible with its request's
``<window, source, tag>`` pattern (``ANY_SOURCE``/``ANY_TAG`` widen the
pattern).  Maximum matching then distinguishes three defects:

* ``budget.starved-wait`` — a wait with *no* compatible supply at all;
* ``budget.threshold-overcount`` — compatible supply exists but the
  program cannot cover the demanded threshold;
* ``budget.dropped-notification`` — posted notifications that no wait
  can ever consume (silently discarded at window free).

The check runs only on programs whose every rank trace is exact and
free of polling/waitany consumption; the GASPI overwriting mechanism is
exempt because losing superseded notification values is its documented
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.instantiate import COp, Trace
from repro.analysis.ir import Program
from repro.analysis.report import Finding
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

#: mechanisms with counting (non-overwriting) notification semantics
_COUNTED_MECHS = ("na", "counter")


@dataclass
class _Supply:
    rank: int            # target rank holding the notification
    mech: str
    win: object
    source: int
    tag: int
    line: int
    post_rank: int
    taken_by: int = -1   # demand index, -1 = free


@dataclass
class _Demand:
    rank: int
    mech: str
    win: object
    source: int
    tag: int
    expected: int
    line: int
    matched: int = 0


def _compatible(supply: _Supply, demand: _Demand) -> bool:
    return (supply.rank == demand.rank
            and supply.mech == demand.mech
            and supply.win == demand.win
            and demand.source in (ANY_SOURCE, supply.source)
            and demand.tag in (ANY_TAG, supply.tag))


def _max_flow(supplies: list[_Supply], demands: list[_Demand]) -> None:
    """Kuhn-style augmenting matching; unit supplies, capacitated
    demands."""
    adjacency: list[list[int]] = [
        [d for d, demand in enumerate(demands)
         if _compatible(supply, demand)]
        for supply in supplies
    ]

    def try_assign(s: int, visited: set[int]) -> bool:
        for d in adjacency[s]:
            if d in visited:
                continue
            visited.add(d)
            demand = demands[d]
            if demand.matched < demand.expected:
                _take(s, d)
                return True
            # try to re-route one of this demand's suppliers elsewhere
            for other, supply in enumerate(supplies):
                if supply.taken_by == d and \
                        try_assign_excluding(other, d, visited):
                    _take(s, d)
                    return True
        return False

    def try_assign_excluding(s: int, exclude: int,
                             visited: set[int]) -> bool:
        supplies[s].taken_by = -1
        demands[exclude].matched -= 1
        if try_assign(s, visited):
            return True
        supplies[s].taken_by = exclude
        demands[exclude].matched += 1
        return False

    def _take(s: int, d: int) -> None:
        supplies[s].taken_by = d
        demands[d].matched += 1

    for index in range(len(supplies)):
        try_assign(index, set())


def check_budget(program: Program, size: int,
                 traces: list[Trace]) -> list[Finding]:
    if any(not t.exact for t in traces) or \
            any(t.has_poll for t in traces):
        return []

    supplies: list[_Supply] = []
    demands: list[_Demand] = []
    for trace in traces:
        for op in trace.ops:
            if op.mech not in _COUNTED_MECHS:
                continue
            if op.kind == "post":
                assert op.target is not None
                supplies.append(_Supply(
                    rank=op.target, mech=op.mech, win=op.win,
                    source=op.source, tag=op.tag, line=op.line,
                    post_rank=trace.rank))
            elif op.kind == "wait":
                demands.append(_Demand(
                    rank=trace.rank, mech=op.mech, win=op.win,
                    source=op.source, tag=op.tag,
                    expected=op.expected, line=op.line))

    if not supplies and not demands:
        return []
    _max_flow(supplies, demands)

    findings: list[Finding] = []
    for demand in demands:
        if demand.matched >= demand.expected:
            continue
        any_compatible = any(
            _compatible(s, demand) for s in supplies)
        pattern = _pattern(demand.source, demand.tag)
        if not any_compatible:
            ranks = (demand.rank,) if demand.source == ANY_SOURCE \
                else tuple(sorted({demand.rank, demand.source}))
            findings.append(Finding(
                check="budget.starved-wait", path=program.path,
                line=demand.line, program=program.qualname,
                message=(f"rank {demand.rank} waits for "
                         f"{demand.expected} notification(s) matching "
                         f"{pattern} but no rank ever posts one"),
                ranks=ranks, size=size))
        else:
            findings.append(Finding(
                check="budget.threshold-overcount", path=program.path,
                line=demand.line, program=program.qualname,
                message=(f"rank {demand.rank} waits for "
                         f"{demand.expected} notification(s) matching "
                         f"{pattern} but only {demand.matched} can "
                         f"ever arrive"),
                ranks=(demand.rank,), size=size))

    # leftover supply that no wait can consume
    leftovers: dict[tuple[int, int, object, int, int], list[_Supply]] = {}
    for supply in supplies:
        if supply.taken_by == -1:
            key = (supply.rank, supply.post_rank, supply.win,
                   supply.tag, supply.line)
            leftovers.setdefault(key, []).append(supply)
    for (rank, post_rank, _win, tag, line), group in leftovers.items():
        findings.append(Finding(
            check="budget.dropped-notification", path=program.path,
            line=line, program=program.qualname,
            message=(f"{len(group)} notification(s) posted by rank "
                     f"{post_rank} to rank {rank} with tag {tag} are "
                     f"never consumed by any wait"),
            ranks=tuple(sorted({post_rank, rank})), size=size))
    return findings


def _pattern(source: int, tag: int) -> str:
    src = "ANY_SOURCE" if source == ANY_SOURCE else f"source={source}"
    tg = "ANY_TAG" if tag == ANY_TAG else f"tag={tag}"
    return f"<{src}, {tg}>"
