"""CLI: ``python -m repro.analysis <paths...>``.

Exits 0 when every analyzed program is clean, 1 when any checker
produced a finding, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import analyze_paths, collect_files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify Notified Access protocol usage "
                    "(notification budget, deadlock, epoch discipline) "
                    "without executing the programs.")
    parser.add_argument("paths", nargs="+",
                        help="Python files or directories to analyze")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-file summary line")
    args = parser.parse_args(argv)

    files = collect_files(args.paths)
    if not files:
        print("repro.analysis: no Python files found under "
              + " ".join(args.paths), file=sys.stderr)
        return 2
    findings = analyze_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if not args.quiet:
        status = (f"{len(findings)} finding(s)" if findings
                  else "clean")
        print(f"repro.analysis: {len(files)} file(s) analyzed, "
              f"{status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
