"""CLI: ``python -m repro.analysis <paths...>``.

Exits 0 when every analyzed program is clean, 1 when any checker
produced a finding, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import analyze_paths, collect_files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify Notified Access protocol usage "
                    "(notification budget, deadlock, epoch discipline) "
                    "without executing the programs.")
    parser.add_argument("paths", nargs="+",
                        help="Python files or directories to analyze")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-file summary line")
    parser.add_argument("--races", action="store_true",
                        help="report only data-race findings (race.*)")
    parser.add_argument("--report", metavar="PATH",
                        help="also write the findings, one per line, "
                             "to PATH (useful as a CI artifact)")
    args = parser.parse_args(argv)

    files = collect_files(args.paths)
    if not files:
        print("repro.analysis: no Python files found under "
              + " ".join(args.paths), file=sys.stderr)
        return 2
    findings = analyze_paths(args.paths)
    if args.races:
        findings = [f for f in findings if f.check.startswith("race.")]
    for finding in findings:
        print(finding.format())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            for finding in findings:
                fh.write(finding.format() + "\n")
    if not args.quiet:
        status = (f"{len(findings)} finding(s)" if findings
                  else "clean")
        print(f"repro.analysis: {len(files)} file(s) analyzed, "
              f"{status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
