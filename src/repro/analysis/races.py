"""Static data-race and buffer-overlap checking over concrete traces.

Mirrors the dynamic vector-clock sanitizer (:mod:`repro.sanitizer`)
symbolically: every remote operation is a fresh clock actor, commits
chain through per-``(origin, target)`` in-order channels for small
(FMA-class) transfers, notification matches and counter waits acquire
the matched commits' clocks, flushes acquire pending operations, and
barriers (plus the collective halves of ``win_allocate``/``win_free``)
join all ranks.  Two conflicting accesses to overlapping byte ranges
with no happens-before path between them are reported as one of

* ``race.overlap-write``  — unordered writes overlap,
* ``race.unordered-read`` — a read overlaps an unordered write,
* ``race.stale-view``     — a local numpy view races a remote access.

The checker runs only on programs whose geometry resolved exactly
(``Trace.race_exact``); the *matching* between posts and waits comes
from a maximal-progress replay and is then verified per wait — any
compatible post that is not provably issued after the wait completed
downgrades that wait to a sound k-th-smallest lower bound, so the
static happens-before is never stronger than every real schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.instantiate import AllocVal, COp, Trace, WindowVal
from repro.analysis.ir import Program
from repro.analysis.report import Finding
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

#: FMA payload ceiling (repro.network.loggp.LogGPParams.fma_max default):
#: transfers at or below this ride an in-order channel on every
#: transport pairing, so chaining them is sound for any node mapping.
FMA_MAX = 4096

#: pairwise ordering tests before the sweep gives up (defensive cap)
MAX_PAIR_TESTS = 2_000_000

#: clock-fixpoint passes for downgraded-wait lower bounds
MAX_BOUND_PASSES = 8

_READ, _WRITE, _ATOMIC = "R", "W", "A"


@dataclass
class _Access:
    """One byte-range access with its sanitizer-style clock stamp."""

    seg: tuple[object, ...]     # ("win", index, owner) | ("buf", rank, idx)
    start: int
    end: int
    kind: str                   # _READ | _WRITE | _ATOMIC
    actor: int
    tick: int
    vc: dict[int, int]
    by: int                     # rank that performed the access
    line: int
    is_view: bool = False


@dataclass
class _Post:
    """Clock footprint of one post, rebuilt each fixpoint pass."""

    issue_vc: dict[int, int] = field(default_factory=dict)
    #: what a matching wait acquires (commit vc; READ-leg vc for gets)
    acq_vc: dict[int, int] = field(default_factory=dict)


@dataclass
class _RankState:
    trace: Trace
    index: int = 0
    #: delivered notifications: (mech, win, source, tag, post id)
    inbox: list[tuple[str, object, int, int, tuple[int, int]]] = field(
        default_factory=list)

    @property
    def finished(self) -> bool:
        return self.index >= len(self.trace.ops)


_BARRIER_CLASS = frozenset({"barrier", "walloc", "wfree"})

OpId = tuple[int, int]          # (rank, index into trace.ops)
#: replay linearization: ("op", op id) | ("sync", rendezvous group)
Schedule = list[tuple[str, "OpId | list[OpId]"]]


def _wait_matches(entry: tuple[str, object, int, int, OpId],
                  op: COp) -> bool:
    mech, win, source, tag, _pid = entry
    return (mech == op.mech and win == op.win
            and op.source in (ANY_SOURCE, source)
            and op.tag in (ANY_TAG, tag))


def _replay(traces: list[Trace]) -> tuple[
        Schedule, dict[OpId, list[OpId]]] | None:
    """Maximal-progress replay: a global linearization plus the
    arrival-order matching of posts to waits.  ``None`` on starvation
    (the budget/deadlock checkers own that defect)."""
    states = [_RankState(trace=t) for t in traces]
    schedule: Schedule = []
    matching: dict[OpId, list[OpId]] = {}
    while True:
        progressed = False
        for rank, state in enumerate(states):
            while not state.finished:
                op = state.trace.ops[state.index]
                if op.kind == "post":
                    assert op.target is not None
                    states[op.target].inbox.append(
                        (op.mech, op.win, op.source, op.tag,
                         (rank, state.index)))
                elif op.kind == "wait":
                    hits = [i for i, entry in enumerate(state.inbox)
                            if _wait_matches(entry, op)]
                    if len(hits) < op.expected:
                        break
                    taken = hits[:op.expected]
                    matching[(rank, state.index)] = [
                        state.inbox[i][4] for i in taken]
                    for i in reversed(taken):
                        del state.inbox[i]
                elif op.kind in _BARRIER_CLASS:
                    break
                schedule.append(("op", (rank, state.index)))
                state.index += 1
                progressed = True
        waiting = [s for s in states if not s.finished]
        if waiting and all(
                s.trace.ops[s.index].kind in _BARRIER_CLASS
                for s in waiting):
            group = [(rank, s.index) for rank, s in enumerate(states)
                     if not s.finished]
            schedule.append(("sync", group))
            for s in waiting:
                s.index += 1
            progressed = True
        if not progressed:
            if any(not s.finished for s in states):
                return None
            return schedule, matching


class _ClockPass:
    """One sanitizer-mirroring clock computation over the schedule."""

    def __init__(self, traces: list[Trace], actors: dict[OpId, int],
                 matching: dict[OpId, list[OpId]],
                 downgraded: set[OpId],
                 bounds: dict[OpId, dict[int, int]],
                 collect: bool):
        self.traces = traces
        self.actors = actors
        self.matching = matching
        self.downgraded = downgraded
        self.bounds = bounds
        self.collect = collect
        size = len(traces)
        self.vc: list[dict[int, int]] = [{r: 1} for r in range(size)]
        self.tick: list[int] = [1] * size
        #: per-rank pending remote ops: (win, target, is_get, clock)
        self.pending: list[list[
            tuple[WindowVal | None, int | None, bool,
                  dict[int, int]]]] = [[] for _ in range(size)]
        #: small-transfer in-order chains per (origin, target)
        self.chan: dict[tuple[int, int], dict[int, int]] = {}
        self.posts: dict[OpId, _Post] = {}
        self.completion: dict[OpId, int] = {}
        self.accesses: list[_Access] = []

    # -- clock plumbing (mirrors sanitizer.tracker) ----------------------
    def _release(self, rank: int) -> dict[int, int]:
        snap = dict(self.vc[rank])
        self.tick[rank] += 1
        self.vc[rank][rank] = self.tick[rank]
        return snap

    def _acquire(self, rank: int, vc: dict[int, int]) -> None:
        mine = self.vc[rank]
        for actor, t in vc.items():
            if mine.get(actor, 0) < t:
                mine[actor] = t

    def _bump(self, rank: int) -> int:
        self.tick[rank] += 1
        self.vc[rank][rank] = self.tick[rank]
        return self.tick[rank]

    def _touch(self, seg: tuple[object, ...], start: int, nbytes: int,
               kind: str, actor: int, tick: int, vc: dict[int, int],
               by: int, line: int, is_view: bool = False) -> None:
        if self.collect and nbytes > 0:
            self.accesses.append(_Access(
                seg=seg, start=start, end=start + nbytes, kind=kind,
                actor=actor, tick=tick, vc=dict(vc), by=by, line=line,
                is_view=is_view))

    def _du(self, target: int, win: WindowVal | None) -> int:
        if win is None:
            return 1
        return self.traces[target].win_meta.get(win.index, (-1, 1))[1]

    # -- op execution ----------------------------------------------------
    def execute(self, schedule: Schedule) -> None:
        for _tag, payload in schedule:
            if isinstance(payload, list):
                self._sync(payload)
                continue
            rank, index = payload
            op = self.traces[rank].ops[index]
            if op.kind in ("post", "rma"):
                self._remote_op(rank, index, op)
            elif op.kind == "wait":
                self._wait(rank, index, op)
            elif op.kind == "flush":
                self._flush(rank, op.win, op.target, op.local)
            elif op.kind == "view":
                self._view(rank, op)

    def _remote_op(self, rank: int, index: int, op: COp) -> None:
        assert op.target is not None
        actor = self.actors[(rank, index)]
        snap = self._release(rank)
        parent = dict(snap)
        parent[actor] = 1
        win_seg = ("win", op.win.index if op.win is not None else -1,
                   op.target)
        du = self._du(op.target, op.win)
        start = op.disp * du
        if op.rma == "get":
            child = dict(parent)
            child[actor + 1] = 1
            self._touch(win_seg, start, op.nbytes, _READ, actor, 1,
                        parent, rank, op.line)
            if op.buf is not None:
                self._touch(("buf", op.buf.rank, op.buf.index),
                            op.buf_off, op.nbytes, _WRITE, actor + 1, 1,
                            child, rank, op.line)
            self.pending[rank].append((op.win, op.target, True, child))
            acq = parent
        else:
            commit = parent
            if 0 <= op.nbytes <= FMA_MAX:
                chain = self.chan.get((rank, op.target))
                if chain:
                    for a, t in chain.items():
                        if commit.get(a, 0) < t:
                            commit[a] = t
                self.chan[(rank, op.target)] = dict(commit)
            kind = _ATOMIC if op.rma == "acc" else _WRITE
            self._touch(win_seg, start, op.nbytes, kind, actor, 1,
                        commit, rank, op.line)
            self.pending[rank].append((op.win, op.target, False, commit))
            acq = commit
        if op.kind == "post":
            self.posts[(rank, index)] = _Post(issue_vc=snap, acq_vc=acq)

    def _wait(self, rank: int, index: int, op: COp) -> None:
        wid = (rank, index)
        if wid in self.downgraded or op.mech == "gaspi":
            # gaspi waitsome picks slots nondeterministically: acquire
            # nothing; downgraded waits acquire their pool lower bound
            bound = self.bounds.get(wid)
            if bound:
                self._acquire(rank, bound)
        else:
            for pid in self.matching.get(wid, []):
                post = self.posts.get(pid)
                if post is not None:
                    self._acquire(rank, post.acq_vc)
        self.completion[wid] = self._bump(rank)

    def _flush(self, rank: int, win: WindowVal | None,
               target: int | None, local: bool) -> None:
        keep = []
        for entry in self.pending[rank]:
            pwin, ptarget, is_get, pvc = entry
            hit = (win is None or pwin == win) and \
                  (target is None or ptarget == target)
            if not hit:
                keep.append(entry)
                continue
            if local and not is_get:
                keep.append(entry)      # puts need a full flush
                continue
            self._acquire(rank, pvc)
        self.pending[rank] = keep

    def _view(self, rank: int, op: COp) -> None:
        if op.win is not None:
            seg: tuple[object, ...] = ("win", op.win.index, rank)
        elif op.buf is not None:
            seg = ("buf", op.buf.rank, op.buf.index)
        else:
            return
        kind = _WRITE if op.rma == "w" else _READ
        self._touch(seg, op.disp, op.nbytes, kind, rank,
                    self.tick[rank], self.vc[rank], rank, op.line,
                    is_view=True)

    def _sync(self, group: list[OpId]) -> None:
        # win_free flushes its window everywhere before the rendezvous
        for rank, index in group:
            op = self.traces[rank].ops[index]
            if op.kind == "wfree":
                self._flush(rank, op.win, None, False)
        joined: dict[int, int] = {}
        for rank, _index in group:
            for actor, t in self.vc[rank].items():
                if joined.get(actor, 0) < t:
                    joined[actor] = t
        for rank, _index in group:
            self.vc[rank] = dict(joined)
            self._bump(rank)


def _assign_actors(traces: list[Trace]) -> dict[OpId, int]:
    """Deterministic fresh actor ids (gets take two: READ + delivery)."""
    actors: dict[OpId, int] = {}
    next_id = len(traces)
    for rank, trace in enumerate(traces):
        for index, op in enumerate(trace.ops):
            if op.kind in ("post", "rma"):
                actors[(rank, index)] = next_id
                next_id += 2 if op.rma == "get" else 1
    return actors


def _wait_pattern(op: COp) -> tuple[str, object, int, int]:
    return (op.mech, op.win, op.source, op.tag)


def _kth_smallest_bound(pool: list[dict[int, int]],
                        k: int) -> dict[int, int]:
    """Componentwise k-th smallest over the pool (missing = 0): with at
    least ``k`` pool posts consumed, each component is at least this."""
    if not pool or k <= 0:
        return {}
    k = min(k, len(pool))
    out: dict[int, int] = {}
    components: set[int] = set()
    for vc in pool:
        components.update(vc)
    for actor in components:
        values = sorted(vc.get(actor, 0) for vc in pool)
        value = values[k - 1]
        if value > 0:
            out[actor] = value
    return out


def _compute_clocks(traces: list[Trace],
                    schedule: Schedule,
                    actors: dict[OpId, int],
                    matching: dict[OpId, list[OpId]],
                    downgraded: set[OpId],
                    wait_depth: dict[OpId, int],
                    pools: dict[OpId, list[OpId]]) -> _ClockPass:
    """Iterate clock passes until downgraded-wait bounds stabilize."""
    bounds: dict[OpId, dict[int, int]] = {}
    passes = MAX_BOUND_PASSES if downgraded else 1
    result: _ClockPass | None = None
    for step in range(passes):
        collect = step == passes - 1
        run = _ClockPass(traces, actors, matching, downgraded, bounds,
                         collect)
        run.execute(schedule)
        new_bounds = {
            wid: _kth_smallest_bound(
                [run.posts[pid].acq_vc for pid in pools.get(wid, [])
                 if pid in run.posts],
                wait_depth.get(wid, 0))
            for wid in downgraded}
        result = run
        if new_bounds == bounds:
            if collect:
                break
            bounds = new_bounds
            final = _ClockPass(traces, actors, matching, downgraded,
                               bounds, True)
            final.execute(schedule)
            result = final
            break
        bounds = new_bounds
    assert result is not None
    return result


def _verify(traces: list[Trace], run: _ClockPass,
            matching: dict[OpId, list[OpId]],
            downgraded: set[OpId],
            pools: dict[OpId, list[OpId]]) -> set[OpId]:
    """Waits whose replay matching is not forced in every schedule."""
    bad: set[OpId] = set()
    for rank, trace in enumerate(traces):
        consumed: set[OpId] = set()
        for index, op in enumerate(trace.ops):
            if op.kind != "wait":
                continue
            wid = (rank, index)
            if wid in downgraded or op.mech == "gaspi":
                continue
            mine = set(matching.get(wid, ()))
            exclusive = True
            for pid in pools.get(wid, []):
                if pid in mine or pid in consumed:
                    continue
                post = run.posts.get(pid)
                if post is None:
                    continue
                if post.issue_vc.get(rank, 0) < run.completion[wid]:
                    exclusive = False
                    break
            if exclusive:
                consumed |= mine
            else:
                bad.add(wid)
    return bad


def _conflict(a: _Access, b: _Access) -> bool:
    if a.kind == _READ and b.kind == _READ:
        return False
    if a.kind == _ATOMIC and b.kind == _ATOMIC:
        return False
    return True


def _ordered(a: _Access, b: _Access) -> bool:
    if a.actor == b.actor:
        return a.tick <= b.tick
    return b.vc.get(a.actor, 0) >= a.tick


def _seg_desc(seg: tuple[object, ...]) -> str:
    if seg[0] == "win":
        return f"window {seg[1]} of rank {seg[2]}"
    return f"buffer {seg[2]} of rank {seg[1]}"


_KIND_WORD = {_READ: "read", _WRITE: "write", _ATOMIC: "accumulate"}


def _sweep(program: Program, size: int,
           accesses: list[_Access]) -> list[Finding]:
    by_seg: dict[tuple[object, ...], list[_Access]] = {}
    for access in accesses:
        by_seg.setdefault(access.seg, []).append(access)
    findings: list[Finding] = []
    seen: set[tuple[object, ...]] = set()
    tests = 0
    for seg, group in sorted(by_seg.items(), key=lambda kv: repr(kv[0])):
        group.sort(key=lambda a: (a.start, a.end, a.line))
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if b.start >= a.end:
                    break               # sorted by start: no later overlap
                tests += 1
                if tests > MAX_PAIR_TESTS:
                    return findings
                if not _conflict(a, b):
                    continue
                if _ordered(a, b) or _ordered(b, a):
                    continue
                first, second = sorted((a, b), key=lambda x: (x.line,
                                                              x.by))
                key = (seg, first.line, second.line, first.kind,
                       second.kind)
                if key in seen:
                    continue
                seen.add(key)
                if first.line in program.race_ok_lines or \
                        second.line in program.race_ok_lines:
                    continue
                if first.is_view or second.is_view:
                    check = "race.stale-view"
                elif _READ in (first.kind, second.kind):
                    check = "race.unordered-read"
                else:
                    check = "race.overlap-write"
                lo = max(first.start, second.start)
                hi = min(first.end, second.end)
                findings.append(Finding(
                    check=check, path=program.path, line=first.line,
                    program=program.qualname,
                    message=(
                        f"{_KIND_WORD[first.kind]} at line {first.line} "
                        f"(rank {first.by}) and "
                        f"{_KIND_WORD[second.kind]} at line "
                        f"{second.line} (rank {second.by}) touch "
                        f"{_seg_desc(seg)} bytes [{lo}, {hi}) with no "
                        f"ordering edge (notification, flush, or "
                        f"barrier) between them"),
                    ranks=tuple(sorted({first.by, second.by})),
                    size=size))
    return findings


def check_races(program: Program, size: int,
                traces: list[Trace]) -> list[Finding]:
    """Report unordered conflicting overlapping accesses, or nothing
    when the program is outside the exactly-modelled fragment."""
    for trace in traces:
        if not trace.exact or not trace.race_exact or \
                trace.has_poll or trace.has_pscw:
            return []
        for op in trace.ops:
            if op.mech == "p2p" or op.kind in ("send", "recv"):
                return []
            if op.kind == "barrier" and op.mech == "coll":
                return []
    replayed = _replay(traces)
    if replayed is None:
        return []                       # starvation: budget's domain
    schedule, matching = replayed
    actors = _assign_actors(traces)

    # per-wait pools (compatible posts program-wide) and pattern depth
    pools: dict[OpId, list[OpId]] = {}
    wait_depth: dict[OpId, int] = {}
    posts_by_target: dict[int, list[tuple[OpId, COp]]] = {}
    for rank, trace in enumerate(traces):
        for index, op in enumerate(trace.ops):
            if op.kind == "post":
                assert op.target is not None
                posts_by_target.setdefault(op.target, []).append(
                    ((rank, index), op))
    for rank, trace in enumerate(traces):
        depth: dict[tuple[str, object, int, int], int] = {}
        for index, op in enumerate(trace.ops):
            if op.kind != "wait":
                continue
            pattern = _wait_pattern(op)
            depth[pattern] = depth.get(pattern, 0) + op.expected
            wid = (rank, index)
            wait_depth[wid] = depth[pattern]
            pools[wid] = [
                pid for pid, post in posts_by_target.get(rank, [])
                if _wait_matches((post.mech, post.win, post.source,
                                  post.tag, pid), op)]

    downgraded: set[OpId] = set()
    total_waits = len(wait_depth)
    run = _compute_clocks(traces, schedule, actors, matching,
                          downgraded, wait_depth, pools)
    for _ in range(total_waits + 1):
        bad = _verify(traces, run, matching, downgraded, pools)
        if not bad:
            break
        downgraded |= bad
        run = _compute_clocks(traces, schedule, actors, matching,
                              downgraded, wait_depth, pools)
    return _sweep(program, size, run.accesses)
