"""Findings and their presentation."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker.

    ``check`` is a stable dotted identifier (``budget.starved-wait``,
    ``deadlock.wait-cycle``, ``epoch.no-epoch``, ...) that tests and CI
    match on.
    """

    check: str
    path: str
    line: int
    program: str
    message: str
    ranks: tuple[int, ...] = ()
    size: int | None = None

    def format(self) -> str:
        where = f"{self.path}:{self.line}"
        extra = []
        if self.ranks:
            extra.append("ranks " + ",".join(str(r) for r in self.ranks))
        if self.size is not None:
            extra.append(f"nranks={self.size}")
        suffix = f" [{'; '.join(extra)}]" if extra else ""
        return (f"{where}: {self.check}: {self.message} "
                f"(in {self.program}){suffix}")


@dataclass
class Report:
    """Accumulates findings across files, deduplicated and sorted.

    A program instantiated for several communicator sizes usually
    reproduces the same defect at every size; findings differing only
    in ``size`` (and the rank pair it happened to bind) are collapsed
    onto the first one seen — the smallest size, since
    :func:`repro.analysis.analyze_program` iterates sizes ascending.
    """

    findings: list[Finding] = field(default_factory=list)
    _seen: set[tuple[str, str, int, str, str, tuple[int, ...]]] = field(
        default_factory=set)

    def add(self, finding: Finding) -> None:
        key = (finding.check, finding.path, finding.line,
               finding.program, finding.message, finding.ranks)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        for finding in findings:
            self.add(finding)

    def sorted(self) -> list[Finding]:
        return sorted(self.findings,
                      key=lambda f: (f.path, f.line, f.check, f.ranks))

    def format(self) -> str:
        return "\n".join(f.format() for f in self.sorted())
