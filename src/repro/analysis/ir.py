"""The per-rank protocol IR.

A rank program is lifted into a tree of statements whose expressions are
:mod:`repro.analysis.symbols` terms.  Communication API calls become
:class:`Op` nodes carrying the symbolic arguments the checkers care
about (window, peer rank, tag, threshold); everything the verifier
cannot model becomes an :class:`Unknown` statement, which downgrades the
affected checks instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.symbols import Const, SymExpr

# ---------------------------------------------------------------------------
# op vocabulary
# ---------------------------------------------------------------------------

#: notified-access / counter / overwriting posts (origin side)
POST_KINDS = frozenset({
    "put_notify", "get_notify", "accumulate_notify", "flush_notify",
    "put_counted", "write_notify",
})

#: blocking completion calls (target side)
WAIT_KINDS = frozenset({
    "na_wait", "na_waitall", "na_waitany", "counter_wait", "waitsome",
})

#: polling calls that consume notifications nondeterministically
POLL_KINDS = frozenset({
    "na_test", "na_testany", "na_probe", "counter_test",
})

#: plain (non-notified) window accesses that need an open epoch
EPOCH_ACCESS_KINDS = frozenset({
    "win_put", "win_get", "win_accumulate", "win_fetch_and_op",
    "win_compare_and_swap", "put_typed", "get_typed",
})

#: ops that complete pending origin-side work on a window
COMPLETION_KINDS = frozenset({
    "win_flush", "win_flush_local", "win_flush_all",
    "win_flush_local_all", "win_fence", "win_fence_end", "win_complete",
    "win_unlock", "win_unlock_all", "win_free", "flush_notify",
})


@dataclass
class Op:
    """One recognized runtime call, with symbolic arguments.

    ``args`` maps role names (``win``, ``target``, ``source``, ``tag``,
    ``expected``, ``req``, ``buf``, ...) to symbolic expressions.
    """

    kind: str
    args: dict[str, SymExpr] = field(default_factory=dict)
    line: int = 0
    #: mode string of a view op ("rw", "r", "raw"), when syntactic
    mode: str | None = None

    def arg(self, name: str) -> SymExpr:
        return self.args.get(name, Const(None))

    def pretty(self) -> str:
        inner = ", ".join(f"{k}={v.pretty()}"
                          for k, v in sorted(self.args.items()))
        return f"{self.kind}({inner})"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Assign(Stmt):
    """``targets = value``; ``value`` is an expression or an Op result."""

    #: assignment target pattern: a Name/Sub/TupleExpr of Names
    target: SymExpr = field(default_factory=Const)
    value: SymExpr | Op = field(default_factory=Const)


@dataclass
class ExprStmt(Stmt):
    value: SymExpr | Op = field(default_factory=Const)


@dataclass
class If(Stmt):
    cond: SymExpr = field(default_factory=Const)
    body: list[Stmt] = field(default_factory=list)
    orelse: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    target: SymExpr = field(default_factory=Const)
    iter: SymExpr = field(default_factory=Const)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: SymExpr = field(default_factory=Const)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    pass


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class YieldRaw(Stmt):
    """A plain ``yield <expr>`` (not ``yield from``).

    ``is_literal`` marks yields of constants — never a simulator Event,
    which the engine rejects at run time (the non-Event-yield lint).
    """

    value: SymExpr = field(default_factory=Const)
    is_literal: bool = False


@dataclass
class Unknown(Stmt):
    """A statement outside the modelled fragment."""

    reason: str = ""


@dataclass
class Program:
    """One extracted rank program."""

    name: str
    qualname: str
    path: str
    line: int
    #: names of parameters after ``ctx``
    params: list[str] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    #: communicator sizes to instantiate, from ``run_ranks`` discovery or
    #: an ``# analyze: nranks=N`` annotation (empty = unknown size)
    sizes: list[int] = field(default_factory=list)
    #: values for the extra parameters (from ``# analyze: args=(...)``)
    arg_values: list[object] = field(default_factory=list)
    #: lines carrying a ``# protocol: raw-ok`` blessing
    raw_ok_lines: frozenset[int] = frozenset()
    #: lines carrying a ``# protocol: race-ok`` waiver
    race_ok_lines: frozenset[int] = frozenset()
    #: ``# analyze: skip`` disables the whole program
    skipped: bool = False
    #: module-level constants visible to the program
    module_consts: dict[str, object] = field(default_factory=dict)

    def walk_ops(self) -> list[Op]:
        """All Op nodes in the tree, in source order."""
        out: list[Op] = []

        def visit(stmts: list[Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (Assign, ExprStmt)) and \
                        isinstance(stmt.value, Op):
                    out.append(stmt.value)
                elif isinstance(stmt, If):
                    visit(stmt.body)
                    visit(stmt.orelse)
                elif isinstance(stmt, (For, While)):
                    visit(stmt.body)

        visit(self.body)
        return out
