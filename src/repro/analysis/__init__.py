"""Static protocol verifier for Notified Access programs.

Lifts generator rank programs into a symbolic per-rank IR
(:mod:`repro.analysis.extract`), instantiates them for the concrete
communicator sizes they actually run at
(:mod:`repro.analysis.instantiate`), and checks the protocol graph
before a single simulated cycle:

* :mod:`repro.analysis.budget` — notification-budget balance under the
  ``ANY_SOURCE``/``ANY_TAG`` wildcard lattice;
* :mod:`repro.analysis.deadlock` — wait-for cycles across ranks;
* :mod:`repro.analysis.epochs` — epoch/flush discipline lint;
* :mod:`repro.analysis.races` — data-race / buffer-overlap detection
  over symbolic byte intervals and a static happens-before lattice.

Entry points: ``python -m repro.analysis <paths>``, the ``--analyze``
pytest flag, and :func:`analyze_paths` for programmatic use.
"""

from __future__ import annotations

import os

from repro.analysis.budget import check_budget
from repro.analysis.deadlock import check_deadlock
from repro.analysis.epochs import lint_epochs
from repro.analysis.extract import extract_file
from repro.analysis.instantiate import instantiate
from repro.analysis.ir import Program
from repro.analysis.races import check_races
from repro.analysis.report import Finding, Report

__all__ = [
    "Finding",
    "Report",
    "analyze_file",
    "analyze_paths",
    "analyze_program",
    "extract_file",
]

#: instantiating a program for absurd sizes would only slow the tool
MAX_NRANKS = 256


def analyze_program(program: Program) -> list[Finding]:
    """All findings for one extracted program."""
    if program.skipped:
        return []
    findings = lint_epochs(program)
    for size in sorted(set(program.sizes)):
        if not 1 <= size <= MAX_NRANKS:
            continue
        traces = instantiate(program, size)
        findings.extend(check_budget(program, size, traces))
        findings.extend(check_deadlock(program, size, traces))
        findings.extend(check_races(program, size, traces))
    return findings


def analyze_file(path: str, source: str | None = None) -> list[Finding]:
    report = Report()
    for program in extract_file(path, source):
        report.extend(analyze_program(program))
    return report.sorted()


def collect_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames
                               if not d.startswith((".", "__pycache__"))]
                for name in filenames:
                    if name.endswith(".py"):
                        out.add(os.path.join(dirpath, name))
        elif path.endswith(".py") and os.path.isfile(path):
            out.add(path)
    return sorted(out)


def analyze_paths(paths: list[str]) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths``; the CLI entry."""
    report = Report()
    for path in collect_files(paths):
        report.extend(analyze_file(path))
    return report.sorted()
