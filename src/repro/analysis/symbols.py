"""Symbolic expression domain for the static protocol verifier.

The extractor lifts Python expressions appearing in rank programs into
this small language instead of keeping raw AST nodes: rank arithmetic
(``rank + 1``, ``(rank - 1) % size``, neighbour expressions) stays fully
symbolic in the IR and is only evaluated when a checker instantiates the
program for a concrete ``(rank, size)`` pair.

Evaluation is total: anything outside the modelled fragment evaluates to
the :data:`UNKNOWN` sentinel, which checkers treat as "cannot prove
anything here" — the verifier never guesses.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any


class _Unknown:
    """Singleton for values the verifier cannot resolve statically."""

    _instance: "_Unknown | None" = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unknown>"

    def __bool__(self) -> bool:  # pragma: no cover - defensive
        raise TypeError("UNKNOWN has no truth value; test with is_known()")


#: the single "statically unresolvable" value
UNKNOWN = _Unknown()


def is_known(value: Any) -> bool:
    """True when ``value`` (including its elements) is fully resolved."""
    if value is UNKNOWN:
        return False
    if isinstance(value, (list, tuple)):
        return all(is_known(v) for v in value)
    if isinstance(value, dict):
        return all(is_known(k) and is_known(v) for k, v in value.items())
    return True


class Env:
    """A mutable name environment for one instantiation walk."""

    def __init__(self, rank: int, size: int,
                 globals_: dict[str, Any] | None = None):
        self.rank = rank
        self.size = size
        self.globals = dict(globals_ or {})
        self.locals: dict[str, Any] = {}

    def load(self, name: str) -> Any:
        if name in self.locals:
            return self.locals[name]
        if name in self.globals:
            return self.globals[name]
        return UNKNOWN

    def store(self, name: str, value: Any) -> None:
        self.locals[name] = value


# ---------------------------------------------------------------------------
# expression nodes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SymExpr:
    """Base class: a symbolic expression with a total ``evaluate``."""

    def evaluate(self, env: Env) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def pretty(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class Const(SymExpr):
    value: Any = None

    def evaluate(self, env: Env) -> Any:
        return self.value

    def pretty(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Rank(SymExpr):
    """The calling rank (``ctx.rank``)."""

    def evaluate(self, env: Env) -> Any:
        return env.rank

    def pretty(self) -> str:
        return "rank"


@dataclass(frozen=True)
class Size(SymExpr):
    """The communicator size (``ctx.size``)."""

    def evaluate(self, env: Env) -> Any:
        return env.size

    def pretty(self) -> str:
        return "size"


@dataclass(frozen=True)
class Name(SymExpr):
    id: str = ""

    def evaluate(self, env: Env) -> Any:
        return env.load(self.id)

    def pretty(self) -> str:
        return self.id


@dataclass(frozen=True)
class Opaque(SymExpr):
    """An expression outside the modelled fragment."""

    reason: str = ""

    def evaluate(self, env: Env) -> Any:
        return UNKNOWN

    def pretty(self) -> str:
        return f"?{self.reason}?"


_BIN_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a ** b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}

_CMP_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
    "not in": lambda a, b: a not in b,
    "is": lambda a, b: a is b,
    "is not": lambda a, b: a is not b,
}


@dataclass(frozen=True)
class Bin(SymExpr):
    op: str = "+"
    left: SymExpr = field(default_factory=Const)
    right: SymExpr = field(default_factory=Const)

    def evaluate(self, env: Env) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if not is_known(left) or not is_known(right):
            return UNKNOWN
        try:
            return _BIN_OPS[self.op](left, right)
        except Exception:
            return UNKNOWN

    def pretty(self) -> str:
        return f"({self.left.pretty()} {self.op} {self.right.pretty()})"


@dataclass(frozen=True)
class Un(SymExpr):
    op: str = "-"
    operand: SymExpr = field(default_factory=Const)

    def evaluate(self, env: Env) -> Any:
        value = self.operand.evaluate(env)
        if not is_known(value):
            return UNKNOWN
        try:
            if self.op == "-":
                return -value
            if self.op == "+":
                return +value
            if self.op == "~":
                return ~value
            if self.op == "not":
                return not value
        except Exception:
            return UNKNOWN
        return UNKNOWN  # pragma: no cover - exhaustive ops above

    def pretty(self) -> str:
        return f"({self.op} {self.operand.pretty()})"


@dataclass(frozen=True)
class Cmp(SymExpr):
    op: str = "=="
    left: SymExpr = field(default_factory=Const)
    right: SymExpr = field(default_factory=Const)

    def evaluate(self, env: Env) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if not is_known(left) or not is_known(right):
            return UNKNOWN
        try:
            return _CMP_OPS[self.op](left, right)
        except Exception:
            return UNKNOWN

    def pretty(self) -> str:
        return f"({self.left.pretty()} {self.op} {self.right.pretty()})"


@dataclass(frozen=True)
class Bool(SymExpr):
    op: str = "and"
    parts: tuple[SymExpr, ...] = ()

    def evaluate(self, env: Env) -> Any:
        want_all = self.op == "and"
        saw_unknown = False
        for part in self.parts:
            value = part.evaluate(env)
            if not is_known(value):
                saw_unknown = True
                continue
            if want_all and not value:
                return value
            if not want_all and value:
                return value
        if saw_unknown:
            return UNKNOWN
        return want_all

    def pretty(self) -> str:
        return "(" + f" {self.op} ".join(p.pretty()
                                         for p in self.parts) + ")"


@dataclass(frozen=True)
class IfExp(SymExpr):
    cond: SymExpr = field(default_factory=Const)
    then: SymExpr = field(default_factory=Const)
    orelse: SymExpr = field(default_factory=Const)

    def evaluate(self, env: Env) -> Any:
        cond = self.cond.evaluate(env)
        if not is_known(cond):
            return UNKNOWN
        return (self.then if cond else self.orelse).evaluate(env)

    def pretty(self) -> str:
        return (f"({self.then.pretty()} if {self.cond.pretty()} "
                f"else {self.orelse.pretty()})")


@dataclass(frozen=True)
class TupleExpr(SymExpr):
    items: tuple[SymExpr, ...] = ()

    def evaluate(self, env: Env) -> Any:
        return tuple(item.evaluate(env) for item in self.items)

    def pretty(self) -> str:
        return "(" + ", ".join(i.pretty() for i in self.items) + ")"


@dataclass(frozen=True)
class ListExpr(SymExpr):
    items: tuple[SymExpr, ...] = ()

    def evaluate(self, env: Env) -> Any:
        return [item.evaluate(env) for item in self.items]

    def pretty(self) -> str:
        return "[" + ", ".join(i.pretty() for i in self.items) + "]"


@dataclass(frozen=True)
class DictExpr(SymExpr):
    keys: tuple[SymExpr, ...] = ()
    values: tuple[SymExpr, ...] = ()

    def evaluate(self, env: Env) -> Any:
        out: dict[Any, Any] = {}
        for key_expr, value_expr in zip(self.keys, self.values):
            key = key_expr.evaluate(env)
            if not is_known(key):
                return UNKNOWN
            out[key] = value_expr.evaluate(env)
        return out

    def pretty(self) -> str:
        inner = ", ".join(f"{k.pretty()}: {v.pretty()}"
                          for k, v in zip(self.keys, self.values))
        return "{" + inner + "}"


@dataclass(frozen=True)
class Sub(SymExpr):
    """Subscript load ``value[index]`` (also plain slices)."""

    value: SymExpr = field(default_factory=Const)
    index: SymExpr = field(default_factory=Const)

    def evaluate(self, env: Env) -> Any:
        base = self.value.evaluate(env)
        index = self.index.evaluate(env)
        if not is_known(base) or not is_known(index):
            return UNKNOWN
        try:
            return base[index]
        except Exception:
            return UNKNOWN

    def pretty(self) -> str:
        return f"{self.value.pretty()}[{self.index.pretty()}]"


@dataclass(frozen=True)
class DTypeVal:
    """A resolved numpy dtype — all the checkers need is the itemsize."""

    itemsize: int


@dataclass(frozen=True)
class ArrayVal:
    """Shape/dtype summary of a numpy array constructor result.

    The race checker sizes RMA payloads from these; element values are
    never tracked (an array's *contents* cannot carry protocol effects).
    """

    count: int
    itemsize: int

    @property
    def nbytes(self) -> int:
        return self.count * self.itemsize


#: numpy dtype names the extractor resolves to an itemsize
NP_DTYPES: dict[str, int] = {
    "bool_": 1, "int8": 1, "uint8": 1, "int16": 2, "uint16": 2,
    "float16": 2, "int32": 4, "uint32": 4, "float32": 4, "int64": 8,
    "uint64": 8, "float64": 8, "complex64": 8, "complex128": 16,
}

#: numpy array constructors the extractor models (count x itemsize)
NP_CTORS = frozenset({"zeros", "ones", "empty", "full", "array",
                      "arange"})


@dataclass(frozen=True)
class ArrayCtor(SymExpr):
    """A numpy array constructor (``np.zeros(n)``, ``np.arange(n)``...).

    Evaluates to an :class:`ArrayVal` carrying the byte size, or
    :data:`UNKNOWN` when the element count cannot be resolved.  The
    default itemsize is 8 (numpy's float64 / int64 inference for the
    numeric literals rank programs use).
    """

    func: str = "zeros"
    args: tuple[SymExpr, ...] = ()
    dtype: SymExpr = field(default_factory=Const)

    def evaluate(self, env: Env) -> Any:
        dtype = self.dtype.evaluate(env)
        if isinstance(dtype, DTypeVal):
            itemsize = dtype.itemsize
        elif dtype is None:
            itemsize = 8
        else:
            return UNKNOWN
        count = self._count(env)
        if count is None or count < 0:
            return UNKNOWN
        return ArrayVal(count=count, itemsize=itemsize)

    def _count(self, env: Env) -> int | None:
        if not self.args:
            return None
        if self.func == "array":
            value = self.args[0].evaluate(env)
            # only the *length* matters; elements may stay unresolved
            if isinstance(value, (list, tuple)):
                return len(value)
            if isinstance(value, ArrayVal):
                return value.count
            return None
        if self.func == "arange":
            bounds = [a.evaluate(env) for a in self.args]
            if not all(isinstance(b, int) and not isinstance(b, bool)
                       for b in bounds):
                return None
            try:
                return len(range(*bounds))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return None
        # zeros / ones / empty / full: first arg is the shape
        shape = self.args[0].evaluate(env)
        if isinstance(shape, bool):
            return None
        if isinstance(shape, int):
            return shape
        if isinstance(shape, (list, tuple)) and shape and \
                all(isinstance(d, int) and not isinstance(d, bool)
                    for d in shape):
            total = 1
            for dim in shape:
                total *= dim
            return total
        return None

    def pretty(self) -> str:
        return (f"np.{self.func}("
                + ", ".join(a.pretty() for a in self.args) + ")")


@dataclass(frozen=True)
class HelperCall(SymExpr):
    """Call of a lifted module-level pure helper function.

    The extractor inlines helpers whose bodies are straight-line
    return/if-return arithmetic (see ``extract._lift_helper``) into a
    single expression over their parameters, so rank-routing helpers
    like a hash-based peer selector stay statically resolvable.
    """

    name: str = ""
    params: tuple[str, ...] = ()
    body: SymExpr = field(default_factory=Const)
    args: tuple[SymExpr, ...] = ()

    def evaluate(self, env: Env) -> Any:
        if len(self.args) != len(self.params):
            return UNKNOWN
        values = [a.evaluate(env) for a in self.args]
        if not all(is_known(v) for v in values):
            return UNKNOWN
        inner = Env(rank=env.rank, size=env.size, globals_=env.globals)
        for param, value in zip(self.params, values):
            inner.store(param, value)
        return self.body.evaluate(inner)

    def pretty(self) -> str:
        return (f"{self.name}("
                + ", ".join(a.pretty() for a in self.args) + ")")


#: pure builtins the evaluator may call
_PURE_FUNCS: dict[str, Callable[..., Any]] = {
    "range": range,
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "int": int,
    "float": float,
    "bool": bool,
    "divmod": divmod,
    "sum": sum,
    "sorted": sorted,
    "list": list,
    "tuple": tuple,
    "set": set,
    "reversed": lambda x: list(reversed(x)),
    "enumerate": lambda x: list(enumerate(x)),
    "zip": lambda *xs: list(zip(*xs)),
}

#: pure container methods the evaluator may call
_PURE_METHODS = ("items", "keys", "values", "get", "index", "count",
                 "copy")


@dataclass(frozen=True)
class PureCall(SymExpr):
    """Call of a whitelisted pure builtin (``range``, ``len``, ...)."""

    func: str = "len"
    args: tuple[SymExpr, ...] = ()

    def evaluate(self, env: Env) -> Any:
        args = [a.evaluate(env) for a in self.args]
        if not all(is_known(a) for a in args):
            return UNKNOWN
        fn = _PURE_FUNCS.get(self.func)
        if fn is None:
            return UNKNOWN
        try:
            result = fn(*args)
        except Exception:
            return UNKNOWN
        if isinstance(result, range):
            if len(result) > 100_000:
                return UNKNOWN
            return list(result)
        return result

    def pretty(self) -> str:
        return (f"{self.func}("
                + ", ".join(a.pretty() for a in self.args) + ")")


@dataclass(frozen=True)
class MethodCall(SymExpr):
    """Pure method call on a container (``d.items()``, ``xs.copy()``)."""

    base: SymExpr = field(default_factory=Const)
    method: str = "items"
    args: tuple[SymExpr, ...] = ()

    def evaluate(self, env: Env) -> Any:
        base = self.base.evaluate(env)
        args = [a.evaluate(env) for a in self.args]
        if not is_known(base) or not all(is_known(a) for a in args):
            return UNKNOWN
        if self.method not in _PURE_METHODS:
            return UNKNOWN
        try:
            result = getattr(base, self.method)(*args)
        except Exception:
            return UNKNOWN
        if self.method in ("items", "keys", "values"):
            return list(result)
        return result

    def pretty(self) -> str:
        return (f"{self.base.pretty()}.{self.method}("
                + ", ".join(a.pretty() for a in self.args) + ")")
