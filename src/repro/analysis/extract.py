"""AST extractor: lift rank programs into the protocol IR.

A *rank program* is any generator function whose first parameter is
``ctx`` (the :class:`repro.cluster.Rank` context).  The extractor walks a
module, folds its top-level constants, discovers the communicator sizes
each program actually runs at (``run_ranks(N, program)`` call sites or an
``# analyze: nranks=N`` annotation), and translates each program body
into :class:`repro.analysis.ir.Program`.

The translation is deliberately partial: every communication call of the
repro API (``ctx.na.*``, ``ctx.counters.*``, ``ctx.gaspi.*``,
``ctx.comm.*``, window epoch/flush methods, the foMPI shim, typed RMA)
becomes an :class:`~repro.analysis.ir.Op`; all other Python is either a
pure symbolic expression or an :class:`~repro.analysis.ir.Unknown`
marker that downgrades the cross-rank checks to "cannot prove".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis import ir
from repro.analysis import symbols as sym
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

_ANALYZE_RE = re.compile(r"#\s*analyze:\s*(.+?)\s*$")
_RAW_OK_RE = re.compile(r"#\s*protocol:\s*raw-ok")
_RACE_OK_RE = re.compile(r"#\s*protocol:\s*race-ok")

#: modules whose attributes resolve to wildcard constants
_WILDCARDS = {
    "ANY_SOURCE": ANY_SOURCE,
    "ANY_TAG": ANY_TAG,
    "MPI_ANY_SOURCE": ANY_SOURCE,
    "MPI_ANY_TAG": ANY_TAG,
}

#: foMPI shim functions: name -> (kind, {role: positional index after ctx})
#: (keyword names per repro.fompi signatures)
_FOMPI_TABLE: dict[str, tuple[str, dict[str, int]]] = {
    "Win_allocate": ("win_allocate", {"size": 0, "disp_unit": 1}),
    "Win_free": ("win_free", {"win": 0}),
    "Win_flush": ("win_flush", {"target": 0, "win": 1}),
    "Win_flush_local": ("win_flush_local", {"target": 0, "win": 1}),
    "Put_notify": ("put_notify",
                    {"win": 7, "target": 3, "tag": 8, "disp": 4,
                     "count": 5, "dtype": 6}),
    "Get_notify": ("get_notify",
                   {"buf": 0, "win": 7, "target": 3, "tag": 8,
                    "disp": 4, "count": 5, "dtype": 6}),
    "Notify_init": ("notify_init",
                    {"win": 0, "source": 1, "tag": 2, "expected": 3}),
    "Start": ("na_start", {"req": 0}),
    "Wait": ("na_wait", {"req": 0}),
    "Test": ("na_test", {"req": 0}),
    "Request_free": ("na_request_free", {"req": 0}),
}

#: fompi keyword-name -> role, for calls passing keywords
_FOMPI_KW = {
    "win": "win", "target_rank": "target", "source_rank": "source",
    "tag": "tag", "expected_count": "expected", "request": "req",
    "size": "size", "disp_unit": "disp_unit", "target_disp": "disp",
    "target_count": "count", "target_datatype": "dtype",
}

#: ctx.na.<method>: kind + argument roles (positional index / kw name)
_NA_TABLE: dict[str, tuple[str, dict[str, tuple[int, str]]]] = {
    "put_notify": ("put_notify",
                   {"win": (0, "win"), "data": (1, "data"),
                    "target": (2, "target"), "disp": (3, "target_disp"),
                    "tag": (4, "tag")}),
    "get_notify": ("get_notify",
                   {"win": (0, "win"), "buf": (1, "buf_region"),
                    "target": (2, "target"), "disp": (3, "target_disp"),
                    "nbytes": (4, "nbytes"), "tag": (5, "tag"),
                    "local_offset": (6, "local_offset")}),
    "accumulate_notify": ("accumulate_notify",
                          {"win": (0, "win"), "data": (1, "data"),
                           "target": (2, "target"),
                           "disp": (3, "target_disp"),
                           "tag": (5, "tag")}),
    "notify_init": ("notify_init",
                    {"win": (0, "win"), "source": (1, "source"),
                     "tag": (2, "tag"), "expected": (3, "expected_count")}),
    "start": ("na_start", {"req": (0, "req")}),
    "wait": ("na_wait", {"req": (0, "req")}),
    "test": ("na_test", {"req": (0, "req")}),
    "testany": ("na_testany", {"reqs": (0, "reqs")}),
    "waitany": ("na_waitany", {"reqs": (0, "reqs")}),
    "waitall": ("na_waitall", {"reqs": (0, "reqs")}),
    "request_free": ("na_request_free", {"req": (0, "req")}),
    "probe": ("na_probe",
              {"win": (0, "win"), "source": (1, "source"),
               "tag": (2, "tag")}),
    "flush_notify": ("flush_notify",
                     {"win": (0, "win"), "target": (1, "target"),
                      "tag": (2, "tag")}),
}

_COUNTER_TABLE: dict[str, tuple[str, dict[str, tuple[int, str]]]] = {
    "counter_init": ("counter_init",
                     {"win": (0, "win"), "source": (1, "source"),
                      "tag": (2, "tag"),
                      "expected": (3, "expected_count")}),
    "start": ("counter_start", {"req": (0, "req")}),
    "test": ("counter_test", {"req": (0, "req")}),
    "wait": ("counter_wait", {"req": (0, "req")}),
    "request_free": ("counter_request_free", {"req": (0, "req")}),
    "put_counted": ("put_counted",
                    {"win": (0, "win"), "data": (1, "data"),
                     "target": (2, "target"), "disp": (3, "target_disp"),
                     "tag": (4, "tag")}),
}

_GASPI_TABLE: dict[str, tuple[str, dict[str, tuple[int, str]]]] = {
    "notification_init": ("gaspi_init",
                          {"win": (0, "win"), "num": (1, "num")}),
    "waitsome": ("waitsome", {"space": (0, "space")}),
    "write_notify": ("write_notify",
                     {"win": (0, "win"), "data": (1, "data"),
                      "target": (2, "target"), "disp": (3, "target_disp"),
                      "slot": (4, "slot")}),
}

_COMM_TABLE: dict[str, tuple[str, dict[str, tuple[int, str]]]] = {
    "send": ("send", {"target": (1, "dest"), "tag": (2, "tag")}),
    "ssend": ("send", {"target": (1, "dest"), "tag": (2, "tag")}),
    "isend": ("isend", {"target": (1, "dest"), "tag": (2, "tag")}),
    "recv": ("recv", {"source": (1, "source"), "tag": (2, "tag")}),
    "irecv": ("irecv", {"source": (1, "source"), "tag": (2, "tag")}),
    "sendrecv": ("sendrecv",
                 {"target": (1, "dest"), "sendtag": (2, "sendtag"),
                  "source": (4, "source"), "tag": (5, "recvtag")}),
    "wait": ("comm_wait", {"req": (0, "req")}),
    "waitall": ("comm_waitall", {"reqs": (0, "reqs")}),
    "waitany": ("comm_waitany", {"reqs": (0, "reqs")}),
    "probe": ("comm_probe", {"source": (0, "source"), "tag": (1, "tag")}),
    "iprobe": ("nop", {}),
    "barrier": ("barrier", {}),
    "bcast": ("collective", {}),
    "reduce": ("collective", {}),
    "allreduce": ("collective", {}),
    "send_typed": ("send", {"target": (2, "dest"), "tag": (3, "tag")}),
    "recv_typed": ("recv", {"source": (2, "source"), "tag": (3, "tag")}),
}

#: window methods reached through an arbitrary base expression
_WIN_TABLE: dict[str, tuple[str, dict[str, tuple[int, str]]]] = {
    "put": ("win_put", {"data": (0, "data"), "target": (1, "target"),
                        "disp": (2, "target_disp")}),
    "get": ("win_get", {"buf": (0, "buf_region"), "target": (1, "target"),
                        "disp": (2, "target_disp"),
                        "nbytes": (3, "nbytes"),
                        "local_offset": (4, "local_offset")}),
    "accumulate": ("win_accumulate",
                   {"data": (0, "data"), "target": (1, "target"),
                    "disp": (2, "target_disp")}),
    "fetch_and_op": ("win_fetch_and_op", {"target": (1, "target")}),
    "compare_and_swap": ("win_compare_and_swap", {"target": (2, "target")}),
    "flush": ("win_flush", {"target": (0, "target")}),
    "flush_local": ("win_flush_local", {"target": (0, "target")}),
    "flush_all": ("win_flush_all", {}),
    "flush_local_all": ("win_flush_local_all", {}),
    "fence": ("win_fence", {}),
    "fence_end": ("win_fence_end", {}),
    "post": ("win_post", {"group": (0, "origins")}),
    "start": ("win_start", {"group": (0, "targets")}),
    "complete": ("win_complete", {}),
    "wait": ("win_wait_pscw", {"group": (0, "origins")}),
    "lock": ("win_lock", {"target": (0, "target")}),
    "unlock": ("win_unlock", {"target": (0, "target")}),
    "lock_all": ("win_lock_all", {}),
    "unlock_all": ("win_unlock_all", {}),
    "free": ("win_free", {}),
}

#: typed-RMA module functions (first arg ctx or win)
_TYPED_TABLE: dict[str, tuple[str, dict[str, tuple[int, str]]]] = {
    "put_notify_typed": ("put_notify",
                         {"win": (1, "win"), "target": (4, "target"),
                          "tag": (8, "tag")}),
    "put_typed": ("put_typed",
                  {"win": (0, "win"), "target": (3, "target")}),
    "get_typed": ("get_typed",
                  {"win": (0, "win"), "buf": (1, "buf"),
                   "target": (3, "target")}),
}

#: ctx methods that are pure time/computation (no protocol effect)
_CTX_NOPS = frozenset({"compute", "compute_flops", "timeout"})


@dataclass
class _Annotations:
    """Per-function ``# analyze:`` / ``# protocol:`` annotations."""

    nranks: list[int] = field(default_factory=list)
    args: list[object] = field(default_factory=list)
    skip: bool = False
    raw_ok_lines: set[int] = field(default_factory=set)
    race_ok_lines: set[int] = field(default_factory=set)


class _Translator(ast.NodeVisitor):
    """Translates one function body; stateless across functions."""

    def __init__(self, ctx_name: str, fompi_aliases: set[str],
                 fompi_names: set[str], typed_names: set[str],
                 np_aliases: set[str] | frozenset[str] = frozenset(),
                 helpers: dict[str, tuple[tuple[str, ...],
                                          sym.SymExpr]] | None = None):
        self.ctx_name = ctx_name
        self.fompi_aliases = fompi_aliases
        self.fompi_names = fompi_names
        self.typed_names = typed_names
        self.np_aliases = np_aliases
        self.helpers = helpers if helpers is not None else {}

    # -- expressions ----------------------------------------------------
    def expr(self, node: ast.expr | None) -> sym.SymExpr:
        if node is None:
            return sym.Const(None)
        method = getattr(self, f"_e_{type(node).__name__}", None)
        if method is None:
            return sym.Opaque(type(node).__name__)
        return method(node)

    def _e_Constant(self, node: ast.Constant) -> sym.SymExpr:
        return sym.Const(node.value)

    def _e_Name(self, node: ast.Name) -> sym.SymExpr:
        if node.id in _WILDCARDS and node.id in self.fompi_names:
            return sym.Const(_WILDCARDS[node.id])
        return sym.Name(node.id)

    def _e_Attribute(self, node: ast.Attribute) -> sym.SymExpr:
        base = node.value
        if isinstance(base, ast.Name) and base.id == self.ctx_name:
            if node.attr == "rank":
                return sym.Rank()
            if node.attr == "size":
                return sym.Size()
            return sym.Opaque(f"ctx.{node.attr}")
        if isinstance(base, ast.Name) and base.id in self.fompi_aliases \
                and node.attr in _WILDCARDS:
            return sym.Const(_WILDCARDS[node.attr])
        if isinstance(base, ast.Name) and base.id in self.np_aliases \
                and node.attr in sym.NP_DTYPES:
            return sym.Const(sym.DTypeVal(sym.NP_DTYPES[node.attr]))
        if node.attr in _WILDCARDS and _ends_with_constants(node):
            return sym.Const(_WILDCARDS[node.attr])
        return sym.Opaque(f".{node.attr}")

    def _e_BinOp(self, node: ast.BinOp) -> sym.SymExpr:
        op = _BINOP_SYMS.get(type(node.op).__name__)
        if op is None:
            return sym.Opaque("binop")
        return sym.Bin(op, self.expr(node.left), self.expr(node.right))

    def _e_UnaryOp(self, node: ast.UnaryOp) -> sym.SymExpr:
        op = {"USub": "-", "UAdd": "+", "Invert": "~", "Not": "not"}.get(
            type(node.op).__name__)
        if op is None:  # pragma: no cover - exhaustive
            return sym.Opaque("unary")
        return sym.Un(op, self.expr(node.operand))

    def _e_Compare(self, node: ast.Compare) -> sym.SymExpr:
        if len(node.ops) != 1:
            return sym.Opaque("chained-compare")
        op = _CMP_SYMS.get(type(node.ops[0]).__name__)
        if op is None:
            return sym.Opaque("compare")
        return sym.Cmp(op, self.expr(node.left),
                       self.expr(node.comparators[0]))

    def _e_BoolOp(self, node: ast.BoolOp) -> sym.SymExpr:
        op = "and" if isinstance(node.op, ast.And) else "or"
        return sym.Bool(op, tuple(self.expr(v) for v in node.values))

    def _e_IfExp(self, node: ast.IfExp) -> sym.SymExpr:
        return sym.IfExp(self.expr(node.test), self.expr(node.body),
                         self.expr(node.orelse))

    def _e_Tuple(self, node: ast.Tuple) -> sym.SymExpr:
        return sym.TupleExpr(tuple(self.expr(e) for e in node.elts))

    def _e_List(self, node: ast.List) -> sym.SymExpr:
        return sym.ListExpr(tuple(self.expr(e) for e in node.elts))

    def _e_Dict(self, node: ast.Dict) -> sym.SymExpr:
        if any(k is None for k in node.keys):
            return sym.Opaque("dict-splat")
        return sym.DictExpr(tuple(self.expr(k) for k in node.keys
                                  if k is not None),
                            tuple(self.expr(v) for v in node.values))

    def _e_Subscript(self, node: ast.Subscript) -> sym.SymExpr:
        if isinstance(node.slice, ast.Slice):
            return sym.Opaque("slice")
        return sym.Sub(self.expr(node.value), self.expr(node.slice))

    def _e_Call(self, node: ast.Call) -> sym.SymExpr:
        func = node.func
        if node.keywords and any(kw.arg is None for kw in node.keywords):
            return sym.Opaque("call-splat")
        args = tuple(self.expr(a) for a in node.args
                     if not isinstance(a, ast.Starred))
        if isinstance(func, ast.Name):
            if func.id in sym._PURE_FUNCS and not node.keywords:
                return sym.PureCall(func.id, args)
            helper = self.helpers.get(func.id)
            if helper is not None and not node.keywords and \
                    len(args) == len(node.args) and \
                    len(args) == len(helper[0]):
                return sym.HelperCall(func.id, helper[0], helper[1], args)
            return sym.Opaque(f"{func.id}()")
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and \
                    base.id in self.np_aliases and \
                    func.attr in sym.NP_CTORS and \
                    len(args) == len(node.args):
                ctor = self._np_ctor(func.attr, node, args)
                if ctor is not None:
                    return ctor
            if func.attr in sym._PURE_METHODS and not node.keywords:
                return sym.MethodCall(self.expr(func.value), func.attr,
                                      args)
            return sym.Opaque(f".{func.attr}()")
        return sym.Opaque("call")

    def _np_ctor(self, name: str, node: ast.Call,
                 args: tuple[sym.SymExpr, ...]) -> sym.SymExpr | None:
        if any(kw.arg != "dtype" for kw in node.keywords):
            return None
        dtype: sym.SymExpr = sym.Const(None)
        for keyword in node.keywords:
            dtype = self.expr(keyword.value)
        pos = {"zeros": 1, "ones": 1, "empty": 1, "array": 1,
               "full": 2}.get(name)
        if pos is not None and len(args) > pos:
            dtype = args[pos]
            args = args[:pos] + args[pos + 1:]
        return sym.ArrayCtor(name, args, dtype)

    # -- api-call recognition -------------------------------------------
    def recognize(self, node: ast.expr) -> ir.Op | None:
        """Map a ``yield from`` (or effect) call to an Op, or None."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        line = node.lineno
        if isinstance(func, ast.Attribute):
            base = func.value
            # ctx.<engine>.<method>(...)
            if isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name) and \
                    base.value.id == self.ctx_name:
                table = {"na": _NA_TABLE, "counters": _COUNTER_TABLE,
                         "gaspi": _GASPI_TABLE,
                         "comm": _COMM_TABLE}.get(base.attr)
                if table is not None:
                    entry = table.get(func.attr)
                    if entry is None:
                        return ir.Op("unknown", line=line)
                    return self._build_op(entry, node, line)
                return ir.Op("unknown", line=line)
            # ctx.<method>(...)
            if isinstance(base, ast.Name) and base.id == self.ctx_name:
                if func.attr == "win_allocate":
                    return self._ctx_alloc_op("win_allocate", node, line)
                if func.attr == "barrier":
                    return ir.Op("barrier", line=line)
                if func.attr == "alloc":
                    return self._ctx_alloc_op("alloc", node, line)
                if func.attr in ("san_acquire", "san_acquire_at"):
                    return ir.Op("san_acquire", line=line)
                if func.attr in _CTX_NOPS:
                    return ir.Op("nop", line=line)
                return ir.Op("unknown", line=line)
            # fompi.<Func>(ctx, ...)
            if isinstance(base, ast.Name) and base.id in self.fompi_aliases:
                return self._build_fompi(func.attr, node, line)
            # <expr>.<window method>(...)
            entry = _WIN_TABLE.get(func.attr)
            if entry is not None:
                op = self._build_op(entry, node, line)
                op.args["win"] = self.expr(base)
                return op
            return None
        if isinstance(func, ast.Name):
            if func.id in self.fompi_names and func.id in _FOMPI_TABLE:
                return self._build_fompi(func.id, node, line)
            if func.id in self.typed_names and func.id in _TYPED_TABLE:
                entry = _TYPED_TABLE[func.id]
                return self._build_op(
                    (entry[0], {r: (i, r) for r, (i, _k) in
                                entry[1].items()}), node, line,
                    kwnames={kw: role for role, (_i, kw)
                             in entry[1].items()})
        return None

    def _ctx_alloc_op(self, kind: str, node: ast.Call,
                      line: int) -> ir.Op:
        """``ctx.alloc(nbytes)`` / ``ctx.win_allocate(nbytes, disp_unit)``."""
        op = ir.Op(kind, line=line)
        if node.args and not isinstance(node.args[0], ast.Starred):
            op.args["size"] = self.expr(node.args[0])
        if kind == "win_allocate" and len(node.args) > 1 and \
                not isinstance(node.args[1], ast.Starred):
            op.args["disp_unit"] = self.expr(node.args[1])
        for keyword in node.keywords:
            if keyword.arg == "nbytes":
                op.args["size"] = self.expr(keyword.value)
            elif keyword.arg == "disp_unit" and kind == "win_allocate":
                op.args["disp_unit"] = self.expr(keyword.value)
        return op

    def _build_op(self, entry: tuple[str, dict[str, tuple[int, str]]],
                  node: ast.Call, line: int,
                  kwnames: dict[str, str] | None = None) -> ir.Op:
        kind, roles = entry
        op = ir.Op(kind, line=line)
        kw_to_role = kwnames or {kw: role for role, (_i, kw)
                                 in roles.items()}
        for role, (idx, _kw) in roles.items():
            if idx < len(node.args):
                arg = node.args[idx]
                if not isinstance(arg, ast.Starred):
                    op.args[role] = self.expr(arg)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in kw_to_role:
                op.args[kw_to_role[keyword.arg]] = self.expr(
                    keyword.value)
        self._fill_defaults(op)
        return op

    def _build_fompi(self, name: str, node: ast.Call,
                     line: int) -> ir.Op | None:
        entry = _FOMPI_TABLE.get(name)
        if entry is None:
            return ir.Op("unknown", line=line)
        kind, roles = entry
        op = ir.Op(kind, line=line)
        # fompi calls pass ctx explicitly as the first argument
        for role, idx in roles.items():
            pos = idx + 1
            if pos < len(node.args):
                arg = node.args[pos]
                if not isinstance(arg, ast.Starred):
                    op.args[role] = self.expr(arg)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in _FOMPI_KW:
                op.args[_FOMPI_KW[keyword.arg]] = self.expr(keyword.value)
        self._fill_defaults(op)
        return op

    @staticmethod
    def _fill_defaults(op: ir.Op) -> None:
        if op.kind in ("notify_init", "na_probe", "comm_probe"):
            op.args.setdefault("source", sym.Const(ANY_SOURCE))
            op.args.setdefault("tag", sym.Const(ANY_TAG))
        if op.kind == "notify_init":
            op.args.setdefault("expected", sym.Const(1))
        if op.kind == "counter_init":
            op.args.setdefault("expected", sym.Const(1))
        if op.kind == "recv":
            op.args.setdefault("source", sym.Const(ANY_SOURCE))
            op.args.setdefault("tag", sym.Const(ANY_TAG))
        if op.kind == "irecv":
            op.args.setdefault("source", sym.Const(ANY_SOURCE))
            op.args.setdefault("tag", sym.Const(ANY_TAG))
        if op.kind in ("put_notify", "get_notify", "accumulate_notify",
                       "flush_notify", "put_counted", "send", "isend"):
            op.args.setdefault("tag", sym.Const(0))

    # -- statements ------------------------------------------------------
    def stmts(self, nodes: list[ast.stmt]) -> list[ir.Stmt]:
        out: list[ir.Stmt] = []
        for node in nodes:
            out.extend(self.stmt(node))
        return out

    def stmt(self, node: ast.stmt) -> list[ir.Stmt]:
        line = node.lineno
        prefix = self._view_ops(node)
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                return prefix + [ir.Unknown(line=line,
                                            reason="multi-assign")]
            return prefix + [self._assign(node.targets[0], node.value,
                                          line)]
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return prefix
            return prefix + [self._assign(node.target, node.value, line)]
        if isinstance(node, ast.AugAssign):
            op = _BINOP_SYMS.get(type(node.op).__name__)
            target = self.expr(node.target)
            if op is None or not isinstance(target,
                                            (sym.Name, sym.Sub)):
                return prefix + [ir.Unknown(line=line, reason="augassign")]
            return prefix + [ir.Assign(
                line=line, target=target,
                value=sym.Bin(op, target, self.expr(node.value)))]
        if isinstance(node, ast.Expr):
            return prefix + self._expr_stmt(node.value, line)
        if isinstance(node, ast.If):
            return prefix + [ir.If(line=line, cond=self.expr(node.test),
                                   body=self.stmts(node.body),
                                   orelse=self.stmts(node.orelse))]
        if isinstance(node, ast.For):
            if node.orelse:
                return prefix + [ir.Unknown(line=line,
                                            reason="for-else")]
            return prefix + [ir.For(line=line,
                                    target=self.expr(node.target),
                                    iter=self.expr(node.iter),
                                    body=self.stmts(node.body))]
        if isinstance(node, ast.While):
            if node.orelse:
                return prefix + [ir.Unknown(line=line,
                                            reason="while-else")]
            return prefix + [ir.While(line=line,
                                      cond=self.expr(node.test),
                                      body=self.stmts(node.body))]
        if isinstance(node, ast.Return):
            return prefix + [ir.Return(line=line)]
        if isinstance(node, ast.Break):
            return [ir.Break(line=line)]
        if isinstance(node, ast.Continue):
            return [ir.Continue(line=line)]
        if isinstance(node, (ast.Pass, ast.Assert, ast.Import,
                             ast.ImportFrom, ast.Global, ast.Nonlocal,
                             ast.Delete)):
            return prefix
        return prefix + [ir.Unknown(line=line,
                                    reason=type(node).__name__)]

    def _assign(self, target: ast.expr, value: ast.expr,
                line: int) -> ir.Stmt:
        tgt = self.expr(target)
        if not isinstance(tgt, (sym.Name, sym.Sub, sym.TupleExpr)):
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                return ir.Unknown(line=line, reason="assign-target")
            # a store through a slice/attribute of some object cannot
            # introduce protocol ops; at worst it mutates the root name
            root = _root_name(target)
            if root is None:
                return ir.ExprStmt(line=line, value=self.expr(value))
            return ir.Assign(line=line, target=sym.Name(root),
                             value=sym.Opaque("mutated"))
        if isinstance(value, (ast.Yield, ast.YieldFrom)):
            inner = value.value
            if isinstance(value, ast.YieldFrom):
                op = self.recognize(inner) if inner is not None else None
                if op is None:
                    op = ir.Op("unknown", line=line)
                return ir.Assign(line=line, target=tgt, value=op)
            # x = yield <expr>: the sent value is unknowable
            return ir.Assign(line=line, target=tgt,
                             value=sym.Opaque("yield"))
        op = self._effect_call(value)
        if op is not None:
            return ir.Assign(line=line, target=tgt, value=op)
        return ir.Assign(line=line, target=tgt, value=self.expr(value))

    def _effect_call(self, node: ast.expr) -> ir.Op | None:
        """Plain (non-yield) calls with protocol-relevant effects."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == self.ctx_name and \
                func.attr in ("alloc", "san_acquire", "san_acquire_at"):
            if func.attr == "alloc":
                return self._ctx_alloc_op("alloc", node, node.lineno)
            return ir.Op("san_acquire", line=node.lineno)
        return None

    def _expr_stmt(self, value: ast.expr, line: int) -> list[ir.Stmt]:
        if isinstance(value, ast.Constant):
            return []                       # docstring
        if isinstance(value, ast.YieldFrom):
            op = (self.recognize(value.value)
                  if value.value is not None else None)
            if op is None:
                op = ir.Op("unknown", line=line)
            return [ir.ExprStmt(line=line, value=op)]
        if isinstance(value, ast.Yield):
            inner = value.value
            if inner is None:
                return [ir.YieldRaw(line=line, value=sym.Const(None),
                                    is_literal=True)]
            expr = self.expr(inner)
            literal = _is_literalish(expr)
            return [ir.YieldRaw(line=line, value=expr,
                                is_literal=literal)]
        op = self._effect_call(value)
        if op is not None:
            return [ir.ExprStmt(line=line, value=op)]
        # container mutations the interpreter tracks
        if isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Attribute) and \
                value.func.attr in ("append", "extend") and \
                not value.keywords and len(value.args) == 1:
            return [ir.ExprStmt(line=line, value=ir.Op(
                f"list_{value.func.attr}",
                args={"base": self.expr(value.func.value),
                      "item": self.expr(value.args[0])}, line=line))]
        if isinstance(value, ast.Call):
            # A plain call cannot run protocol ops (those need `yield
            # from`), but it may mutate anything reachable from its
            # receiver or arguments — invalidate those names.
            if isinstance(value.func, ast.Name) and \
                    value.func.id == "print":
                return []
            roots: set[str] = set()
            if isinstance(value.func, ast.Attribute):
                root = _root_name(value.func.value)
                if root is not None and root != self.ctx_name:
                    roots.add(root)
            operands = [a.value if isinstance(a, ast.Starred) else a
                        for a in value.args]
            operands += [kw.value for kw in value.keywords]
            for operand in operands:
                root = _root_name(operand)
                if root is not None and root != self.ctx_name:
                    roots.add(root)
            return [ir.Assign(line=line, target=sym.Name(root),
                              value=sym.Opaque("mutated"))
                    for root in sorted(roots)]
        return []                           # pure/benign expression

    def _view_ops(self, node: ast.stmt) -> list[ir.Stmt]:
        """Emit win_view / region_read ops for ``.local()`` /
        ``.ndarray()`` calls anywhere in a simple statement."""
        if isinstance(node, (ast.If, ast.For, ast.While)):
            scan: list[ast.expr] = [node.test] if isinstance(
                node, (ast.If, ast.While)) else [node.iter]
        else:
            scan = [n for n in ast.walk(node)
                    if isinstance(n, ast.expr)]
        out: list[ir.Stmt] = []
        seen: set[int] = set()
        for expr_node in scan:
            for call in ast.walk(expr_node):
                if not isinstance(call, ast.Call) or id(call) in seen:
                    continue
                seen.add(id(call))
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in ("san_acquire", "san_acquire_at"):
                    # blessings inside helper closures still count
                    out.append(ir.ExprStmt(line=call.lineno, value=ir.Op(
                        "san_acquire", line=call.lineno)))
                    continue
                if func.attr not in ("local", "ndarray"):
                    continue
                mode = "rw"
                view_args: dict[str, sym.SymExpr] = {
                    "base": self.expr(func.value)}
                # local()/ndarray() share (dtype, offset, count, mode)
                for role, idx in (("dtype", 0), ("offset", 1),
                                  ("count", 2)):
                    if idx < len(call.args) and \
                            not isinstance(call.args[idx], ast.Starred):
                        view_args[role] = self.expr(call.args[idx])
                if len(call.args) > 3 and \
                        isinstance(call.args[3], ast.Constant):
                    mode = str(call.args[3].value)
                for keyword in call.keywords:
                    if keyword.arg == "mode" and \
                            isinstance(keyword.value, ast.Constant):
                        mode = str(keyword.value.value)
                    elif keyword.arg in ("dtype", "offset", "count"):
                        view_args[keyword.arg] = self.expr(keyword.value)
                kind = ("win_view" if func.attr == "local"
                        else "region_read")
                out.append(ir.ExprStmt(line=call.lineno, value=ir.Op(
                    kind, args=view_args, line=call.lineno, mode=mode)))
        return out


_BINOP_SYMS = {
    "Add": "+", "Sub": "-", "Mult": "*", "Div": "/", "FloorDiv": "//",
    "Mod": "%", "Pow": "**", "BitAnd": "&", "BitOr": "|", "BitXor": "^",
    "LShift": "<<", "RShift": ">>",
}

_CMP_SYMS = {
    "Eq": "==", "NotEq": "!=", "Lt": "<", "LtE": "<=", "Gt": ">",
    "GtE": ">=", "In": "in", "NotIn": "not in", "Is": "is",
    "IsNot": "is not",
}


def _root_name(node: ast.expr) -> str | None:
    """The variable a subscript/attribute store ultimately mutates."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _ends_with_constants(node: ast.Attribute) -> bool:
    """True for ``<...>.constants.ANY_TAG``-style chains."""
    base = node.value
    return isinstance(base, ast.Attribute) and base.attr == "constants"


def _is_literalish(expr: sym.SymExpr) -> bool:
    """Constants and arithmetic over constants — never an Event."""
    if isinstance(expr, sym.Const):
        return not isinstance(expr.value, str) or True
    if isinstance(expr, sym.Un):
        return _is_literalish(expr.operand)
    if isinstance(expr, sym.Bin):
        return _is_literalish(expr.left) and _is_literalish(expr.right)
    return False


# ---------------------------------------------------------------------------
# module-level extraction
# ---------------------------------------------------------------------------

def _fold_module_consts(tree: ast.Module) -> dict[str, object]:
    """Evaluate simple top-level constant assignments."""
    consts: dict[str, object] = dict(_WILDCARDS)
    translator = _Translator("\0", set(), set(), set())
    env = sym.Env(rank=0, size=0, globals_=consts)
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        result = translator.expr(value).evaluate(env)
        if not sym.is_known(result):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                consts[target.id] = result
                env.globals[target.id] = result
            elif isinstance(target, ast.Tuple) and \
                    isinstance(result, (tuple, list)) and \
                    len(target.elts) == len(result):
                for elt, val in zip(target.elts, result):
                    if isinstance(elt, ast.Name):
                        consts[elt.id] = val
                        env.globals[elt.id] = val
    return consts


def _collect_imports(tree: ast.Module) -> tuple[set[str], set[str],
                                                set[str], set[str]]:
    """(fompi aliases, fompi direct names, typed names, numpy aliases)."""
    aliases: set[str] = set()
    names: set[str] = set()
    typed: set[str] = set()
    numpy_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro" and any(a.name == "fompi"
                                         for a in node.names):
                for alias in node.names:
                    if alias.name == "fompi":
                        aliases.add(alias.asname or "fompi")
            elif module == "repro.fompi":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif module in ("repro.rma.typed", "repro.rma"):
                for alias in node.names:
                    typed.add(alias.asname or alias.name)
            elif module == "repro.mpi.constants":
                for alias in node.names:
                    if alias.name in _WILDCARDS:
                        names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.fompi":
                    aliases.add(alias.asname or "repro.fompi")
                elif alias.name == "repro.rma.typed":
                    aliases.add(alias.asname or alias.name)
                elif alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
    return aliases, names, typed, numpy_aliases


def _discover_sizes(tree: ast.Module,
                    consts: dict[str, object]) -> dict[str, list[int]]:
    """Map program name -> communicator sizes from run_ranks call sites."""
    translator = _Translator("\0", set(), set(), set())
    env = sym.Env(rank=0, size=0, globals_=consts)
    sizes: dict[str, list[int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name not in ("run_ranks", "run_cluster") or len(node.args) < 2:
            continue
        n = translator.expr(node.args[0]).evaluate(env)
        prog = node.args[1]
        if isinstance(n, int) and n >= 1 and isinstance(prog, ast.Name):
            sizes.setdefault(prog.id, [])
            if n not in sizes[prog.id]:
                sizes[prog.id].append(n)
    return sizes


def _parse_annotations(source: str,
                       tree: ast.Module) -> dict[str, _Annotations]:
    """Attach ``# analyze:`` / ``# protocol:`` comments to functions."""
    functions: list[ast.FunctionDef] = [
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
    out: dict[str, _Annotations] = {}

    def owner(lineno: int) -> ast.FunctionDef | None:
        best: ast.FunctionDef | None = None
        for fn in functions:
            end = fn.end_lineno or fn.lineno
            if fn.lineno <= lineno <= end:
                if best is None or fn.lineno > best.lineno:
                    best = fn
        return best

    for idx, text in enumerate(source.splitlines(), start=1):
        raw_match = _RAW_OK_RE.search(text)
        race_match = _RACE_OK_RE.search(text)
        analyze_match = _ANALYZE_RE.search(text)
        if not raw_match and not race_match and not analyze_match:
            continue
        fn = owner(idx)
        if fn is None:
            continue
        ann = out.setdefault(fn.name, _Annotations())
        if raw_match:
            ann.raw_ok_lines.add(idx)
        if race_match:
            ann.race_ok_lines.add(idx)
        if analyze_match:
            _parse_analyze(analyze_match.group(1), ann)
    return out


def _parse_analyze(text: str, ann: _Annotations) -> None:
    for token in re.findall(r"(\w+)=([^\s]+)|(\bskip\b)", text):
        key, value, skip = token
        if skip:
            ann.skip = True
        elif key == "nranks":
            for part in value.split(","):
                try:
                    ann.nranks.append(int(part))
                except ValueError:
                    pass
        elif key == "args":
            try:
                parsed = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                continue
            if isinstance(parsed, tuple):
                ann.args = list(parsed)
            else:
                ann.args = [parsed]


def _has_yield(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _lift_helper(fn: ast.FunctionDef, translator: _Translator,
                 ) -> tuple[tuple[str, ...], sym.SymExpr] | None:
    """Lift a straight-line pure helper function into one SymExpr.

    Supported bodies: an optional docstring followed by nested
    guard-``if``/``return`` chains ending in a plain ``return <expr>``.
    Anything else (loops, defaults, varargs, yields) is rejected.
    """
    spec = fn.args
    if spec.posonlyargs or spec.kwonlyargs or spec.vararg or \
            spec.kwarg or spec.defaults or spec.kw_defaults or \
            fn.decorator_list:
        return None
    if _has_yield(fn):
        return None
    params = tuple(arg.arg for arg in spec.args)
    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) and \
            isinstance(body[0].value, ast.Constant):
        body = body[1:]                         # docstring
    expr = _fold_returns(body, translator)
    if expr is None:
        return None
    return params, expr


def _fold_returns(body: list[ast.stmt],
                  translator: _Translator) -> sym.SymExpr | None:
    """Fold an if/return ladder into a nested conditional expression."""
    if not body:
        return None
    head, rest = body[0], body[1:]
    if isinstance(head, ast.Return):
        if head.value is None or rest:
            return None
        return translator.expr(head.value)
    if isinstance(head, ast.If):
        then = _fold_returns(head.body, translator)
        if then is None:
            return None
        if head.orelse:
            if rest:
                return None
            other = _fold_returns(head.orelse, translator)
        else:
            other = _fold_returns(rest, translator)
        if other is None:
            return None
        return sym.IfExp(translator.expr(head.test), then, other)
    return None


def extract_file(path: str, source: str | None = None) -> list[ir.Program]:
    """Extract every rank program from one Python source file."""
    if source is None:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    consts = _fold_module_consts(tree)
    aliases, fompi_names, typed_names, np_aliases = _collect_imports(tree)
    sizes = _discover_sizes(tree, consts)
    annotations = _parse_annotations(source, tree)

    # Pure module-level helpers become inlinable symbolic bodies so
    # rank/size-affine offsets routed through them stay resolvable.
    helpers: dict[str, tuple[tuple[str, ...], sym.SymExpr]] = {}
    helper_translator = _Translator("\0", aliases, fompi_names,
                                    typed_names, np_aliases, helpers)
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        fn_args = node.args.posonlyargs + node.args.args
        if fn_args and fn_args[0].arg == "ctx":
            continue
        lifted = _lift_helper(node, helper_translator)
        if lifted is not None:
            helpers[node.name] = lifted

    programs: list[ir.Program] = []
    parents: dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            for child in ast.walk(node):
                if isinstance(child, ast.FunctionDef) and child is not node:
                    parents.setdefault(id(child), node.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        args = node.args.posonlyargs + node.args.args
        if not args or args[0].arg != "ctx" or not _has_yield(node):
            continue
        ann = annotations.get(node.name, _Annotations())
        translator = _Translator(args[0].arg, aliases, fompi_names,
                                 typed_names, np_aliases, helpers)
        parent = parents.get(id(node))
        qualname = f"{parent}.<locals>.{node.name}" if parent \
            else node.name
        program = ir.Program(
            name=node.name, qualname=qualname, path=path,
            line=node.lineno,
            params=[a.arg for a in args[1:]],
            body=translator.stmts(node.body),
            sizes=list(ann.nranks or sizes.get(node.name, [])),
            arg_values=list(ann.args),
            raw_ok_lines=frozenset(ann.raw_ok_lines),
            race_ok_lines=frozenset(ann.race_ok_lines),
            skipped=ann.skip,
            module_consts=consts,
        )
        programs.append(program)
    return programs
