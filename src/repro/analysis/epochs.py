"""Epoch / flush lint over the program tree.

Unlike the cross-rank checkers this lint needs no concrete ``(rank,
size)``: it tracks, per window *variable*, a three-valued epoch state
(``closed`` / ``open`` / ``maybe``) plus a must-dirty set of local
buffers with un-flushed remote reads, and reports only on definite
states.  Any statement outside the modelled fragment degrades the state
to ``maybe`` instead of producing a diagnostic.

Checks:

* ``epoch.no-epoch`` — a plain (non-notified) RMA access on a window
  whose access epoch is definitely closed;
* ``epoch.missing-flush`` — reading a local buffer filled by a remote
  get with no intervening flush / notification edge on any path;
* ``epoch.raw-view`` — a ``mode="raw"`` window view in a program that
  never takes a sanitizer blessing (``ctx.san_acquire``), without a
  ``# protocol: raw-ok`` waiver on the line;
* ``epoch.non-event-yield`` — a plain ``yield`` of a literal, which the
  simulator's event loop rejects at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import ir
from repro.analysis import symbols as sym
from repro.analysis.report import Finding

_OPENERS = frozenset({"win_fence", "win_lock", "win_lock_all",
                      "win_start"})
_CLOSERS = frozenset({"win_fence_end", "win_unlock", "win_unlock_all",
                      "win_complete", "win_free"})
_NOTIFY_EDGES = ir.WAIT_KINDS | ir.POLL_KINDS


@dataclass
class _State:
    #: window variable -> "closed" | "open" | "maybe"
    wins: dict[str, str] = field(default_factory=dict)
    #: buffer variable with un-flushed remote read -> window variable
    dirty: dict[str, str] = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(wins=dict(self.wins), dirty=dict(self.dirty))


def _merge(a: _State, b: _State) -> _State:
    wins: dict[str, str] = {}
    for name in set(a.wins) | set(b.wins):
        left = a.wins.get(name)
        right = b.wins.get(name)
        wins[name] = left if left == right and left is not None \
            else "maybe"
    dirty = {name: win for name, win in a.dirty.items()
             if b.dirty.get(name) == win}
    return _State(wins=wins, dirty=dirty)


def _root(expr: sym.SymExpr | None) -> str | None:
    while isinstance(expr, sym.Sub):
        expr = expr.value
    if isinstance(expr, sym.Name):
        return expr.id
    return None


class _Lint:
    def __init__(self, program: ir.Program):
        self.program = program
        self.findings: list[Finding] = []
        self._keys: set[tuple[str, int]] = set()
        self.has_san = any(op.kind == "san_acquire"
                           for op in program.walk_ops())

    def _emit(self, check: str, line: int, message: str) -> None:
        key = (check, line)
        if key in self._keys:
            return
        self._keys.add(key)
        self.findings.append(Finding(
            check=check, path=self.program.path, line=line,
            program=self.program.qualname, message=message))

    # -- walk ------------------------------------------------------------
    def run(self) -> list[Finding]:
        self._stmts(self.program.body, _State())
        return self.findings

    def _stmts(self, stmts: list[ir.Stmt], state: _State) -> _State:
        for stmt in stmts:
            state = self._stmt(stmt, state)
        return state

    def _stmt(self, stmt: ir.Stmt, state: _State) -> _State:
        if isinstance(stmt, ir.Assign):
            if isinstance(stmt.value, ir.Op):
                self._op(stmt.value, state)
                self._bind(stmt.target, stmt.value, state)
            else:
                self._bind(stmt.target, None, state)
            return state
        if isinstance(stmt, ir.ExprStmt):
            if isinstance(stmt.value, ir.Op):
                self._op(stmt.value, state)
            return state
        if isinstance(stmt, ir.If):
            then_state = self._stmts(stmt.body, state.copy())
            else_state = self._stmts(stmt.orelse, state.copy())
            return _merge(then_state, else_state)
        if isinstance(stmt, (ir.For, ir.While)):
            once = self._stmts(stmt.body, state.copy())
            merged = _merge(state, once)
            twice = self._stmts(stmt.body, merged.copy())
            return _merge(merged, twice)
        if isinstance(stmt, ir.YieldRaw):
            if stmt.is_literal:
                self._emit(
                    "epoch.non-event-yield", stmt.line,
                    f"plain `yield {stmt.value.pretty()}` is not a "
                    f"simulator event; use `yield from` on an API call")
            return state
        if isinstance(stmt, ir.Unknown):
            for name in state.wins:
                state.wins[name] = "maybe"
            state.dirty.clear()
            return state
        return state          # Return/Break/Continue: linear approximation

    def _bind(self, target: sym.SymExpr, value: ir.Op | None,
              state: _State) -> None:
        names: list[str] = []
        if isinstance(target, sym.Name):
            names = [target.id]
        elif isinstance(target, sym.TupleExpr):
            names = [t.id for t in target.items
                     if isinstance(t, sym.Name)]
        for name in names:
            state.wins.pop(name, None)
            state.dirty.pop(name, None)
        if value is not None and value.kind == "win_allocate" and \
                isinstance(target, sym.Name):
            state.wins[target.id] = "closed"

    def _op(self, op: ir.Op, state: _State) -> None:
        kind = op.kind
        win = _root(op.args.get("win"))

        if kind == "win_view" and op.mode == "raw":
            if op.line not in self.program.raw_ok_lines and \
                    not self.has_san:
                self._emit(
                    "epoch.raw-view", op.line,
                    'mode="raw" view without a ctx.san_acquire blessing '
                    "(add one, or waive with `# protocol: raw-ok`)")
            return
        if kind == "region_read":
            base = _root(op.args.get("base"))
            if base is not None and base in state.dirty:
                self._emit(
                    "epoch.missing-flush", op.line,
                    f"local read of `{base}` after a remote get with no "
                    f"intervening flush or notification wait")
            return

        if kind in ir.EPOCH_ACCESS_KINDS:
            if win is not None and state.wins.get(win) == "closed":
                self._emit(
                    "epoch.no-epoch", op.line,
                    f"{kind.removeprefix('win_')} on window `{win}` "
                    f"outside any access epoch (fence/lock/start)")
        if kind in ("win_get", "get_notify", "get_typed"):
            buf = _root(op.args.get("buf"))
            if buf is not None:
                state.dirty[buf] = win or "?"

        if kind in _OPENERS and win is not None and win in state.wins:
            state.wins[win] = "open"
        elif kind in _CLOSERS and win is not None and win in state.wins:
            state.wins[win] = "closed"

        if kind in ir.COMPLETION_KINDS:
            if win is None:
                state.dirty.clear()
            else:
                for name in [n for n, w in state.dirty.items()
                             if w in (win, "?")]:
                    del state.dirty[name]
        elif kind in _NOTIFY_EDGES:
            state.dirty.clear()


def lint_epochs(program: ir.Program) -> list[Finding]:
    return _Lint(program).run()
