"""Instantiate a symbolic program for a concrete ``(rank, size)`` pair.

The cross-rank checkers (notification budget, deadlock) need concrete
peer ranks and tags.  This module walks the IR with a small abstract
interpreter: assignments, arithmetic, branches and loops with statically
known bounds execute for real; anything unresolvable aborts the trace
and marks it *inexact*, which silences the cross-rank checks for that
program — the verifier reports nothing rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.analysis import ir
from repro.analysis import symbols as sym
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL

#: loop-iteration cap: beyond this the trace is declared inexact
MAX_ITERATIONS = 4096

_req_ids = count()


@dataclass(frozen=True)
class WindowVal:
    """A window allocated by the n-th collective ``win_allocate``.

    Window identity is positional: the n-th allocation on every rank is
    the same window, which is how the simulator assigns window ids for
    collectively allocated windows.
    """

    index: int


@dataclass(frozen=True)
class SpaceVal:
    """A GASPI notification space attached to a window."""

    win: WindowVal
    num: int


@dataclass(frozen=True)
class AllocVal:
    """A local region from the n-th ``ctx.alloc`` on this rank.

    ``nbytes`` is -1 when the allocation size is not statically known.
    """

    rank: int
    index: int
    nbytes: int = -1


@dataclass(frozen=True)
class ReqVal:
    """A persistent notification/counter request."""

    uid: int
    mech: str                   # "na" | "counter" | "p2p_send" | "p2p_recv"
    win: WindowVal | None
    source: int
    tag: int
    expected: int
    line: int


@dataclass
class COp:
    """One concrete trace event."""

    kind: str                   # "post" | "wait" | "recv" | "barrier" | ...
    mech: str = ""              # "na" | "counter" | "gaspi" | "p2p"
    line: int = 0
    win: WindowVal | None = None
    target: int | None = None   # posts: destination rank
    source: int = ANY_SOURCE    # posts: origin; waits: request source
    tag: int = ANY_TAG
    expected: int = 1
    req: ReqVal | None = None
    # -- race-checker payload geometry (defaults = not applicable) -------
    #: transferred bytes (-1 when not statically known)
    nbytes: int = -1
    #: target displacement (posts) / view byte offset (views)
    disp: int = 0
    #: data direction: "put" | "get" | "acc" for posts, "r" | "w" for views
    rma: str = ""
    #: local region a get delivers into / a view reads from
    buf: AllocVal | None = None
    #: byte offset into ``buf``
    buf_off: int = 0
    #: flush_local (completes only the origin-side buffers)
    local: bool = False


@dataclass
class Trace:
    """The concrete event sequence of one rank."""

    rank: int
    size: int
    ops: list[COp] = field(default_factory=list)
    exact: bool = True
    #: reason the trace went inexact, for diagnostics
    reason: str = ""
    #: nondeterministic consumption (test/probe/waitany) present
    has_poll: bool = False
    #: PSCW / lock epochs present (deadlock replay skips these)
    has_pscw: bool = False
    #: race geometry fully resolved (False silences only the race check;
    #: budget/deadlock/epoch checks keep their own ``exact`` flag)
    race_exact: bool = True
    race_reason: str = ""
    #: window index -> (payload nbytes or -1, disp_unit) on this rank
    win_meta: dict[int, tuple[int, int]] = field(default_factory=dict)


class _Inexact(Exception):
    def __init__(self, reason: str):
        self.reason = reason


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    pass


#: op kinds with no effect on the cross-rank checkers
_SILENT_KINDS = frozenset({
    "nop", "na_request_free", "counter_request_free",
})

#: ops whose byte-level effects the race checker does not model;
#: their presence downgrades only the race check, nothing else
_RACE_BAIL_KINDS = frozenset({
    "san_acquire", "win_fetch_and_op", "win_compare_and_swap",
    "put_typed", "get_typed",
    "win_lock", "win_unlock", "win_lock_all", "win_unlock_all",
})

#: origin-side completion ops -> (flush-local-only, flushes-all-targets)
_FLUSH_KINDS = {
    "win_flush": (False, False),
    "win_flush_local": (True, False),
    "win_flush_all": (False, True),
    "win_flush_local_all": (True, True),
}

_PSCW_KINDS = frozenset({
    "win_post", "win_start", "win_complete", "win_wait_pscw",
})

#: polling / nondeterministic-selection ops: budget and deadlock cannot
#: attribute consumption, so their presence disables both checks
_POLL_LIKE = frozenset({
    "na_test", "na_testany", "na_probe", "na_waitany", "counter_test",
    "comm_probe", "comm_waitany",
})


class _Interp:
    def __init__(self, program: ir.Program, rank: int, size: int):
        self.program = program
        self.trace = Trace(rank=rank, size=size)
        self.env = sym.Env(rank=rank, size=size,
                           globals_=program.module_consts)
        for index, name in enumerate(program.params):
            if index < len(program.arg_values):
                self.env.store(name, program.arg_values[index])
            else:
                self.env.store(name, sym.UNKNOWN)
        self.win_index = 0
        self.alloc_index = 0
        self.steps = 0

    # -- helpers ---------------------------------------------------------
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > 250_000:
            raise _Inexact("trace too long")

    def _int(self, op: ir.Op, role: str, default: int | None = None) -> int:
        expr = op.args.get(role)
        if expr is None:
            if default is None:
                raise _Inexact(f"{op.kind}: missing {role}")
            return default
        value = expr.evaluate(self.env)
        if isinstance(value, bool) or not isinstance(value, int):
            raise _Inexact(f"{op.kind} line {op.line}: "
                           f"unresolved {role}")
        return value

    def _win(self, op: ir.Op) -> WindowVal:
        expr = op.args.get("win")
        if expr is None:
            raise _Inexact(f"{op.kind}: missing window")
        value = expr.evaluate(self.env)
        if isinstance(value, SpaceVal):
            return value.win
        if not isinstance(value, WindowVal):
            raise _Inexact(f"{op.kind} line {op.line}: unresolved window")
        return value

    # -- race-geometry helpers (never raise: they only downgrade the
    # race check, keeping budget/deadlock coverage untouched) -----------
    def _race_bail(self, reason: str) -> None:
        if self.trace.race_exact:
            self.trace.race_exact = False
            self.trace.race_reason = reason

    def _opt_int(self, op: ir.Op, role: str,
                 default: int | None) -> int | None:
        """Resolve an int role; missing -> ``default``, unresolved ->
        ``None`` after downgrading the race check."""
        expr = op.args.get(role)
        if expr is None:
            return default
        value = expr.evaluate(self.env)
        if value is None:
            return default             # explicit None keyword = default
        if isinstance(value, bool) or not isinstance(value, int):
            self._race_bail(f"line {op.line}: unresolved {role}")
            return None
        return value

    def _try_win(self, op: ir.Op) -> WindowVal | None:
        expr = op.args.get("win")
        value = expr.evaluate(self.env) if expr is not None else None
        if isinstance(value, SpaceVal):
            return value.win
        if isinstance(value, WindowVal):
            return value
        self._race_bail(f"line {op.line}: unresolved window")
        return None

    def _record(self, cop: COp) -> None:
        self.trace.ops.append(cop)

    # -- statement walk --------------------------------------------------
    def run(self) -> Trace:
        try:
            self._stmts(self.program.body)
        except _Return:
            pass
        except _Inexact as exc:
            self.trace.exact = False
            self.trace.reason = exc.reason
        except RecursionError:               # pragma: no cover - defensive
            self.trace.exact = False
            self.trace.reason = "recursion limit"
        return self.trace

    def _stmts(self, stmts: list[ir.Stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ir.Stmt) -> None:
        self._tick()
        if isinstance(stmt, ir.Assign):
            if isinstance(stmt.value, ir.Op):
                result = self._op(stmt.value)
            else:
                result = stmt.value.evaluate(self.env)
            self._bind(stmt.target, result, stmt.line)
        elif isinstance(stmt, ir.ExprStmt):
            if isinstance(stmt.value, ir.Op):
                self._op(stmt.value)
        elif isinstance(stmt, ir.If):
            cond = stmt.cond.evaluate(self.env)
            if not sym.is_known(cond):
                raise _Inexact(f"line {stmt.line}: unresolved branch")
            self._stmts(stmt.body if cond else stmt.orelse)
        elif isinstance(stmt, ir.For):
            self._for(stmt)
        elif isinstance(stmt, ir.While):
            self._while(stmt)
        elif isinstance(stmt, ir.Return):
            raise _Return
        elif isinstance(stmt, ir.Break):
            raise _Break
        elif isinstance(stmt, ir.Continue):
            raise _Continue
        elif isinstance(stmt, ir.YieldRaw):
            pass
        elif isinstance(stmt, ir.Unknown):
            raise _Inexact(f"line {stmt.line}: {stmt.reason}")

    def _for(self, stmt: ir.For) -> None:
        iterable = stmt.iter.evaluate(self.env)
        if not sym.is_known(iterable) or \
                not isinstance(iterable, (list, tuple)):
            raise _Inexact(f"line {stmt.line}: unresolved loop bounds")
        if len(iterable) > MAX_ITERATIONS:
            raise _Inexact(f"line {stmt.line}: loop too long")
        for item in iterable:
            self._bind(stmt.target, item, stmt.line)
            try:
                self._stmts(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    def _while(self, stmt: ir.While) -> None:
        for _ in range(MAX_ITERATIONS):
            cond = stmt.cond.evaluate(self.env)
            if not sym.is_known(cond):
                raise _Inexact(f"line {stmt.line}: unresolved while")
            if not cond:
                return
            try:
                self._stmts(stmt.body)
            except _Break:
                return
            except _Continue:
                continue
        raise _Inexact(f"line {stmt.line}: while cap exceeded")

    def _bind(self, target: sym.SymExpr, value: object,
              line: int) -> None:
        if isinstance(target, sym.Name):
            self.env.store(target.id, value)
        elif isinstance(target, sym.TupleExpr):
            if sym.is_known(value) and \
                    isinstance(value, (list, tuple)) and \
                    len(value) == len(target.items):
                for part, item in zip(target.items, value):
                    self._bind(part, item, line)
            else:
                for part in target.items:
                    self._bind(part, sym.UNKNOWN, line)
        elif isinstance(target, sym.Sub):
            base = target.value.evaluate(self.env)
            index = target.index.evaluate(self.env)
            if sym.is_known(base) and sym.is_known(index) and \
                    isinstance(base, (list, dict)):
                try:
                    base[index] = value          # type: ignore[index]
                    return
                except Exception:
                    pass
            # cannot locate the cell: invalidate the whole container
            if isinstance(target.value, sym.Name):
                self.env.store(target.value.id, sym.UNKNOWN)

    # -- op execution ----------------------------------------------------
    def _op(self, op: ir.Op) -> object:
        kind = op.kind
        if kind in _SILENT_KINDS:
            return sym.UNKNOWN
        if kind in _RACE_BAIL_KINDS:
            self._race_bail(f"line {op.line}: unmodelled {kind}")
            return sym.UNKNOWN
        if kind in _PSCW_KINDS:
            self.trace.has_pscw = True
            return sym.UNKNOWN
        if kind in _POLL_LIKE:
            self.trace.has_poll = True
            # testany/waitany return (index, status)-ish tuples
            return sym.UNKNOWN
        if kind == "unknown":
            raise _Inexact(f"line {op.line}: unrecognized call")
        if kind == "alloc":
            nbytes = self._opt_int(op, "size", None)
            val = AllocVal(self.trace.rank, self.alloc_index,
                           -1 if nbytes is None else nbytes)
            self.alloc_index += 1
            return val
        if kind == "win_allocate":
            win = WindowVal(self.win_index)
            self.win_index += 1
            size = self._opt_int(op, "size", None)
            du = self._opt_int(op, "disp_unit", 1)
            if size is None:
                self._race_bail(f"line {op.line}: unresolved window size")
            self.trace.win_meta[win.index] = (
                -1 if size is None else size, 1 if du is None else du)
            self._record(COp(kind="walloc", line=op.line, win=win))
            return win
        if kind == "win_free":
            self._record(COp(kind="wfree", line=op.line,
                             win=self._try_win(op)))
            return sym.UNKNOWN
        if kind in _FLUSH_KINDS:
            local, all_targets = _FLUSH_KINDS[kind]
            target = None if all_targets else self._opt_int(
                op, "target", None)
            if not all_targets and target is None:
                self._race_bail(f"line {op.line}: unresolved flush target")
            self._record(COp(kind="flush", line=op.line,
                             win=self._try_win(op), target=target,
                             local=local))
            return sym.UNKNOWN
        if kind in ("win_view", "region_read"):
            self._view(op)
            return sym.UNKNOWN
        if kind in ("win_put", "win_get", "win_accumulate"):
            self._plain_rma(op)
            return sym.UNKNOWN
        if kind == "barrier":
            self._record(COp(kind="barrier", line=op.line))
            return sym.UNKNOWN
        if kind == "collective":
            # bcast/reduce synchronize with the root only — not a full
            # all-to-all join, so the race replay must not treat it as one
            self._record(COp(kind="barrier", mech="coll", line=op.line))
            return sym.UNKNOWN
        if kind in ("win_fence", "win_fence_end"):
            # fence = flush_all + barrier on every rank
            self._record(COp(kind="flush", line=op.line,
                             win=self._try_win(op)))
            self._record(COp(kind="barrier", line=op.line))
            return sym.UNKNOWN
        if kind == "notify_init":
            return self._make_req(op, "na")
        if kind == "counter_init":
            return self._make_req(op, "counter")
        if kind in ("na_start", "counter_start"):
            self._req_of(op)
            return None
        if kind in ("na_wait", "counter_wait"):
            req = self._req_of(op)
            self._record(COp(kind="wait", mech=req.mech, line=op.line,
                             win=req.win, source=req.source, tag=req.tag,
                             expected=req.expected, req=req))
            return sym.UNKNOWN
        if kind in ("na_waitall", "comm_waitall"):
            reqs = self._reqs_of(op)
            for req in reqs:
                if req.mech == "p2p_send":
                    continue
                if req.mech == "p2p_recv":
                    self._record(COp(kind="recv", mech="p2p",
                                     line=op.line, source=req.source,
                                     tag=req.tag, req=req))
                else:
                    self._record(COp(kind="wait", mech=req.mech,
                                     line=op.line, win=req.win,
                                     source=req.source, tag=req.tag,
                                     expected=req.expected, req=req))
            return sym.UNKNOWN
        if kind in ("put_notify", "accumulate_notify", "get_notify",
                    "flush_notify", "put_counted"):
            mech = "counter" if kind == "put_counted" else "na"
            target = self._int(op, "target")
            if target == PROC_NULL:
                return sym.UNKNOWN
            self._check_peer(op, target)
            cop = COp(kind="post", mech=mech, line=op.line,
                      win=self._win(op), target=target,
                      source=self.trace.rank,
                      tag=self._int(op, "tag", 0))
            self._post_geometry(cop, op, kind)
            self._record(cop)
            return sym.UNKNOWN
        if kind == "gaspi_init":
            win = self._win(op)
            num = self._int(op, "num", 1)
            return SpaceVal(win=win, num=num)
        if kind == "waitsome":
            expr = op.args.get("space")
            space = expr.evaluate(self.env) if expr is not None else None
            if not isinstance(space, SpaceVal):
                raise _Inexact(f"line {op.line}: unresolved space")
            self._record(COp(kind="wait", mech="gaspi", line=op.line,
                             win=space.win, source=ANY_SOURCE,
                             tag=ANY_TAG, expected=1))
            return sym.UNKNOWN
        if kind == "write_notify":
            target = self._int(op, "target")
            if target == PROC_NULL:
                return sym.UNKNOWN
            self._check_peer(op, target)
            cop = COp(kind="post", mech="gaspi", line=op.line,
                      win=self._win(op), target=target,
                      source=self.trace.rank,
                      tag=self._int(op, "slot", 0))
            self._post_geometry(cop, op, "write_notify")
            self._record(cop)
            return sym.UNKNOWN
        if kind == "send":
            target = self._int(op, "target")
            if target == PROC_NULL:
                return sym.UNKNOWN
            self._check_peer(op, target)
            self._record(COp(kind="send", mech="p2p", line=op.line,
                             target=target, source=self.trace.rank,
                             tag=self._int(op, "tag", 0)))
            return sym.UNKNOWN
        if kind == "isend":
            target = self._int(op, "target")
            if target != PROC_NULL:
                self._check_peer(op, target)
                self._record(COp(kind="send", mech="p2p", line=op.line,
                                 target=target, source=self.trace.rank,
                                 tag=self._int(op, "tag", 0)))
            return ReqVal(uid=next(_req_ids), mech="p2p_send", win=None,
                          source=self.trace.rank,
                          tag=self._int(op, "tag", 0), expected=1,
                          line=op.line)
        if kind == "recv":
            source = self._int(op, "source", ANY_SOURCE)
            if source == PROC_NULL:
                return sym.UNKNOWN
            self._record(COp(kind="recv", mech="p2p", line=op.line,
                             source=source,
                             tag=self._int(op, "tag", ANY_TAG)))
            return sym.UNKNOWN
        if kind == "irecv":
            return ReqVal(uid=next(_req_ids), mech="p2p_recv", win=None,
                          source=self._int(op, "source", ANY_SOURCE),
                          tag=self._int(op, "tag", ANY_TAG), expected=1,
                          line=op.line)
        if kind == "sendrecv":
            target = self._int(op, "target")
            if target != PROC_NULL:
                self._check_peer(op, target)
                self._record(COp(kind="send", mech="p2p", line=op.line,
                                 target=target, source=self.trace.rank,
                                 tag=self._int(op, "sendtag", 0)))
            source = self._int(op, "source", ANY_SOURCE)
            if source != PROC_NULL:
                self._record(COp(kind="recv", mech="p2p", line=op.line,
                                 source=source,
                                 tag=self._int(op, "tag", ANY_TAG)))
            return sym.UNKNOWN
        if kind == "comm_wait":
            req = self._req_of(op)
            if req.mech == "p2p_recv":
                self._record(COp(kind="recv", mech="p2p", line=op.line,
                                 source=req.source, tag=req.tag,
                                 req=req))
            return sym.UNKNOWN
        if kind in ("list_append", "list_extend"):
            self._list_mutate(op)
            return None
        # anything else is outside the modelled fragment
        raise _Inexact(f"line {op.line}: unmodelled op {kind}")

    def _post_geometry(self, cop: COp, op: ir.Op, kind: str) -> None:
        """Resolve the byte range a post touches at its target (and, for
        gets, the local buffer its delivery writes)."""
        if kind == "flush_notify":
            cop.rma = "put"
            cop.nbytes = 0
            return
        disp = self._opt_int(op, "disp", 0)
        cop.disp = 0 if disp is None else disp
        if kind == "get_notify":
            cop.rma = "get"
            buf_expr = op.args.get("buf")
            buf = (buf_expr.evaluate(self.env)
                   if buf_expr is not None else None)
            if isinstance(buf, AllocVal):
                cop.buf = buf
            else:
                self._race_bail(f"line {op.line}: unresolved get buffer")
            off = self._opt_int(op, "local_offset", 0)
            cop.buf_off = 0 if off is None else off
            nbytes = self._opt_int(op, "nbytes", None)
            if nbytes is None:
                if cop.buf is not None and cop.buf.nbytes >= 0:
                    cop.nbytes = cop.buf.nbytes - cop.buf_off
                else:
                    self._race_bail(
                        f"line {op.line}: unresolved get nbytes")
            else:
                cop.nbytes = nbytes
            return
        cop.rma = "acc" if kind == "accumulate_notify" else "put"
        cop.nbytes = self._data_nbytes(op)

    def _data_nbytes(self, op: ir.Op) -> int:
        data_expr = op.args.get("data")
        if data_expr is not None:
            value = data_expr.evaluate(self.env)
            if isinstance(value, sym.ArrayVal):
                return value.nbytes
            self._race_bail(f"line {op.line}: unresolved payload size")
            return -1
        # foMPI-style (count, datatype) payloads
        count = self._opt_int(op, "count", None)
        dtype_expr = op.args.get("dtype")
        dtype = (dtype_expr.evaluate(self.env)
                 if dtype_expr is not None else None)
        if count is not None and isinstance(dtype, sym.DTypeVal):
            return count * dtype.itemsize
        self._race_bail(f"line {op.line}: unresolved payload size")
        return -1

    def _view(self, op: ir.Op) -> None:
        mode = op.mode or "rw"
        if mode == "raw":
            return                      # raw views are the raw-view lint's job
        base_expr = op.args.get("base")
        base = (base_expr.evaluate(self.env)
                if base_expr is not None else None)
        win: WindowVal | None = None
        buf: AllocVal | None = None
        seg_nbytes = -1
        if isinstance(base, WindowVal):
            win = base
            seg_nbytes = self.trace.win_meta.get(base.index, (-1, 1))[0]
        elif isinstance(base, AllocVal):
            buf = base
            seg_nbytes = base.nbytes
        else:
            self._race_bail(f"line {op.line}: unresolved view base")
            return
        itemsize = 1                    # np.uint8 default
        dtype_expr = op.args.get("dtype")
        if dtype_expr is not None:
            dtype = dtype_expr.evaluate(self.env)
            if isinstance(dtype, sym.DTypeVal):
                itemsize = dtype.itemsize
            elif dtype is not None:
                self._race_bail(f"line {op.line}: unresolved view dtype")
                return
        offset = self._opt_int(op, "offset", 0)
        if offset is None:
            return
        count = self._opt_int(op, "count", None)
        if count is None:
            if seg_nbytes < 0:
                self._race_bail(f"line {op.line}: view on unsized segment")
                return
            length = max(0, ((seg_nbytes - offset) // itemsize) * itemsize)
        else:
            length = count * itemsize
        self._record(COp(kind="view", line=op.line, win=win, buf=buf,
                         disp=offset, nbytes=length,
                         rma="w" if mode == "rw" else "r"))

    def _plain_rma(self, op: ir.Op) -> None:
        """Non-notified window accesses (win.put/get/accumulate)."""
        target = self._opt_int(op, "target", None)
        if target is None or target == PROC_NULL:
            return
        if not 0 <= target < self.trace.size:
            self._race_bail(f"line {op.line}: peer {target} out of range")
            return
        win = self._try_win(op)
        if win is None:
            return
        cop = COp(kind="rma", line=op.line, win=win, target=target,
                  source=self.trace.rank)
        geometry_as = {"win_get": "get_notify",
                       "win_accumulate": "accumulate_notify"}
        self._post_geometry(cop, op, geometry_as.get(op.kind, "put_notify"))
        self._record(cop)

    def _make_req(self, op: ir.Op, mech: str) -> ReqVal:
        source = self._int(op, "source", ANY_SOURCE)
        tag = self._int(op, "tag", ANY_TAG)
        expected = self._int(op, "expected", 1)
        if expected < 0:
            raise _Inexact(f"line {op.line}: negative expected_count")
        if source not in (ANY_SOURCE,) and \
                not 0 <= source < self.trace.size:
            raise _Inexact(f"line {op.line}: source {source} out of "
                           f"range for size {self.trace.size}")
        return ReqVal(uid=next(_req_ids), mech=mech, win=self._win(op),
                      source=source, tag=tag, expected=expected,
                      line=op.line)

    def _req_of(self, op: ir.Op) -> ReqVal:
        expr = op.args.get("req")
        value = expr.evaluate(self.env) if expr is not None else None
        if not isinstance(value, ReqVal):
            raise _Inexact(f"{op.kind} line {op.line}: unresolved request")
        return value

    def _reqs_of(self, op: ir.Op) -> list[ReqVal]:
        expr = op.args.get("reqs")
        value = expr.evaluate(self.env) if expr is not None else None
        if not sym.is_known(value) or \
                not isinstance(value, (list, tuple)) or \
                not all(isinstance(v, ReqVal) for v in value):
            raise _Inexact(f"{op.kind} line {op.line}: unresolved "
                           f"request list")
        return list(value)

    def _check_peer(self, op: ir.Op, peer: int) -> None:
        if not 0 <= peer < self.trace.size:
            raise _Inexact(f"line {op.line}: peer {peer} out of range "
                           f"for size {self.trace.size}")

    def _list_mutate(self, op: ir.Op) -> None:
        base_expr = op.args.get("base")
        item_expr = op.args.get("item")
        if base_expr is None or item_expr is None:
            return
        base = base_expr.evaluate(self.env)
        item = item_expr.evaluate(self.env)
        if not isinstance(base, list):
            if isinstance(base_expr, sym.Name):
                self.env.store(base_expr.id, sym.UNKNOWN)
            return
        if op.kind == "list_append":
            base.append(item)
        elif sym.is_known(item) and isinstance(item, (list, tuple)):
            base.extend(item)
        elif isinstance(base_expr, sym.Name):
            self.env.store(base_expr.id, sym.UNKNOWN)


def instantiate(program: ir.Program, size: int) -> list[Trace]:
    """Run ``program`` abstractly for every rank of a ``size``-rank job."""
    return [_Interp(program, rank, size).run() for rank in range(size)]
