"""Pytest integration for the static protocol verifier.

Registered from the repository's root ``conftest.py`` via
``pytest_plugins``.  Passing ``--analyze`` runs the verifier — budget,
deadlock, epoch lint, and the static race checker — over the standard
trees (``src/repro/apps``, ``examples``, ``benchmarks``) before
collection and aborts the session on any finding — the local
equivalent of the CI ``analyze`` job.
"""

from __future__ import annotations

import pytest

#: trees the opt-in session gate verifies, relative to the rootdir
DEFAULT_TREES = ("src/repro/apps", "examples", "benchmarks")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--analyze", action="store_true", default=False,
        help="run the repro.analysis static protocol verifier over "
             "src/repro/apps, examples and benchmarks before the tests "
             "and fail the session on any finding")


def pytest_sessionstart(session: pytest.Session) -> None:
    if not session.config.getoption("--analyze"):
        return
    from repro.analysis import analyze_paths

    root = session.config.rootpath
    trees = [str(root / tree) for tree in DEFAULT_TREES
             if (root / tree).exists()]
    findings = analyze_paths(trees)
    if findings:
        lines = "\n".join(f.format() for f in findings)
        pytest.exit(
            f"repro.analysis found {len(findings)} protocol "
            f"finding(s):\n{lines}", returncode=1)
