"""Static deadlock detection over the symbolic wait-for graph.

The concrete rank traces are replayed under a maximal-progress abstract
scheduler: posts and sends complete eagerly (they never block in the
simulator), blocking waits consume matching notifications in arrival
order (the engine's own matching order), and barriers/fences release
when every unfinished rank has reached one.  When the replay reaches a
state where no rank can advance, the blocked ranks' wait-for edges are
examined; a cycle is a definite deadlock and is reported with the full
blocking chain.  Rank starvation *without* a cycle (a wait whose poster
already terminated) is left to the budget checker, so each defect gets
exactly one diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.instantiate import COp, Trace
from repro.analysis.ir import Program
from repro.analysis.report import Finding
from repro.mpi.constants import ANY_SOURCE, ANY_TAG


@dataclass
class _RankState:
    trace: Trace
    index: int = 0
    #: notifications delivered to this rank: (mech, win, source, tag)
    inbox: list[tuple[str, object, int, int]] = field(
        default_factory=list)
    #: sends addressed to this rank: (source, tag)
    sends: list[tuple[int, int]] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.index >= len(self.trace.ops)

    @property
    def current(self) -> COp | None:
        if self.finished:
            return None
        return self.trace.ops[self.index]


def _matches(entry: tuple[str, object, int, int], op: COp) -> bool:
    mech, win, source, tag = entry
    return (mech == op.mech
            and (op.mech == "p2p" or win == op.win)
            and op.source in (ANY_SOURCE, source)
            and op.tag in (ANY_TAG, tag))


def _try_wait(state: _RankState, op: COp) -> bool:
    hits = [i for i, entry in enumerate(state.inbox)
            if _matches(entry, op)]
    if len(hits) < op.expected:
        return False
    for i in reversed(hits[:op.expected]):
        del state.inbox[i]
    return True


def _try_recv(state: _RankState, op: COp) -> bool:
    for i, (source, tag) in enumerate(state.sends):
        if op.source in (ANY_SOURCE, source) and \
                op.tag in (ANY_TAG, tag):
            del state.sends[i]
            return True
    return False


def _replay(traces: list[Trace]) -> list[_RankState]:
    states = [_RankState(trace=t) for t in traces]
    while True:
        progressed = False
        for state in states:
            while not state.finished:
                op = state.trace.ops[state.index]
                if op.kind == "post":
                    assert op.target is not None
                    states[op.target].inbox.append(
                        (op.mech, op.win, op.source, op.tag))
                elif op.kind == "send":
                    assert op.target is not None
                    states[op.target].sends.append((op.source, op.tag))
                elif op.kind == "wait":
                    if not _try_wait(state, op):
                        break
                elif op.kind == "recv":
                    if not _try_recv(state, op):
                        break
                elif op.kind == "barrier":
                    break
                state.index += 1
                progressed = True
        # collective release: every unfinished rank parked at a barrier
        waiting = [s for s in states if not s.finished]
        if waiting and all(s.current is not None
                           and s.current.kind == "barrier"
                           for s in waiting):
            for s in waiting:
                s.index += 1
            progressed = True
        if not progressed:
            return states


def _has_supply(states: list[_RankState], rank: int) -> bool:
    """Whether anything in the whole trace set could ever satisfy the
    op ``rank`` is blocked on.

    A wait with no compatible supply anywhere is *starvation* — that is
    the budget checker's finding, and counting it into a cycle would
    double-report the same defect as a deadlock.
    """
    op = states[rank].current
    if op is None:
        return False
    if op.kind == "barrier":
        return True
    for state in states:
        for other in state.trace.ops:
            if other.kind == "post" and op.kind == "wait" and \
                    other.target == rank and \
                    _matches((other.mech, other.win, other.source,
                              other.tag), op):
                return True
            if other.kind == "send" and op.kind == "recv" and \
                    other.target == rank and \
                    op.source in (ANY_SOURCE, other.source) and \
                    op.tag in (ANY_TAG, other.tag):
                return True
    return False


def _wait_edges(states: list[_RankState], rank: int) -> list[int]:
    """Ranks that could still unblock ``rank``."""
    state = states[rank]
    op = state.current
    if op is None:
        return []
    blocked = {i for i, s in enumerate(states) if not s.finished}
    if op.kind == "barrier":
        return [i for i in blocked
                if i != rank and (states[i].current is None
                                  or states[i].current.kind != "barrier")]
    if op.kind in ("wait", "recv"):
        if op.source == ANY_SOURCE:
            return [i for i in blocked if i != rank]
        return [op.source] if op.source in blocked and \
            op.source != rank else []
    return []                                # pragma: no cover - defensive


def _find_cycle(edges: dict[int, list[int]]) -> list[int] | None:
    color: dict[int, int] = {}
    stack: list[int] = []

    def dfs(node: int) -> list[int] | None:
        color[node] = 1
        stack.append(node)
        for peer in edges.get(node, []):
            if color.get(peer, 0) == 1:
                return stack[stack.index(peer):]
            if color.get(peer, 0) == 0:
                cycle = dfs(peer)
                if cycle is not None:
                    return cycle
        color[node] = 2
        stack.pop()
        return None

    for node in edges:
        if color.get(node, 0) == 0:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def check_deadlock(program: Program, size: int,
                   traces: list[Trace]) -> list[Finding]:
    if any(not t.exact for t in traces) or \
            any(t.has_poll for t in traces) or \
            any(t.has_pscw for t in traces):
        return []
    states = _replay(traces)
    blocked = [i for i, s in enumerate(states)
               if not s.finished and _has_supply(states, i)]
    if not blocked:
        return []
    edges = {rank: [peer for peer in _wait_edges(states, rank)
                    if peer in blocked] for rank in blocked}
    cycle = _find_cycle(edges)
    if cycle is None:
        return []                 # pure starvation: budget's domain
    chain_parts = []
    for rank in cycle:
        op = states[rank].current
        assert op is not None
        chain_parts.append(f"rank {rank} blocked at line {op.line} "
                           f"({_describe(op)})")
    chain = " -> ".join(chain_parts) + f" -> rank {cycle[0]}"
    first = states[cycle[0]].current
    assert first is not None
    return [Finding(
        check="deadlock.wait-cycle", path=program.path,
        line=first.line, program=program.qualname,
        message=f"wait-for cycle: {chain}",
        ranks=tuple(sorted(cycle)), size=size)]


def _describe(op: COp) -> str:
    if op.kind == "barrier":
        return "barrier"
    src = "ANY_SOURCE" if op.source == ANY_SOURCE else str(op.source)
    tag = "ANY_TAG" if op.tag == ANY_TAG else str(op.tag)
    verb = "recv" if op.kind == "recv" else f"{op.mech} wait"
    return f"{verb} source={src} tag={tag}"
