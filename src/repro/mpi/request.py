"""Request objects for nonblocking point-to-point operations."""

from __future__ import annotations

import itertools

import numpy as np

from repro.mpi.status import Status
from repro.sim.engine import Engine, Event

_req_ids = itertools.count(1)


class Request:
    """A nonblocking operation handle; completed via the progress engine."""

    __slots__ = ("req_id", "engine", "done", "status", "completion")

    def __init__(self, engine: Engine):
        self.req_id = next(_req_ids)
        self.engine = engine
        self.done = False
        self.status: Status | None = None
        self.completion: Event = Event(engine, "req")

    def complete(self, status: Status | None = None) -> None:
        if self.done:
            return
        self.done = True
        self.status = status or Status()
        if not self.completion.triggered:
            self.completion.succeed(self.status)


class SendRequest(Request):
    """Tracks an in-flight send (eager or rendezvous)."""

    __slots__ = ("dest", "tag", "nbytes", "data", "protocol", "rts_acked")

    def __init__(self, engine: Engine, dest: int, tag: int,
                 data: np.ndarray, protocol: str):
        super().__init__(engine)
        self.dest = dest
        self.tag = tag
        self.data = data
        self.nbytes = int(data.nbytes)
        self.protocol = protocol      # "eager" | "rndv"
        self.rts_acked = False


class RecvRequest(Request):
    """A posted receive awaiting a match."""

    __slots__ = ("buf", "source", "tag", "context", "matched_from",
                 "matched_tag")

    def __init__(self, engine: Engine, buf: np.ndarray, source: int,
                 tag: int, context: int = 0):
        super().__init__(engine)
        if not isinstance(buf, np.ndarray):
            raise TypeError("receive buffer must be a numpy array")
        self.buf = buf
        self.source = source
        self.tag = tag
        self.context = context
        self.matched_from: int | None = None
        self.matched_tag: int | None = None

    def matches(self, source: int, tag: int, context: int = 0) -> bool:
        from repro.mpi.constants import ANY_SOURCE, ANY_TAG
        if context != self.context:
            return False
        return ((self.source == ANY_SOURCE or self.source == source)
                and (self.tag == ANY_TAG or self.tag == tag))
