"""Wildcards and sentinels, mirroring the MPI constants the paper's
interface relies on (``MPI_ANY_SOURCE``, ``MPI_ANY_TAG``)."""

#: matches a message from any source rank
ANY_SOURCE = -1
#: matches a message with any tag
ANY_TAG = -1
#: a null process: sends/receives to it complete immediately with no data
PROC_NULL = -2

#: header bytes charged for control-only protocol packets
EAGER_HEADER = 32
RTS_BYTES = 32
CTS_BYTES = 16
