"""Collective operations built on point-to-point messages.

* ``barrier`` — dissemination algorithm, ⌈log2 P⌉ rounds.
* ``bcast`` — binomial tree.
* ``reduce`` — k-ary tree reduction (k=2 binomial by default).
* ``vendor_reduce`` — the same tree shape with reduced per-message software
  overhead, standing in for the vendor-optimized ``MPI_Reduce`` the paper
  compares against in Figure 4c (tuned implementations avoid the generic
  request path).

All collectives use the reserved tag space ``COLL_TAG_BASE+``; user code
should stay below it.
"""

from __future__ import annotations


import numpy as np

COLL_TAG_BASE = 1 << 20
_BARRIER_TAG = COLL_TAG_BASE + 1
_BCAST_TAG = COLL_TAG_BASE + 2
_REDUCE_TAG = COLL_TAG_BASE + 3


def barrier(comm):
    """Dissemination barrier: round r exchanges with rank ± 2^r."""
    rank, size = comm.rank, comm.size
    if size == 1:
        return
    token = np.zeros(1, dtype=np.uint8)
    rbuf = np.zeros(1, dtype=np.uint8)
    step = 1
    round_no = 0
    while step < size:
        dest = (rank + step) % size
        source = (rank - step) % size
        yield from comm.sendrecv(token, dest, _BARRIER_TAG + round_no,
                                 rbuf, source, _BARRIER_TAG + round_no)
        step <<= 1
        round_no += 1


def bcast(comm, buf: np.ndarray, root: int = 0):
    """Binomial-tree broadcast of ``buf`` from ``root`` (in place)."""
    rank, size = comm.rank, comm.size
    if size == 1:
        return
    vrank = (rank - root) % size        # root becomes virtual rank 0
    # Find this rank's lowest set bit: its parent is vrank - lowbit, and it
    # forwards to vrank + m for every m below lowbit that stays in range.
    mask = 1
    while mask < size and not (vrank & mask):
        mask <<= 1
    if vrank != 0:
        parent = (vrank - mask + root) % size
        yield from comm.recv(buf, parent, _BCAST_TAG)
    mask = (mask >> 1) if vrank != 0 else _highest_pow2_below(size)
    while mask > 0:
        if vrank + mask < size:
            child = (vrank + mask + root) % size
            yield from comm.send(buf, child, _BCAST_TAG)
        mask >>= 1


def _highest_pow2_below(n: int) -> int:
    """Largest power of two strictly containing the tree of ``n`` ranks."""
    m = 1
    while m < n:
        m <<= 1
    return m >> 1


def reduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
           root: int = 0, op=np.add, arity: int = 2,
           _tag: int = _REDUCE_TAG, _overhead_scale: float = 1.0):
    """k-ary tree reduction to ``root``; ``recvbuf`` required at root."""
    rank, size = comm.rank, comm.size
    vrank = (rank - root) % size
    acc = sendbuf.copy()
    tmp = np.empty_like(sendbuf)
    # Children of vrank v in a k-ary tree: v*k + 1 .. v*k + k.
    children = [vrank * arity + i for i in range(1, arity + 1)
                if vrank * arity + i < size]
    saved = comm.endpoint.params.mpi_overhead
    if _overhead_scale != 1.0:
        # vendor_reduce path: model the tuned implementation's cheaper
        # per-message software path.
        comm.endpoint.params = comm.endpoint.params.with_(
            mpi_overhead=saved * _overhead_scale)
    try:
        for child in children:
            real_child = (child + root) % size
            yield from comm.recv(tmp, real_child, _tag)
            acc = op(acc, tmp)
        if vrank != 0:
            parent = ((vrank - 1) // arity + root) % size
            yield from comm.send(acc, parent, _tag)
        else:
            if recvbuf is None:
                raise ValueError("root must supply recvbuf")
            recvbuf[...] = acc
    finally:
        if _overhead_scale != 1.0:
            comm.endpoint.params = comm.endpoint.params.with_(
                mpi_overhead=saved)


def vendor_reduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
                  root: int = 0, op=np.add):
    """Stand-in for the vendor-optimized reduction of Figure 4c."""
    yield from reduce(comm, sendbuf, recvbuf, root, op, arity=2,
                      _tag=_REDUCE_TAG + 1, _overhead_scale=0.5)


def allreduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op=np.add):
    """reduce-to-0 followed by bcast (sufficient for the benchmarks)."""
    yield from reduce(comm, sendbuf, recvbuf if comm.rank == 0 else None,
                      0, op)
    yield from bcast(comm, recvbuf, 0)


_GATHER_TAG = COLL_TAG_BASE + 4
_SCATTER_TAG = COLL_TAG_BASE + 5
_ALLGATHER_TAG = COLL_TAG_BASE + 6
_ALLTOALL_TAG = COLL_TAG_BASE + 7
_SCAN_TAG = COLL_TAG_BASE + 8


def gather(comm, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
           root: int = 0):
    """Gather equal-size contributions to ``root``.

    ``recvbuf`` at the root must be shaped ``(size, *sendbuf.shape)`` (or
    flat with ``size * sendbuf.size`` elements).  Linear algorithm: fine for
    the scales this library simulates, and what many MPIs use for small
    counts.
    """
    rank, size = comm.rank, comm.size
    if rank == root:
        if recvbuf is None:
            raise ValueError("root must supply recvbuf")
        flat = recvbuf.reshape(size, -1)
        if flat.shape[1] != sendbuf.size:
            raise ValueError(
                f"recvbuf rows of {flat.shape[1]} elements cannot hold "
                f"sendbuf of {sendbuf.size}")
        flat[root, :] = sendbuf.reshape(-1)
        reqs = []
        slots = {}
        for src in range(size):
            if src == root:
                continue
            tmp = np.empty(sendbuf.size, dtype=sendbuf.dtype)
            req = yield from comm.irecv(tmp, src, _GATHER_TAG)
            reqs.append(req)
            slots[req.req_id] = (src, tmp)
        yield from comm.waitall(reqs)
        for src, tmp in slots.values():
            flat[src, :] = tmp
    else:
        yield from comm.send(sendbuf, root, _GATHER_TAG)


def scatter(comm, sendbuf: np.ndarray | None, recvbuf: np.ndarray,
            root: int = 0):
    """Scatter equal-size rows of ``sendbuf`` (at root) to every rank."""
    rank, size = comm.rank, comm.size
    if rank == root:
        if sendbuf is None:
            raise ValueError("root must supply sendbuf")
        flat = sendbuf.reshape(size, -1)
        if flat.shape[1] != recvbuf.size:
            raise ValueError(
                f"sendbuf rows of {flat.shape[1]} elements do not match "
                f"recvbuf of {recvbuf.size}")
        reqs = []
        for dst in range(size):
            if dst == root:
                recvbuf.reshape(-1)[:] = flat[root]
                continue
            req = yield from comm.isend(np.ascontiguousarray(flat[dst]),
                                        dst, _SCATTER_TAG)
            reqs.append(req)
        yield from comm.waitall(reqs)
    else:
        yield from comm.recv(recvbuf.reshape(-1), root, _SCATTER_TAG)


def allgather(comm, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Bruck-style ring allgather: size-1 rounds, neighbour exchanges."""
    rank, size = comm.rank, comm.size
    flat = recvbuf.reshape(size, -1)
    if flat.shape[1] != sendbuf.size:
        raise ValueError("recvbuf rows do not match sendbuf size")
    flat[rank, :] = sendbuf.reshape(-1)
    if size == 1:
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    # Pass blocks around the ring; in round r we forward the block that
    # originated at rank - r.
    for r in range(size - 1):
        send_block = (rank - r) % size
        recv_block = (rank - r - 1) % size
        tmp = np.empty(sendbuf.size, dtype=recvbuf.dtype)
        yield from comm.sendrecv(
            np.ascontiguousarray(flat[send_block]), right,
            _ALLGATHER_TAG + r, tmp, left, _ALLGATHER_TAG + r)
        flat[recv_block, :] = tmp


def alltoall(comm, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Personalized all-to-all of equal-size blocks.

    Shifted-ring exchange: in round ``r`` every rank sends its block for
    ``rank+r`` and receives its block from ``rank-r`` — uniform for any
    communicator size.
    """
    rank, size = comm.rank, comm.size
    sflat = sendbuf.reshape(size, -1)
    rflat = recvbuf.reshape(size, -1)
    if sflat.shape != rflat.shape:
        raise ValueError("sendbuf/recvbuf block shapes differ")
    rflat[rank, :] = sflat[rank]
    for r in range(1, size):
        dst = (rank + r) % size
        src = (rank - r) % size
        tmp = np.empty(sflat.shape[1], dtype=recvbuf.dtype)
        yield from comm.sendrecv(
            np.ascontiguousarray(sflat[dst]), dst, _ALLTOALL_TAG + r,
            tmp, src, _ALLTOALL_TAG + r)
        rflat[src, :] = tmp


def exscan(comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op=np.add):
    """Exclusive prefix reduction (linear chain; rank 0 gets zeros)."""
    rank, size = comm.rank, comm.size
    if rank == 0:
        recvbuf[...] = 0
        acc = sendbuf.copy()
        if size > 1:
            yield from comm.send(acc, 1, _SCAN_TAG)
    else:
        prefix = np.empty_like(sendbuf)
        yield from comm.recv(prefix, rank - 1, _SCAN_TAG)
        recvbuf[...] = prefix
        if rank + 1 < size:
            yield from comm.send(op(prefix, sendbuf), rank + 1, _SCAN_TAG)


def scan(comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op=np.add):
    """Inclusive prefix reduction (linear chain)."""
    rank, size = comm.rank, comm.size
    acc = sendbuf.copy()
    if rank > 0:
        prefix = np.empty_like(sendbuf)
        yield from comm.recv(prefix, rank - 1, _SCAN_TAG + 1)
        acc = op(prefix, acc)
    recvbuf[...] = acc
    if rank + 1 < size:
        yield from comm.send(acc, rank + 1, _SCAN_TAG + 1)


def reduce_scatter_block(comm, sendbuf: np.ndarray, recvbuf: np.ndarray,
                         op=np.add):
    """Reduce ``size`` equal blocks and scatter block ``i`` to rank ``i``.

    Pairwise-exchange algorithm: in round r each rank sends the block
    owned by ``rank + r`` (partially reduced) around the ring.  For the
    simulated scales a simple reduce+scatter composition is used, which
    matches the semantics exactly.
    """
    rank, size = comm.rank, comm.size
    sflat = sendbuf.reshape(size, -1)
    if sflat.shape[1] != recvbuf.size:
        raise ValueError("recvbuf does not match one block of sendbuf")
    total = np.empty_like(sendbuf) if rank == 0 else None
    yield from reduce(comm, sendbuf, total, 0, op)
    yield from scatter(comm, total, recvbuf, 0)
