"""Message/notification status objects (the MPI_Status analogue)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.constants import ANY_SOURCE, ANY_TAG


@dataclass(slots=True)
class Status:
    """Completion information of a receive or a matched notification.

    For a completed counting notification request, this describes **only the
    last matching notified access**, as the paper specifies (§III-B).
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0           # payload bytes of the (last) matching access
    cancelled: bool = False

    def get_count(self, itemsize: int = 1) -> int:
        """Number of elements of ``itemsize`` bytes received."""
        if itemsize <= 0:
            raise ValueError("itemsize must be positive")
        return self.count // itemsize
