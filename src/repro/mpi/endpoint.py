"""The per-rank message-passing engine: protocols, matching, progress.

All blocking calls are generators (use ``yield from``); CPU costs are charged
by yielding engine timeouts, so a rank's sends, receives, copies, and
matching serialize on its (single) CPU exactly like a real MPI process.

Protocol notes
--------------
*Eager* (``nbytes <= eager_max``): one wire packet carries the payload.  If a
matching receive is posted at arrival, the payload is copied once into the
user buffer; otherwise it is copied into a bounce buffer and again on match —
the copy overheads and cache pollution the paper charges against message
passing (§IV).

*Rendezvous*: RTS → (match) → CTS → DATA.  The DATA leg is zero-copy (the
"NIC" writes the posted user buffer directly).  The CTS is answered either
inside the sender's next progress call, or — when the cluster runs with
``async_progress=True`` (Cray-like helper agent, [8] in the paper) — by the
fabric hook after ``async_progress_delay`` without involving the sender's
CPU.

Matching is arrival-ordered on ``(source, tag)`` with wildcards.  (True MPI
orders by *send* order per source; the two differ only for concurrent
mixed-protocol sends between one pair, which no benchmark here issues.)
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Generator
from dataclasses import dataclass

import numpy as np

from repro.errors import MatchingError
from repro.mpi.constants import (ANY_SOURCE, ANY_TAG, CTS_BYTES,
                                 EAGER_HEADER, PROC_NULL, RTS_BYTES)
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.status import Status
from repro.network.fabric import SysPacket

#: bytes of bounce-buffer backing reserved per endpoint (cache accounting)
BOUNCE_BYTES = 512 * 1024
#: CPU cost of posting a receive request, µs
T_POST = 0.05


@dataclass
class _Unexpected:
    """An arrived-but-unmatched message: eager payload or RTS record."""

    kind: str                 # "eager" | "rts"
    source: int
    tag: int
    nbytes: int
    data: np.ndarray | None = None   # eager payload snapshot
    send_id: int | None = None       # rendezvous send handle
    context: int = 0                    # communicator context id


class MpiEndpoint:
    """Message-passing state of one rank."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.rank = ctx.rank
        self.engine = ctx.engine
        self.fabric = ctx.fabric
        self.nic = ctx.nic
        self.params = ctx.params
        self.posted: list[RecvRequest] = []
        self.unexpected: list[_Unexpected] = []
        self._pending_sends: dict[int, SendRequest] = {}
        self._rndv_recvs: dict[int, RecvRequest] = {}
        #: control-message counters used by the RMA PSCW implementation
        self.ctrl_counts: Counter = Counter()
        #: bounce-buffer region for unexpected eager data (cache pollution)
        self._bounce = ctx.space.alloc(BOUNCE_BYTES)
        self._bounce_off = 0
        # statistics
        self.eager_copies = 0
        self.bounce_copies = 0
        self.rndv_sends = 0
        self.eager_sends = 0
        self._san = getattr(ctx.cluster, "sanitizer", None)

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def _copy_cost(self, nbytes: int) -> float:
        return self.params.copy_o + nbytes * self.params.copy_G

    def _touch_bounce(self, nbytes: int, label: str) -> None:
        """Charge cache pollution for a bounce-buffer copy."""
        if nbytes <= 0:
            return
        if self._bounce_off + nbytes > self._bounce.nbytes:
            self._bounce_off = 0
        self.ctx.cache.touch(self._bounce.addr + self._bounce_off, nbytes,
                             label=label)
        self._bounce_off += nbytes

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def isend(self, data: np.ndarray, dest: int, tag: int,
              context: int = 0,
              force_rndv: bool = False) -> Generator[object, object,
                                                     SendRequest]:
        """Nonblocking send; returns a :class:`SendRequest`.

        ``force_rndv`` sends via rendezvous regardless of size — the
        synchronous-send (MPI_Ssend) semantics: completion implies the
        receive has been matched.
        """
        if tag < 0:
            raise MatchingError(f"send tag must be non-negative, got {tag}")
        if dest == PROC_NULL:
            req = SendRequest(self.engine, dest, tag,
                              np.empty(0, np.uint8), "null")
            req.complete(Status())
            return req
        data = np.ascontiguousarray(data)
        nbytes = int(data.nbytes)
        yield self.engine.timeout(self.params.mpi_overhead)
        if nbytes <= self.params.eager_max and not force_rndv:
            req = SendRequest(self.engine, dest, tag, data, "eager")
            self.eager_sends += 1
            h = self.fabric.send_sys(
                self.rank, dest, "eager", nbytes + EAGER_HEADER,
                payload={"tag": tag, "nbytes": nbytes,
                         "context": context}, data=data)
            if h.cpu_busy:
                yield self.engine.timeout(h.cpu_busy)
            h.local_done.callbacks.append(lambda _e: req.complete(Status()))
            if h.local_done.processed:
                req.complete(Status())
        else:
            req = SendRequest(self.engine, dest, tag, data, "rndv")
            self.rndv_sends += 1
            self._pending_sends[req.req_id] = req
            h = self.fabric.send_sys(
                self.rank, dest, "rts", RTS_BYTES,
                payload={"tag": tag, "nbytes": nbytes,
                         "send_id": req.req_id, "context": context})
            if h.cpu_busy:
                yield self.engine.timeout(h.cpu_busy)
        return req

    def send(self, data: np.ndarray, dest: int, tag: int,
             context: int = 0) -> Generator[object, object, None]:
        req = yield from self.isend(data, dest, tag, context=context)
        yield from self.wait(req)

    def ssend(self, data: np.ndarray, dest: int, tag: int,
              context: int = 0) -> Generator[object, object, None]:
        """Synchronous send (MPI_Ssend): always rendezvous, so completion
        guarantees the matching receive was posted."""
        req = yield from self.isend(data, dest, tag, context=context,
                                    force_rndv=True)
        yield from self.wait(req)

    def _send_rndv_data(self, sreq: SendRequest, recv_id: int) -> None:
        """Issue the DATA leg after a CTS (callable outside rank CPU)."""
        h = self.fabric.send_sys(
            self.rank, sreq.dest, "rdata", sreq.nbytes,
            payload={"recv_id": recv_id, "tag": sreq.tag,
                     "send_id": sreq.req_id},
            data=sreq.data)
        h.remote_done.callbacks.append(lambda _e: sreq.complete(Status()))
        self._pending_sends.pop(sreq.req_id, None)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def irecv(self, buf: np.ndarray, source: int = ANY_SOURCE,
              tag: int = ANY_TAG,
              context: int = 0) -> Generator[object, object, RecvRequest]:
        """Nonblocking receive into ``buf`` (a numpy array)."""
        req = RecvRequest(self.engine, buf, source, tag, context=context)
        if source == PROC_NULL:
            req.complete(Status(source=PROC_NULL, tag=tag, count=0))
            return req
        yield self.engine.timeout(T_POST)
        # Check the unexpected queue first, in arrival order.
        for i, um in enumerate(self.unexpected):
            if req.matches(um.source, um.tag, um.context):
                del self.unexpected[i]
                yield from self._deliver_unexpected(req, um)
                return req
        self.posted.append(req)
        return req

    def recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG,
             context: int = 0) -> Generator[object, object, Status]:
        req = yield from self.irecv(buf, source, tag, context=context)
        status = yield from self.wait(req)
        return status

    def _deliver_unexpected(self, req: RecvRequest, um: _Unexpected):
        """Complete/advance a receive matched against an unexpected entry."""
        if um.kind == "eager":
            if um.nbytes > req.buf.nbytes:
                raise MatchingError(
                    f"message of {um.nbytes} B overflows receive buffer "
                    f"of {req.buf.nbytes} B")
            # Matching overhead plus the second copy: bounce -> user buffer.
            yield self.engine.timeout(self.params.mpi_overhead
                                      + self._copy_cost(um.nbytes))
            self._touch_bounce(um.nbytes, "eager-unexpected-out")
            self._write_user(req.buf, um.data, um.nbytes)
            req.complete(Status(source=um.source, tag=um.tag,
                                count=um.nbytes))
        elif um.kind == "rts":
            if um.nbytes > req.buf.nbytes:
                raise MatchingError(
                    f"message of {um.nbytes} B overflows receive buffer "
                    f"of {req.buf.nbytes} B")
            self._rndv_recvs[req.req_id] = req
            req.matched_from, req.matched_tag = um.source, um.tag
            h = self.fabric.send_sys(
                self.rank, um.source, "cts", CTS_BYTES,
                payload={"send_id": um.send_id, "recv_id": req.req_id})
            if h.cpu_busy:
                yield self.engine.timeout(h.cpu_busy)
        else:  # pragma: no cover - defensive
            raise MatchingError(f"unknown unexpected kind {um.kind!r}")

    @staticmethod
    def _write_user(buf: np.ndarray, raw: np.ndarray | None,
                    nbytes: int) -> None:
        if raw is None or nbytes == 0:
            return
        flat = buf.reshape(-1).view(np.uint8)
        flat[:nbytes] = raw[:nbytes]

    # ------------------------------------------------------------------
    # progress engine
    # ------------------------------------------------------------------
    def progress(self) -> Generator[object, object, int]:
        """Drain the protocol inbox; returns the number of packets handled."""
        handled = 0
        while True:
            ok, pkt = self.nic.sys_inbox.try_get()
            if not ok:
                break
            handled += 1
            yield from self._handle_packet(pkt)
        return handled

    def _handle_packet(self, pkt: SysPacket):
        if self._san is not None:
            # Receiving any protocol message orders this rank after the
            # sender's released clock (send/recv match, PSCW control,
            # collectives built on them).
            self._san.acquire(self.rank, pkt.san_clock)
        if pkt.ptype == "eager":
            yield from self._on_eager(pkt)
        elif pkt.ptype == "rts":
            yield from self._on_rts(pkt)
        elif pkt.ptype == "cts":
            if not pkt.payload.get("async_handled"):
                self._on_cts(pkt)
        elif pkt.ptype == "rdata":
            self._on_rdata(pkt)
        elif pkt.ptype.startswith("pscw-") or pkt.ptype.startswith("ctrl-"):
            self.ctrl_counts[(pkt.ptype, pkt.source)] += 1
        else:
            raise MatchingError(f"unknown protocol packet {pkt.ptype!r}")

    def _match_posted(self, source: int, tag: int,
                      context: int = 0) -> RecvRequest | None:
        for i, req in enumerate(self.posted):
            if req.matches(source, tag, context):
                del self.posted[i]
                return req
        return None

    def _on_eager(self, pkt: SysPacket):
        tag, nbytes = pkt.payload["tag"], pkt.payload["nbytes"]
        context = pkt.payload.get("context", 0)
        req = self._match_posted(pkt.source, tag, context)
        if req is not None:
            if nbytes > req.buf.nbytes:
                raise MatchingError(
                    f"message of {nbytes} B overflows receive buffer "
                    f"of {req.buf.nbytes} B")
            # Matching overhead plus the copy: NIC eager buffer -> user.
            yield self.engine.timeout(self.params.mpi_overhead
                                      + self._copy_cost(nbytes))
            self._touch_bounce(nbytes, "eager-copy")
            self.eager_copies += 1
            self._write_user(req.buf, pkt.data, nbytes)
            req.complete(Status(source=pkt.source, tag=tag, count=nbytes))
        else:
            # Copy into the bounce buffer for later matching.
            yield self.engine.timeout(self._copy_cost(nbytes))
            self._touch_bounce(nbytes, "eager-bounce-in")
            self.bounce_copies += 1
            self.unexpected.append(_Unexpected(
                "eager", pkt.source, tag, nbytes, data=pkt.data,
                context=context))

    def _on_rts(self, pkt: SysPacket):
        tag, nbytes = pkt.payload["tag"], pkt.payload["nbytes"]
        send_id = pkt.payload["send_id"]
        context = pkt.payload.get("context", 0)
        req = self._match_posted(pkt.source, tag, context)
        if req is not None:
            if nbytes > req.buf.nbytes:
                raise MatchingError(
                    f"message of {nbytes} B overflows receive buffer "
                    f"of {req.buf.nbytes} B")
            self._rndv_recvs[req.req_id] = req
            req.matched_from, req.matched_tag = pkt.source, tag
            h = self.fabric.send_sys(
                self.rank, pkt.source, "cts", CTS_BYTES,
                payload={"send_id": send_id, "recv_id": req.req_id})
            if h.cpu_busy:
                yield self.engine.timeout(h.cpu_busy)
        else:
            self.unexpected.append(_Unexpected(
                "rts", pkt.source, tag, nbytes, send_id=send_id,
                context=context))

    def _on_cts(self, pkt: SysPacket) -> None:
        """Answer a CTS: start the zero-copy data leg (no generator — this
        is also called from the async-progress fabric hook)."""
        sreq = self._pending_sends.get(pkt.payload["send_id"])
        if sreq is None:
            raise MatchingError(
                f"CTS for unknown send id {pkt.payload['send_id']}")
        if self._san is not None:
            # Also reached via the async-progress hook, which bypasses
            # _handle_packet; acquiring twice is idempotent.
            self._san.acquire(self.rank, pkt.san_clock)
        self._send_rndv_data(sreq, pkt.payload["recv_id"])

    def _on_rdata(self, pkt: SysPacket) -> None:
        req = self._rndv_recvs.pop(pkt.payload["recv_id"], None)
        if req is None:
            raise MatchingError(
                f"rendezvous data for unknown recv id "
                f"{pkt.payload['recv_id']}")
        # Zero-copy: the NIC wrote the user buffer; no CPU copy is charged.
        self._write_user(req.buf, pkt.data, pkt.nbytes)
        req.complete(Status(source=pkt.source, tag=pkt.payload["tag"],
                            count=pkt.nbytes))

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def wait(self, req: Request) -> Generator[object, object, Status]:
        """Block until ``req`` completes; returns its :class:`Status`."""
        while not req.done:
            yield from self.progress()
            if req.done:
                break
            if len(self.nic.sys_inbox):
                continue
            yield self.engine.any_of(
                [self.nic.sys_arrival.wait(), req.completion])
        assert req.status is not None
        return req.status

    def waitall(self, reqs: list[Request]) -> Generator[object, object,
                                                        list[Status]]:
        for req in reqs:
            yield from self.wait(req)
        return [r.status for r in reqs]  # type: ignore[misc]

    def test(self, req: Request) -> Generator[object, object, bool]:
        """Run one progress pass; returns True if ``req`` completed."""
        yield from self.progress()
        return req.done

    # ------------------------------------------------------------------
    # probe
    # ------------------------------------------------------------------
    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               context: int = 0) -> Generator[object, object,
                                              Status | None]:
        """Nonblocking probe of the unexpected queue (after progress)."""
        yield from self.progress()
        for um in self.unexpected:
            if um.context != context:
                continue
            if ((source == ANY_SOURCE or source == um.source)
                    and (tag == ANY_TAG or tag == um.tag)):
                return Status(source=um.source, tag=um.tag, count=um.nbytes)
        return None

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              context: int = 0) -> Generator[object, object, Status]:
        """Blocking probe; the message stays queued for a later recv."""
        while True:
            st = yield from self.iprobe(source, tag, context)
            if st is not None:
                return st
            if len(self.nic.sys_inbox):
                continue
            yield self.nic.sys_arrival.wait()

    # ------------------------------------------------------------------
    def ctrl_wait(self, ptype: str, sources: list[int],
                  count_each: int = 1) -> Generator[object, object, None]:
        """Wait until ``count_each`` control packets of ``ptype`` arrived
        from every rank in ``sources`` (consumes the counts)."""
        need = {s: count_each for s in sources if s != self.rank}
        while True:
            yield from self.progress()
            for s in list(need):
                have = self.ctrl_counts[(ptype, s)]
                if have >= need[s]:
                    self.ctrl_counts[(ptype, s)] -= need[s]
                    del need[s]
            if not need:
                return
            if len(self.nic.sys_inbox):
                continue
            yield self.nic.sys_arrival.wait()
