"""MPI-style derived datatypes: contiguous, vector, and indexed layouts.

The paper's interface (``MPI_Put_notify(origin_addr, origin_count,
origin_type, ...)``) takes datatype arguments; this module provides the
datatype engine: each datatype describes a byte layout over a buffer, and
``pack``/``unpack`` gather/scatter between that layout and a contiguous
wire representation.  The transports always move packed bytes (RDMA of
non-contiguous data is gather/scatter at the NIC or a CPU pack, which the
cost model charges via ``pack_cost``).

Supported constructors mirror the MPI core set:

* :func:`contiguous` — ``count`` consecutive elements,
* :func:`vector` — ``count`` blocks of ``blocklength`` elements with a
  ``stride`` (the column type of every halo exchange),
* :func:`indexed` — explicit (blocklength, displacement) lists.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import BufferError_


@dataclass(frozen=True)
class Datatype:
    """A byte layout: a list of (offset, nbytes) extents over a buffer.

    ``extent`` is the span from offset 0 to the end of the last block —
    what one ``count`` step advances in a multi-count transfer, like the
    MPI extent of a committed type.
    """

    blocks: tuple[tuple[int, int], ...]
    itemsize: int
    name: str = "derived"

    @property
    def size(self) -> int:
        """Packed payload bytes per element of this type."""
        return sum(n for _, n in self.blocks)

    @property
    def extent(self) -> int:
        if not self.blocks:
            return 0
        return max(off + n for off, n in self.blocks)

    def _check(self, buf_nbytes: int, count: int) -> None:
        if count < 0:
            raise BufferError_(f"negative count {count}")
        if count == 0 or not self.blocks:
            return
        need = (count - 1) * self.extent + self.extent
        if need > buf_nbytes:
            raise BufferError_(
                f"{count} x {self.name} (extent {self.extent}) does not "
                f"fit buffer of {buf_nbytes} bytes")

    def pack(self, buf: np.ndarray, count: int = 1) -> np.ndarray:
        """Gather ``count`` elements from ``buf`` into contiguous bytes.

        ``buf`` must be C-contiguous: the datatype itself describes the
        strided layout.  Packing a strided *view* would silently re-stride
        the data, so it is rejected.
        """
        if not buf.flags["C_CONTIGUOUS"]:
            raise BufferError_(
                "pack needs a contiguous base buffer; describe strides "
                "with the datatype (vector/indexed), not a sliced view")
        raw = buf.view(np.uint8).ravel()
        self._check(raw.nbytes, count)
        out = np.empty(count * self.size, dtype=np.uint8)
        pos = 0
        for c in range(count):
            base = c * self.extent
            for off, n in self.blocks:
                out[pos:pos + n] = raw[base + off:base + off + n]
                pos += n
        return out

    def unpack(self, packed: np.ndarray, buf: np.ndarray,
               count: int = 1) -> None:
        """Scatter contiguous bytes back into ``buf``'s layout (``buf``
        must be C-contiguous, as for :meth:`pack`)."""
        if not buf.flags["C_CONTIGUOUS"]:
            raise BufferError_(
                "unpack needs a contiguous base buffer; describe strides "
                "with the datatype (vector/indexed), not a sliced view")
        raw = buf.view(np.uint8).reshape(-1)
        self._check(raw.nbytes, count)
        src = packed.view(np.uint8).ravel()
        if src.nbytes != count * self.size:
            raise BufferError_(
                f"packed data of {src.nbytes} B != {count} x {self.size} B")
        pos = 0
        for c in range(count):
            base = c * self.extent
            for off, n in self.blocks:
                raw[base + off:base + off + n] = src[pos:pos + n]
                pos += n

    def pack_cost(self, params, count: int = 1) -> float:
        """CPU time to pack/unpack ``count`` elements (µs): a strided copy.

        Contiguous single-block types are free (no copy happens)."""
        if self.is_contiguous:
            return 0.0
        nbytes = count * self.size
        nblocks = count * len(self.blocks)
        return params.copy_o + nbytes * params.copy_G + 0.002 * nblocks

    @property
    def is_contiguous(self) -> bool:
        return (len(self.blocks) == 1 and self.blocks[0][0] == 0)


def contiguous(count: int, dtype=np.float64, name: str = "") -> Datatype:
    """``count`` consecutive elements of ``dtype``."""
    itemsize = np.dtype(dtype).itemsize
    if count < 1:
        raise BufferError_(f"contiguous count must be >= 1, got {count}")
    return Datatype(blocks=((0, count * itemsize),), itemsize=itemsize,
                    name=name or f"contig({count})")


def vector(count: int, blocklength: int, stride: int,
           dtype=np.float64, name: str = "") -> Datatype:
    """``count`` blocks of ``blocklength`` elements, ``stride`` elements
    apart — e.g. a matrix column is ``vector(nrows, 1, ncols)``."""
    itemsize = np.dtype(dtype).itemsize
    if count < 1 or blocklength < 1:
        raise BufferError_("vector count/blocklength must be >= 1")
    if stride < blocklength:
        raise BufferError_(
            f"stride {stride} overlaps blocks of length {blocklength}")
    blocks = tuple((i * stride * itemsize, blocklength * itemsize)
                   for i in range(count))
    return Datatype(blocks=blocks, itemsize=itemsize,
                    name=name or f"vector({count},{blocklength},{stride})")


def indexed(blocklengths: Sequence[int], displacements: Sequence[int],
            dtype=np.float64, name: str = "") -> Datatype:
    """Explicit blocks: ``blocklengths[i]`` elements at element offset
    ``displacements[i]``."""
    if len(blocklengths) != len(displacements):
        raise BufferError_("blocklengths/displacements length mismatch")
    if not blocklengths:
        raise BufferError_("indexed type needs at least one block")
    itemsize = np.dtype(dtype).itemsize
    pairs = sorted(zip(displacements, blocklengths))
    prev_end = -1
    blocks = []
    for disp, bl in pairs:
        if bl < 1:
            raise BufferError_(f"blocklength must be >= 1, got {bl}")
        if disp < 0:
            raise BufferError_(f"negative displacement {disp}")
        if disp < prev_end:
            raise BufferError_("indexed blocks overlap")
        prev_end = disp + bl
        blocks.append((disp * itemsize, bl * itemsize))
    return Datatype(blocks=tuple(blocks), itemsize=itemsize,
                    name=name or f"indexed({len(blocks)})")
