"""A message-passing runtime in the style of MPI point-to-point semantics.

Implements the two transfer protocols the paper compares against (Figure 2b):

* **eager** — the payload travels with the first packet; if no receive is
  posted it is copied into a bounce buffer and again into the user buffer on
  match (the copy overhead and cache pollution the paper attributes to
  message passing),
* **rendezvous** — RTS / CTS / DATA, zero-copy but three transactions on the
  critical path, and requiring target-side progress (or an async-progress
  agent, as in Cray MPI).

Matching follows MPI semantics: posted-receive queue and unexpected-message
queue, ordered matching on ``(source, tag)`` with ``ANY_SOURCE``/``ANY_TAG``
wildcards, non-overtaking between same (source, tag) pairs.
"""

from repro.mpi.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    exscan,
    gather,
    reduce,
    reduce_scatter_block,
    scan,
    scatter,
    vendor_reduce,
)
from repro.mpi.comm import Communicator
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.status import Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "Status",
    "Request",
    "SendRequest",
    "RecvRequest",
    "MpiEndpoint",
    "Communicator",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "vendor_reduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "exscan",
    "scan",
    "reduce_scatter_block",
]
