"""Communicators: the per-rank facade over the message-passing endpoints.

Beyond the world communicator, :meth:`Communicator.split` creates
sub-communicators (MPI_Comm_split): each gets its own *context id* so its
traffic can never match another communicator's, ranks are renumbered within
the group, and all collectives work unchanged on the sub-communicator.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import MatchingError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.status import Status

#: context ids allocated per split call: (call_idx + 1) * stride + color idx
_CONTEXT_STRIDE = 1 << 12


class Communicator:
    """One rank's view of a communicator (world or split).

    All blocking operations are generators: ``yield from comm.send(...)``.
    ``group`` lists the member *world* ranks in communicator-rank order.
    """

    def __init__(self, endpoint: MpiEndpoint, endpoints: list[MpiEndpoint],
                 group: list[int] | None = None, context: int = 0):
        self.endpoint = endpoint
        self._endpoints = endpoints
        self.context = context
        if group is None:
            group = list(range(len(endpoints)))
        self.group = list(group)
        if endpoint.rank not in self.group:
            raise MatchingError(
                f"world rank {endpoint.rank} is not in the group")
        self.rank = self.group.index(endpoint.rank)
        self.size = len(self.group)
        self._split_calls = 0

    # -- rank translation ---------------------------------------------------
    def _world(self, peer: int) -> int:
        """Communicator rank -> world rank (PROC_NULL passes through)."""
        if peer == PROC_NULL:
            return PROC_NULL
        if not 0 <= peer < self.size:
            raise MatchingError(
                f"peer rank {peer} out of range [0, {self.size})")
        return self.group[peer]

    def _local(self, world_rank: int) -> int:
        """World rank -> communicator rank (for statuses)."""
        if world_rank in (PROC_NULL, ANY_SOURCE):
            return world_rank
        try:
            return self.group.index(world_rank)
        except ValueError:  # pragma: no cover - matching is context-bound
            raise MatchingError(
                f"message from world rank {world_rank} outside the group")

    def _xlate_status(self, status: Status) -> Status:
        if status.source >= 0:
            return Status(source=self._local(status.source),
                          tag=status.tag, count=status.count,
                          cancelled=status.cancelled)
        return status

    # -- point to point ----------------------------------------------------
    def send(self, data: np.ndarray, dest: int, tag: int = 0):
        yield from self.endpoint.send(data, self._world(dest), tag,
                                      context=self.context)

    def isend(self, data: np.ndarray, dest: int,
              tag: int = 0) -> Generator[object, object, SendRequest]:
        req = yield from self.endpoint.isend(data, self._world(dest), tag,
                                             context=self.context)
        return req

    def ssend(self, data: np.ndarray, dest: int, tag: int = 0):
        """Synchronous send: completes only once the receive matched."""
        yield from self.endpoint.ssend(data, self._world(dest), tag,
                                       context=self.context)

    def recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Generator[object, object, Status]:
        src = source if source == ANY_SOURCE else self._world(source)
        status = yield from self.endpoint.recv(buf, src, tag,
                                               context=self.context)
        return self._xlate_status(status)

    def irecv(self, buf: np.ndarray, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Generator[object, object, RecvRequest]:
        src = source if source == ANY_SOURCE else self._world(source)
        req = yield from self.endpoint.irecv(buf, src, tag,
                                             context=self.context)
        return req

    def sendrecv(self, senddata: np.ndarray, dest: int, sendtag: int,
                 recvbuf: np.ndarray, source: int,
                 recvtag: int) -> Generator[object, object, Status]:
        """Deadlock-free combined send+recv."""
        rreq = yield from self.irecv(recvbuf, source, recvtag)
        sreq = yield from self.isend(senddata, dest, sendtag)
        yield from self.endpoint.wait(sreq)
        status = yield from self.endpoint.wait(rreq)
        return self._xlate_status(status)

    def wait(self, req: Request) -> Generator[object, object, Status]:
        status = yield from self.endpoint.wait(req)
        return self._xlate_status(status)

    def waitall(self, reqs: list[Request]):
        statuses = yield from self.endpoint.waitall(reqs)
        return [self._xlate_status(s) for s in statuses]

    def waitany(self, reqs: list[Request]
                ) -> Generator[object, object, tuple[int, Status]]:
        """Block until any request completes; returns (index, status)."""
        if not reqs:
            raise MatchingError("waitany over an empty request list")
        while True:
            for i, req in enumerate(reqs):
                if req.done:
                    assert req.status is not None
                    return i, self._xlate_status(req.status)
            yield from self.endpoint.progress()
            done = [i for i, r in enumerate(reqs) if r.done]
            if done:
                continue
            if len(self.endpoint.nic.sys_inbox):
                continue
            yield self.endpoint.engine.any_of(
                [self.endpoint.nic.sys_arrival.wait()]
                + [r.completion for r in reqs])

    def probe(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Generator[object, object, Status]:
        src = source if source == ANY_SOURCE else self._world(source)
        status = yield from self.endpoint.probe(src, tag,
                                                context=self.context)
        return self._xlate_status(status)

    def iprobe(self, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Generator[object, object,
                                                Status | None]:
        src = source if source == ANY_SOURCE else self._world(source)
        status = yield from self.endpoint.iprobe(src, tag,
                                                 context=self.context)
        return self._xlate_status(status) if status is not None else None

    # -- sub-communicators --------------------------------------------------
    def split(self, color: int,
              key: int | None = None,
              ) -> Generator[object, object, "Communicator" | None]:
        """MPI_Comm_split: collective; ranks with equal ``color`` form a
        new communicator, ordered by ``(key, parent rank)``.

        ``color < 0`` (MPI_UNDEFINED) opts out and returns None.
        """
        from repro.mpi.collectives import allgather
        self._split_calls += 1
        call_idx = self._split_calls
        if key is None:
            key = self.rank
        mine = np.array([float(color), float(key)], dtype=np.float64)
        table = np.zeros((self.size, 2))
        yield from allgather(self, mine, table)
        colors = table[:, 0].astype(int)
        keys = table[:, 1].astype(int)
        if color < 0:
            return None
        members = [r for r in range(self.size) if colors[r] == color]
        members.sort(key=lambda r: (keys[r], r))
        world_group = [self.group[r] for r in members]
        # Deterministic context id: same on every member without a
        # registry (everyone sees the same gathered colors).
        unique_colors = sorted({int(c) for c in colors if c >= 0})
        ctx_id = (self.context * 37 + call_idx) * _CONTEXT_STRIDE \
            + unique_colors.index(color) + 1
        return Communicator(self.endpoint, self._endpoints,
                            group=world_group, context=ctx_id)

    def dup(self) -> Generator[object, object, "Communicator"]:
        """MPI_Comm_dup: same group, fresh context."""
        comm = yield from self.split(0, key=self.rank)
        assert comm is not None
        return comm

    # -- collectives (thin wrappers over repro.mpi.collectives) --------------
    def barrier(self):
        from repro.mpi.collectives import barrier
        yield from barrier(self)

    def bcast(self, buf: np.ndarray, root: int = 0):
        from repro.mpi.collectives import bcast
        yield from bcast(self, buf, root)

    def reduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
               root: int = 0, op=np.add):
        from repro.mpi.collectives import reduce
        yield from reduce(self, sendbuf, recvbuf, root, op)

    def allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray, op=np.add):
        from repro.mpi.collectives import allreduce
        yield from allreduce(self, sendbuf, recvbuf, op)


    # -- typed point-to-point (derived datatypes) -----------------------------
    def send_typed(self, buf: np.ndarray, datatype, dest: int,
                   tag: int = 0, count: int = 1):
        """Send ``count`` elements of a derived ``datatype`` out of the
        contiguous base buffer ``buf`` (pack cost charged at the sender)."""
        packed = datatype.pack(buf, count)
        cost = datatype.pack_cost(self.endpoint.params, count)
        if cost:
            yield self.endpoint.engine.timeout(cost)
        yield from self.send(packed, dest, tag)

    def recv_typed(self, buf: np.ndarray, datatype, source: int = ANY_SOURCE,
                   tag: int = ANY_TAG,
                   count: int = 1) -> Generator[object, object, Status]:
        """Receive into ``count`` elements of ``datatype``'s layout over the
        contiguous base buffer ``buf`` (unpack cost charged here)."""
        packed = np.empty(count * datatype.size, dtype=np.uint8)
        status = yield from self.recv(packed, source, tag)
        cost = datatype.pack_cost(self.endpoint.params, count)
        if cost:
            yield self.endpoint.engine.timeout(cost)
        datatype.unpack(packed, buf, count)
        return status
