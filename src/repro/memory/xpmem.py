"""XPMEM-like cross-process shared memory segments.

On the real system, XPMEM lets a process map another process's exposed pages
into its own address space, enabling direct load/store intra-node
communication.  We model a segment as a handle naming an address range of an
owner rank; any rank *on the same node* may attach and read/write it
directly (the shared-memory transport charges the time).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BufferError_, NetworkError
from repro.memory.address import AddressSpace


class XpmemSegment:
    """An exposed address range of ``owner`` rank's memory."""

    __slots__ = ("segid", "owner", "space", "addr", "nbytes")

    def __init__(self, segid: int, owner: int, space: AddressSpace,
                 addr: int, nbytes: int):
        if addr < 0 or addr + nbytes > space.size:
            raise BufferError_("segment outside owner's address space")
        self.segid = segid
        self.owner = owner
        self.space = space
        self.addr = addr
        self.nbytes = nbytes

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        if offset < 0 or offset + nbytes > self.nbytes:
            raise BufferError_("read outside segment")
        return self.space.copy_out(self.addr + offset, nbytes)

    def write(self, offset: int, data: np.ndarray) -> None:
        raw = data.view(np.uint8).ravel()
        if offset < 0 or offset + raw.nbytes > self.nbytes:
            raise BufferError_("write outside segment")
        self.space.copy_in(self.addr + offset, raw)


class XpmemRegistry:
    """Per-node registry of exposed segments (the "make" / "attach" calls)."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._segments: dict[int, XpmemSegment] = {}
        self._next_id = 1

    def expose(self, owner: int, space: AddressSpace, addr: int,
               nbytes: int) -> XpmemSegment:
        seg = XpmemSegment(self._next_id, owner, space, addr, nbytes)
        self._segments[seg.segid] = seg
        self._next_id += 1
        return seg

    def attach(self, segid: int) -> XpmemSegment:
        seg = self._segments.get(segid)
        if seg is None:
            raise NetworkError(
                f"node {self.node_id}: no XPMEM segment {segid}")
        return seg

    def revoke(self, segid: int) -> None:
        self._segments.pop(segid, None)
