"""Per-rank address spaces and regions.

An :class:`AddressSpace` is a flat byte array (NumPy ``uint8``) with a
first-fit free-list allocator.  Addresses are plain integers (offsets), which
lets the network layer address remote memory exactly like RDMA does: (rank,
address, nbytes).

A :class:`Region` is a typed view of an allocation — the unit user code works
with.  ``region.ndarray(dtype)`` exposes the bytes as a NumPy array so
simulated applications compute on real data.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import AllocationError, BufferError_

#: Default per-rank address-space size (bytes). Large enough for every
#: experiment in the paper at reproduction scale; growable per cluster config.
DEFAULT_SPACE = 64 * 1024 * 1024


class Region:
    """A typed window into an :class:`AddressSpace` allocation."""

    __slots__ = ("space", "addr", "nbytes", "_freed", "san_ignore")

    def __init__(self, space: "AddressSpace", addr: int, nbytes: int):
        self.space = space
        self.addr = addr
        self.nbytes = nbytes
        self._freed = False
        #: Regions that *are* synchronization primitives (overwriting
        #: notification registers) are polled by design; the sanitizer
        #: skips their CPU-side accesses and tracks per-slot clocks instead.
        self.san_ignore = False

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    def _check(self, offset: int, nbytes: int) -> None:
        if self._freed:
            raise BufferError_("use of freed region")
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise BufferError_(
                f"access [{offset}, {offset + nbytes}) outside region of "
                f"{self.nbytes} bytes")

    def _record(self, offset: int, nbytes: int, write: bool) -> None:
        san = self.space.san
        if san is not None and not self.san_ignore:
            from repro.sanitizer.shadow import READ, WRITE
            san.cpu_access(self.space.rank, self.addr + offset, nbytes,
                           WRITE if write else READ)

    def ndarray(self, dtype=np.uint8, offset: int = 0,
                count: int | None = None,
                mode: str = "rw") -> np.ndarray:
        """A NumPy view of (part of) the region — writes are visible to RMA.

        ``mode`` is a sanitizer annotation: ``"rw"`` (default) records the
        view as a write, ``"r"`` as a read, ``"raw"`` not at all (for
        deliberately-polled bytes blessed via ``Rank.san_acquire_at``).
        """
        if mode not in ("rw", "r", "raw"):
            raise ValueError(f"mode must be 'rw', 'r', or 'raw', "
                             f"got {mode!r}")
        itemsize = np.dtype(dtype).itemsize
        if count is None:
            count = (self.nbytes - offset) // itemsize
        self._check(offset, count * itemsize)
        if mode != "raw":
            self._record(offset, count * itemsize, write=(mode != "r"))
        start = self.addr + offset
        return self.space.mem[start:start + count * itemsize].view(dtype)

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        self._record(offset, nbytes, write=False)
        start = self.addr + offset
        return self.space.mem[start:start + nbytes].tobytes()

    def write(self, offset: int, data: bytes | np.ndarray) -> None:
        raw = (np.frombuffer(data, dtype=np.uint8)
               if isinstance(data, (bytes, bytearray, memoryview))
               else data.view(np.uint8).ravel())
        self._check(offset, raw.nbytes)
        self._record(offset, raw.nbytes, write=True)
        start = self.addr + offset
        self.space.mem[start:start + raw.nbytes] = raw

    def fill(self, value: int) -> None:
        self._check(0, self.nbytes)
        self._record(0, self.nbytes, write=True)
        self.space.mem[self.addr:self.end] = value

    def free(self) -> None:
        if not self._freed:
            self.space.free(self)
            self._freed = True

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Region rank={self.space.rank} addr={self.addr:#x} "
                f"nbytes={self.nbytes}>")


class AddressSpace:
    """Flat byte memory of one simulated rank, with a first-fit allocator.

    The allocator keeps a sorted list of free ``(addr, size)`` holes and
    coalesces on free.  Allocations are aligned to ``align`` (default 64, a
    cache line) because the paper's request structures are assumed aligned.
    """

    #: Byte written over freed allocations when ``poison_on_free`` is set,
    #: so stale live views read garbage instead of plausible old values.
    POISON = 0xDB

    def __init__(self, rank: int, size: int = DEFAULT_SPACE):
        self.rank = rank
        self.size = size
        self.mem = np.zeros(size, dtype=np.uint8)
        self._holes: list[tuple[int, int]] = [(0, size)]  # sorted by addr
        self.allocated_bytes = 0
        self.peak_bytes = 0
        #: Sanitizer hook; wired by :class:`repro.cluster.Cluster` when
        #: ``ClusterConfig.sanitize`` is on, else None (zero overhead).
        self.san = None
        self.poison_on_free = False

    def alloc(self, nbytes: int, align: int = 64) -> Region:
        """Allocate ``nbytes`` aligned to ``align``; raises AllocationError."""
        if nbytes <= 0:
            raise AllocationError(
                f"allocation size must be positive, got {nbytes}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise AllocationError(
                f"alignment must be a power of two, got {align}")
        for i, (addr, size) in enumerate(self._holes):
            start = (addr + align - 1) & ~(align - 1)
            pad = start - addr
            if size >= pad + nbytes:
                # Carve [start, start+nbytes) out of the hole.
                new_holes = []
                if pad:
                    new_holes.append((addr, pad))
                tail = size - pad - nbytes
                if tail:
                    new_holes.append((start + nbytes, tail))
                self._holes[i:i + 1] = new_holes
                self.allocated_bytes += nbytes
                self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
                return Region(self, start, nbytes)
        raise AllocationError(
            f"rank {self.rank}: cannot allocate {nbytes} bytes "
            f"(allocated {self.allocated_bytes}/{self.size})")

    def free(self, region: Region) -> None:
        """Return a region's bytes to the free list, coalescing neighbours."""
        if region.space is not self:
            raise AllocationError(
                "region belongs to a different address space")
        addr, size = region.addr, region.nbytes
        i = bisect.bisect_left(self._holes, (addr, 0))
        # Guard against double-free / overlap corruption.
        if i < len(self._holes):
            naddr, _ = self._holes[i]
            if naddr < addr + size and naddr >= addr:
                raise AllocationError("double free or overlapping free")
        if i > 0:
            paddr, psize = self._holes[i - 1]
            if paddr + psize > addr:
                raise AllocationError("double free or overlapping free")
        self._holes.insert(i, (addr, size))
        self.allocated_bytes -= size
        if self.poison_on_free:
            self.mem[addr:addr + size] = self.POISON
        if self.san is not None and not region.san_ignore:
            from repro.sanitizer.shadow import WRITE
            self.san.cpu_access(self.rank, addr, size, WRITE)
        # Coalesce with successor then predecessor.
        if i + 1 < len(self._holes):
            naddr, nsize = self._holes[i + 1]
            if addr + size == naddr:
                self._holes[i:i + 2] = [(addr, size + nsize)]
                size += nsize
        if i > 0:
            paddr, psize = self._holes[i - 1]
            if paddr + psize == addr:
                self._holes[i - 1:i + 1] = [(paddr, psize + size)]

    def copy_in(self, addr: int, data: np.ndarray) -> None:
        """Raw write used by the NIC DMA path (bounds-checked)."""
        raw = data.view(np.uint8).ravel()
        if addr < 0 or addr + raw.nbytes > self.size:
            raise BufferError_(
                f"DMA write [{addr}, {addr + raw.nbytes}) outside "
                "address space")
        self.mem[addr:addr + raw.nbytes] = raw

    def copy_out(self, addr: int, nbytes: int) -> np.ndarray:
        """Raw read used by the NIC DMA path (returns a copy)."""
        if addr < 0 or addr + nbytes > self.size:
            raise BufferError_(
                f"DMA read [{addr}, {addr + nbytes}) outside address space")
        return self.mem[addr:addr + nbytes].copy()

    def free_bytes(self) -> int:
        return sum(size for _, size in self._holes)
