"""An LRU cache-line model for accounting matching-path memory traffic.

Section V of the paper argues the Notified Access matching path costs at most
**two compulsory cache misses** when fewer than four notifications are active:
one for the 32-byte request structure, one for the unexpected-queue head
(arranged to share a line with its first elements).  Rather than assert this,
we *measure* it: the matching engine funnels every structure access through a
:class:`CacheModel` and the microbenchmark (``bench_sec5_cache_misses``)
reports observed misses.

The model is a set-associative LRU cache with 64-byte lines, sized like a
per-core L1 (32 KiB, 8-way) by default.  It models presence only — hit/miss
accounting, not latency — because the paper's claim is a miss *count*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

#: Cache line size in bytes (x86-typical; also the notification entry size
#: in the shared-memory ring buffer, §IV-C).
CACHE_LINE = 64


@dataclass
class CacheStats:
    """Counters accumulated by :class:`CacheModel`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    by_label: dict[str, int] = field(default_factory=dict)

    def miss_for(self, label: str) -> int:
        return self.by_label.get(label, 0)

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions,
                          dict(self.by_label))

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        by = {k: v - earlier.by_label.get(k, 0)
              for k, v in self.by_label.items()}
        by = {k: v for k, v in by.items() if v}
        return CacheStats(self.hits - earlier.hits,
                          self.misses - earlier.misses,
                          self.evictions - earlier.evictions, by)


class CacheModel:
    """Set-associative LRU cache over (space-id, line-address) keys."""

    def __init__(self, size_bytes: int = 32 * 1024, ways: int = 8,
                 line: int = CACHE_LINE):
        if size_bytes % (ways * line):
            raise ValueError("cache size must be a multiple of ways*line")
        self.line = line
        self.ways = ways
        self.nsets = size_bytes // (ways * line)
        self._sets: list[OrderedDict] = [OrderedDict()
                                         for _ in range(self.nsets)]
        self.stats = CacheStats()

    def _lines(self, addr: int, nbytes: int):
        first = addr // self.line
        last = (addr + max(nbytes, 1) - 1) // self.line
        return range(first, last + 1)

    def touch(self, addr: int, nbytes: int, space: int = 0,
              label: str = "") -> int:
        """Access ``[addr, addr+nbytes)``; returns the line-miss count."""
        misses = 0
        for lineno in self._lines(addr, nbytes):
            key = (space, lineno)
            st = self._sets[lineno % self.nsets]
            if key in st:
                st.move_to_end(key)
                self.stats.hits += 1
            else:
                misses += 1
                self.stats.misses += 1
                if label:
                    self.stats.by_label[label] = \
                        self.stats.by_label.get(label, 0) + 1
                st[key] = True
                if len(st) > self.ways:
                    st.popitem(last=False)
                    self.stats.evictions += 1
        return misses

    def flush_range(self, addr: int, nbytes: int, space: int = 0) -> None:
        """Invalidate lines (models DMA writing to memory, not cache)."""
        for lineno in self._lines(addr, nbytes):
            st = self._sets[lineno % self.nsets]
            st.pop((space, lineno), None)

    def flush_all(self) -> None:
        for st in self._sets:
            st.clear()

    def resident(self, addr: int, space: int = 0) -> bool:
        key = (space, addr // self.line)
        return key in self._sets[(addr // self.line) % self.nsets]
