"""Memory subsystem: per-rank address spaces, allocation, and a cache model.

Each simulated rank owns an :class:`~repro.memory.address.AddressSpace` — a
NumPy byte array plus a free-list allocator.  RMA windows and message buffers
are :class:`~repro.memory.address.Region` views into it, so every protocol in
the stack moves *real bytes* and data correctness is testable.

The :class:`~repro.memory.cache.CacheModel` is an LRU cache-line simulator
used to account the target-side cost of notification matching (§V of the
paper: two compulsory misses per matched notification).
"""

from repro.memory.address import AddressSpace, Region
from repro.memory.cache import CACHE_LINE, CacheModel, CacheStats
from repro.memory.xpmem import XpmemRegistry, XpmemSegment

__all__ = [
    "AddressSpace",
    "Region",
    "CacheModel",
    "CacheStats",
    "CACHE_LINE",
    "XpmemSegment",
    "XpmemRegistry",
]
