"""The vector-clock happens-before tracker.

Actors
------
Each rank is an actor; in addition every remote operation (put, get,
accumulate, notified flush) becomes a fresh actor the moment it is issued:
the NIC commits it asynchronously, so it is ordered after the origin's past
but *not* before the origin's future.  The operation's clock is the
origin's released clock plus its own component.

Edges
-----
* issue: op clock := release(origin)
* in-order channel (shm / FMA): at commit, the op joins the channel clock
  and becomes the new channel clock — a later op on the same
  (origin, target, channel) carries every earlier one.
* notification match / counter wait / flush / fence / send-recv match:
  the waiting rank joins the matched operation's (or packet's) clock.
* AMO: the op joins the target location's clock and becomes its new value,
  so lock/unlock chains through a lock word transfer happens-before.

Conflicting shadow accesses with no such path raise
:class:`repro.errors.RaceError`.
"""

from __future__ import annotations

import itertools
import sys
from collections.abc import Iterable

from repro.errors import RaceError
from repro.sanitizer.clocks import join_into
from repro.sanitizer.shadow import (ATOMIC, READ, WRITE,  # noqa: F401
                                    Access, Shadow)


def _short(path: str) -> str:
    parts = path.replace("\\", "/").split("/")
    return "/".join(parts[-3:]) if len(parts) > 3 else path


def call_site(skip: int = 1) -> str | None:
    """First caller frame outside the library (apps count as user code)."""
    try:
        frame = sys._getframe(skip + 1)
    except ValueError:  # pragma: no cover - shallow stack
        return None
    while frame is not None:
        fn = frame.f_code.co_filename.replace("\\", "/")
        if "/repro/" not in fn or "/repro/apps/" in fn:
            return f"{_short(fn)}:{frame.f_lineno} ({frame.f_code.co_name})"
        frame = frame.f_back
    return None


class OpClock:
    """Clock state of one in-flight remote operation."""

    __slots__ = ("actor", "vc", "site")

    def __init__(self, actor: int, vc: dict[int, int],
                 site: str | None):
        self.actor = actor
        self.vc = vc
        self.site = site


class Sanitizer:
    """Happens-before tracker shared by one cluster."""

    def __init__(self, engine, nranks: int, tracer=None):
        self.engine = engine
        self.nranks = nranks
        self.tracer = tracer
        self._vc: list[dict[int, int]] = [{r: 1} for r in range(nranks)]
        self._tick: list[int] = [1] * nranks
        self._ids = itertools.count(nranks)
        self.shadows: list[Shadow] = [Shadow() for _ in range(nranks)]
        #: last-committed-op clock per (rank, addr); feeds AMO chains and
        #: the explicit polling annotation (``Rank.san_acquire_at``).
        self._loc: dict[tuple[int, int], dict[int, int]] = {}
        #: in-order delivery clock per (origin, target, channel name)
        self._chan: dict[tuple[int, int, str], dict[int, int]] = {}
        self.races = 0

    # -- clock plumbing -----------------------------------------------------
    def release(self, rank: int) -> dict[int, int]:
        """Snapshot ``rank``'s clock and advance its own component."""
        snap = dict(self._vc[rank])
        self._tick[rank] += 1
        self._vc[rank][rank] = self._tick[rank]
        return snap

    def acquire(self, rank: int,
                vc: dict[int, int] | None) -> None:
        if vc:
            join_into(self._vc[rank], vc)

    def acquire_op(self, rank: int, op: OpClock | None) -> None:
        if op is not None:
            join_into(self._vc[rank], op.vc)

    def acquire_many(self, rank: int,
                     clocks: Iterable[dict[int, int] | None]) -> None:
        for vc in clocks:
            if vc:
                join_into(self._vc[rank], vc)

    def acquire_loc(self, rank: int, owner: int, addr: int) -> None:
        """Join the clock of the last op committed at ``(owner, addr)``.

        The blessing for polling protocols: after observing a flag value,
        the observer is ordered after the operation that stored it (and,
        through channel/flush edges, after the data it guards).
        """
        vc = self._loc.get((owner, addr))
        if vc:
            join_into(self._vc[rank], vc)

    # -- operation lifecycle ------------------------------------------------
    def op_begin(self, origin: int,
                 site: str | None = None) -> OpClock:
        vc = self.release(origin)
        actor = next(self._ids)
        vc[actor] = 1
        return OpClock(actor, vc, site if site is not None else call_site())

    def op_child(self, parent: OpClock) -> OpClock:
        """A dependent second leg (e.g. the local delivery of a get)."""
        vc = dict(parent.vc)
        actor = next(self._ids)
        vc[actor] = 1
        return OpClock(actor, vc, parent.site)

    def op_commit(self, op: OpClock, origin: int, target: int,
                  blocks: Iterable[tuple[int, int]], kind: int = WRITE,
                  chan: str | None = None, record: bool = True) -> None:
        """The op's data is visible at ``target``: finalize its clock and
        record its byte ranges in the target shadow."""
        if chan is not None:
            key = (origin, target, chan)
            prev = self._chan.get(key)
            if prev:
                join_into(op.vc, prev)
            self._chan[key] = op.vc
        for addr, nbytes in blocks:
            if not nbytes:
                continue
            self._loc[(target, addr)] = op.vc
            if record:
                self._record(target, Access(
                    kind, target, addr, nbytes, op.actor, 1,
                    self.engine.now, op.site), op.vc)

    def amo_commit(self, op: OpClock, origin: int, target: int,
                   addr: int, nbytes: int) -> None:
        """An atomic executes at the target: acquire-then-store the
        location clock so AMO chains (locks, counters) carry edges."""
        prev = self._loc.get((target, addr))
        if prev:
            join_into(op.vc, prev)
        self._loc[(target, addr)] = op.vc
        self._record(target, Access(
            ATOMIC, target, addr, nbytes, op.actor, 1,
            self.engine.now, op.site), op.vc)

    # -- CPU-side accesses --------------------------------------------------
    def cpu_access(self, rank: int, addr: int, nbytes: int,
                   kind: int, site: str | None = None) -> None:
        if not nbytes:
            return
        self._record(rank, Access(
            kind, rank, addr, nbytes, rank, self._tick[rank],
            self.engine.now, site if site is not None else call_site()),
            self._vc[rank])

    # -- conflict reporting -------------------------------------------------
    def _record(self, rank: int, rec: Access,
                vc: dict[int, int]) -> None:
        prev = self.shadows[rank].record(rec, vc)
        if prev is None:
            return
        self.races += 1
        if self.tracer is not None:
            self.tracer.emit(self.engine.now, "race", rec.rank, prev.rank,
                             rec.nbytes, prev_site=prev.site,
                             cur_site=rec.site, addr=rec.addr)
        raise RaceError(prev, rec, (
            "data race on rank %d memory:\n"
            "  previous: %s\n"
            "  current:  %s\n"
            "  no happens-before edge orders actor %s before actor %s "
            "(missing notification match, counter wait, flush, or fence "
            "between them)" % (rank, prev.describe(), rec.describe(),
                               prev.actor, rec.actor)))
