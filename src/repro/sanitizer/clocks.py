"""Vector clocks as plain dicts mapping actor id -> tick.

Actors are ranks (ids ``0..nranks-1``) plus one fresh id per in-flight
remote operation: a put handed to the NIC is *not* ordered after later CPU
work of its origin, so it gets its own clock component instead of sharing
the origin's.  Absent keys mean tick 0.
"""

from __future__ import annotations


def join_into(dst: dict[int, int], src: dict[int, int]) -> dict[int, int]:
    """Pointwise-max merge of ``src`` into ``dst`` (in place)."""
    for actor, tick in src.items():
        if dst.get(actor, 0) < tick:
            dst[actor] = tick
    return dst


def covers(vc: dict[int, int], actor: int, tick: int) -> bool:
    """True iff the event ``(actor, tick)`` happened-before clock ``vc``."""
    return vc.get(actor, 0) >= tick
