"""Happens-before race detection for the simulated fabric.

The sanitizer layers a vector-clock tracker (TSan-style, after
Gerstenberger et al.'s MPI-3 RMA memory-model rules) over the simulator:
every local window access, remote put/get/accumulate commit, notification
match, counter wait, flush, and message match becomes an event, and two
conflicting accesses with no happens-before path raise
:class:`repro.errors.RaceError`.  Enable with ``ClusterConfig(sanitize=True)``
or ``pytest --sanitize``; off by default so schedules and golden values are
untouched.
"""

from repro.sanitizer.shadow import ATOMIC, READ, WRITE, Access, Shadow
from repro.sanitizer.tracker import OpClock, Sanitizer

__all__ = [
    "ATOMIC",
    "READ",
    "WRITE",
    "Access",
    "OpClock",
    "Sanitizer",
    "Shadow",
]
