"""Shadow memory: per-rank interval records of who last touched which bytes.

One :class:`Shadow` per address space.  Records are bucketed by 256-byte
page so an access only scans records overlapping its pages.  A new access
*supersedes* an older record (removes it) when it covers the same bytes,
happens-after it, and its kind subsumes the old one — this keeps the shadow
proportional to the live communication pattern, not to simulated time.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.sanitizer.clocks import covers

#: Access kinds.  READ/READ and ATOMIC/ATOMIC pairs never conflict.
READ = 0
WRITE = 1
ATOMIC = 2

_KIND_NAMES = ("read", "write", "atomic")

_PAGE = 256


def kinds_conflict(a: int, b: int) -> bool:
    if a == READ and b == READ:
        return False
    if a == ATOMIC and b == ATOMIC:
        return False
    return True


def _kind_subsumes(new: int, old: int) -> bool:
    """A WRITE record makes any same-range record redundant; READ and
    ATOMIC records only subsume their own kind."""
    return new == WRITE or new == old


class Access:
    """One recorded access: who, what bytes, at which clock epoch."""

    __slots__ = ("kind", "rank", "addr", "nbytes", "actor", "tick",
                 "time", "site")

    def __init__(self, kind: int, rank: int, addr: int, nbytes: int,
                 actor: int, tick: int, time: float,
                 site: str | None = None):
        self.kind = kind
        self.rank = rank
        self.addr = addr
        self.nbytes = nbytes
        self.actor = actor
        self.tick = tick
        self.time = time
        self.site = site

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    def describe(self) -> str:
        who = (f"rank {self.actor}" if self.actor == self.rank
               else f"op#{self.actor} " if self.actor is not None
               else "?")
        where = f"rank {self.rank} bytes [{self.addr}, {self.end})"
        site = f" at {self.site}" if self.site else ""
        return (f"{_KIND_NAMES[self.kind]} of {where} by {who} "
                f"(t={self.time:.3f}us){site}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Access {self.describe()}>"


class Shadow:
    """Interval shadow for one rank's address space."""

    def __init__(self) -> None:
        self._buckets: dict[int, list[Access]] = {}

    def _overlapping(self, addr: int, end: int) -> Iterator[Access]:
        seen: set[int] = set()
        for page in range(addr // _PAGE, (end - 1) // _PAGE + 1):
            for rec in self._buckets.get(page, ()):
                if id(rec) in seen:
                    continue
                seen.add(id(rec))
                if rec.addr < end and addr < rec.end:
                    yield rec

    def _insert(self, rec: Access) -> None:
        for page in range(rec.addr // _PAGE, (rec.end - 1) // _PAGE + 1):
            self._buckets.setdefault(page, []).append(rec)

    def _remove(self, rec: Access) -> None:
        for page in range(rec.addr // _PAGE, (rec.end - 1) // _PAGE + 1):
            bucket = self._buckets.get(page)
            if bucket is not None:
                try:
                    bucket.remove(rec)
                except ValueError:
                    pass

    def record(self, rec: Access,
               vc: dict[int, int]) -> Access | None:
        """Record ``rec`` (performed at clock ``vc``); return the first
        conflicting prior access with no happens-before edge, or None."""
        stale: list[Access] = []
        for old in self._overlapping(rec.addr, rec.end):
            ordered = (old.actor == rec.actor and old.tick <= rec.tick) \
                or covers(vc, old.actor, old.tick)
            if not ordered and kinds_conflict(old.kind, rec.kind):
                return old
            if (ordered and old.addr >= rec.addr and old.end <= rec.end
                    and _kind_subsumes(rec.kind, old.kind)):
                stale.append(old)
        for old in stale:
            self._remove(old)
        self._insert(rec)
        return None
