"""repro — a full reproduction of *Notified Access* (Belli & Hoefler,
IPDPS 2015).

The package implements, in pure Python over a deterministic discrete-event
simulation:

* ``repro.sim`` — the discrete-event simulation kernel,
* ``repro.memory`` — address spaces, allocators, and a cache-line model,
* ``repro.network`` — LogGP network, NICs (uGNI-like FMA/BTE), completion
  queues, and an XPMEM-like shared-memory transport,
* ``repro.mpi`` — a message-passing runtime (eager/rendezvous, matching,
  collectives),
* ``repro.rma`` — MPI-3 One Sided windows and synchronization (fence, PSCW,
  flush, lock/unlock),
* ``repro.core`` — the paper's contribution: *Notified Access* with
  ``<source, tag>`` matched, counted notifications,
* ``repro.faults`` — deterministic fault injection (drop/duplicate/delay/
  stall/node failure) with retry, backoff, and exactly-once dedup,
* ``repro.models`` — closed-form LogGP performance models and calibration,
* ``repro.apps`` — the paper's applications (ping-pong, overlap, pipelined
  stencil, reduction tree, task-based Cholesky),
* ``repro.bench`` — the experiment harness regenerating every figure/table.

Quickstart::

    from repro import Cluster, run_ranks

    # see examples/quickstart.py for a complete producer-consumer program
"""

from repro._version import __version__
from repro.cluster import Cluster, ClusterConfig, Rank, run_ranks
from repro.errors import (
    AllocationError,
    FaultError,
    MatchingError,
    ReproError,
    RmaEpochError,
    SimulationError,
)
from repro.faults import FaultPlan

__all__ = [
    "__version__",
    "Cluster",
    "ClusterConfig",
    "Rank",
    "run_ranks",
    "ReproError",
    "SimulationError",
    "RmaEpochError",
    "MatchingError",
    "AllocationError",
    "FaultError",
    "FaultPlan",
]
