"""Export a traced run as a Chrome trace-event file.

Load the resulting JSON in ``chrome://tracing`` / Perfetto to see the wire
transactions of a simulated run on a per-rank timeline.  Requires the
cluster to have been built with ``trace=True``.
"""

from __future__ import annotations

import json
from repro.errors import ReproError
from repro.sim.trace import Tracer


def to_chrome_trace(tracer: Tracer,
                    duration_floor_us: float = 0.05) -> list[dict]:
    """Convert trace records into chrome trace-event dicts.

    Each wire record becomes a complete ('X') event on the *source* rank's
    row; the destination is in the args.  Zero-length events get a small
    floor so they render.
    """
    if not tracer.enabled:
        raise ReproError(
            "tracer has no records; build the cluster with trace=True")
    events = []
    for rec in tracer.records:
        events.append({
            "name": rec.detail.get("op", rec.kind),
            "cat": rec.kind,
            "ph": "X",
            "ts": rec.time,                       # already µs
            "dur": max(rec.nbytes * 1e-4, duration_floor_us),
            "pid": 0,
            "tid": rec.src,
            "args": {"dst": rec.dst, "nbytes": rec.nbytes,
                     **{k: v for k, v in rec.detail.items()
                        if isinstance(v, (str, int, float, bool))}},
        })
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the number of events."""
    events = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return len(events)
