"""Sharded conservative-parallel DES core (coordinator + worker protocol).

One Python process is the hard wall for O(10k)-rank sweeps: PR 4/PR 6 made
the single engine fast, but rank programs are embarrassingly parallel in
*space* — each rank's NIC, address space, CQ, and matching state is
touched only by local events plus fabric transfers.  This module
partitions ranks node-aligned across ``shards`` forked worker processes,
each running its own :class:`~repro.sim.engine.Engine` + scheduler +
fabric slice, and synchronizes them with a conservative (CMB-style)
time-window protocol:

* **Lookahead** ``W``: every cross-shard effect rides a uGNI transfer, so
  it takes effect no earlier than its issue time plus the engine's wire
  latency; ``W = min(L_fma, L_bte)`` (:meth:`ShardRouting.lookahead`).
* **Windows**: the coordinator collects every shard's next-event time,
  computes the global minimum ``T``, and grants all shards the same
  bound ``T + W``.  Any packet generated inside the window takes effect
  at or after ``T + W`` (its issue time is ``>= T``), i.e. at or after
  the boundary where it is delivered — time never runs backwards.  The
  bound must use the *global* minimum: granting shard ``i``
  ``min_{j!=i}(next_j) + W`` is unsound because a reply chain through a
  third shard with an early event can land below ``i``'s horizon.
* **Boundaries**: shards exchange serializable
  :class:`~repro.network.shardlink.ShardPacket` messages at window
  boundaries, processed in deterministic ``(sort_time, origin, op_id)``
  order; response packets (acks, get data, fetched AMO values) ship in
  sub-round exchanges at the same boundary until no packets remain in
  flight.

``shards=1`` never enters this module (:func:`repro.cluster.run_ranks`
dispatches only for ``shards > 1``), so the serial path stays
byte-identical to the pre-shard engine.  With ``shards > 1`` the
*virtual-time* results are identical to serial — including the arrival
order of overlapping incast flows — because every inter-node operation
takes the packet path (same-shard inter-node ops loop back through the
coordinator), so each target NIC's receive-link reservations are applied
in global issue-time order exactly as the serial fabric interleaves
them.  The one caveat is an exact *tie*: two inter-node operations
aimed at the same node and issued at the bit-identical virtual time
order by ``(origin rank, op id)`` here, while serial orders them by its
global event counter (e.g. whichever producer a barrier happened to
wake first) — both deterministic, possibly different.  Ties require
producers with literally identical timing; any compute skew (the DHT
motif's jitter, real per-rank work) keeps runs exact.  The second
caveat is *gets under contention*: serial ``Fabric.get`` plans ahead,
reserving the target's tx engine and the origin's rx link at issue
time, while here the get only reaches the target at a boundary — so a
cross-shard get whose response leg contends with the target's own
traffic may commit at a different virtual time than serial.  Gets are
exact in uncontended windows (every golden-trace test that issues
them); latency-measuring workloads that need byte-identical sharded
runs should serve reads as notified-put RPC instead (see
``repro.apps.services.kv`` and docs/architecture.md §12).  Unsupported
under sharding: probabilistic fault injection (drop/dup/delay/stall draw
from one stream in serial issue order), lossy fabrics, ``reliable=False``
(rejected by :func:`repro.cluster.effective_shards`), direct cross-shard
object access (notified counters / GASPI registers — fails loudly), and
the sanitizer (workers silently build without it; run serial to
sanitize).  Node-failure-only fault plans (``FaultPlan.shardable``) *are*
supported: the node-down verdict is a pure (rank, time) table lookup with
no RNG draws, the origin-side lost branch mirrors the serial one byte for
byte, and per-worker injector counters are summed at merge — so faulty
sharded runs stay byte-identical with serial.
"""

from __future__ import annotations

import gc
import itertools
import multiprocessing
import time
import traceback
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.cluster import Cluster, ClusterConfig, Rank
from repro.errors import DeadlockError, NetworkError, SimulationError
from repro.memory.address import AddressSpace
from repro.network.fabric import (
    AMO_REQUEST_BYTES,
    AMO_RESPONSE_BYTES,
    GET_REQUEST_BYTES,
    Fabric,
    OpHandle,
    SysPacket,
)
from repro.network.shardlink import (
    RankTable,
    ShardPacket,
    ShardRouting,
    partition_summary,
)
from repro.network.topology import Machine
from repro.rma.window import WindowRegistry, _SharedWin
from repro.sim.engine import Event, add_external_events, events_scheduled

#: hard cap on boundary sub-round exchanges per run (a runaway-protocol
#: backstop far above anything a real program produces)
MAX_EXCHANGES = 10_000_000

#: accumulated critical-path CPU seconds across this process's sharded
#: runs: per run, max over workers of the worker's process CPU time plus
#: the coordinator's own CPU time.  This is the projected wall time of
#: the run on a machine with one dedicated core per shard — the honest
#: parallel-throughput denominator when the host machine has fewer cores
#: than shards (workers timesharing a core inflate wall time without
#: doing any extra work).  Mirrors ``engine.events_scheduled()``.
_cp_seconds_total = 0.0


def critical_path_seconds() -> float:
    """Accumulated sharded critical-path CPU seconds in this process."""
    return _cp_seconds_total


# ---------------------------------------------------------------------------
# Shard-local fabric: cross-shard ops become packets
# ---------------------------------------------------------------------------
class ShardFabric(Fabric):
    """A fabric slice owning one shard's NICs and address spaces.

    Operations between two local ranks take the inherited serial path
    unchanged.  Cross-shard operations split at the one explicit message
    boundary: the origin prices its own legs (injection, CPU busy, ideal
    commit) exactly like the serial fabric, and ships a packet; the
    target applies receive-side state (rx-link reservation, response
    engine planning, payload commit, notification post) when the packet
    is processed at a window boundary, in deterministic order.
    """

    def __init__(self, engine, machine, spaces, routing: ShardRouting,
                 shard: int, **kw):
        local = routing.ranks_of(shard)
        super().__init__(engine, machine, spaces, local_ranks=local, **kw)
        assert self.san is None, "sharded fabrics run unsanitized"
        assert self.faults is None or self.faults.plan.shardable, (
            "sharded fabrics only support node-failure-only fault plans "
            "(FaultPlan.shardable)")
        self.routing = routing
        self.shard = shard
        #: packets awaiting shipment at the next boundary
        self._outbox: list[ShardPacket] = []
        #: op_id -> pending completion state (responses resolve these)
        self._pending: dict[int, tuple] = {}
        self._op_ids = itertools.count(1)
        #: set by ShardCluster (win-reg packets resolve through it)
        self.win_registry = None
        self._handlers: dict[str, Callable[[ShardPacket], None]] = {
            "put": self._recv_put,
            "get": self._recv_get,
            "amo": self._recv_amo,
            "sys": self._recv_sys,
            "ack": self._recv_ack,
            "get-resp": self._recv_get_resp,
            "amo-resp": self._recv_amo_resp,
            "win-reg": self._recv_win_reg,
        }

    # -- boundary plumbing ---------------------------------------------
    def drain_outbox(self) -> list[ShardPacket]:
        out, self._outbox = self._outbox, []
        return out

    def process_inbox(self, packets: list[ShardPacket]) -> None:
        """Apply one boundary batch in deterministic order."""
        packets.sort(key=lambda p: (p.sort_time, p.origin, p.op_id))
        handlers = self._handlers
        for pkt in packets:
            handlers[pkt.ptype](pkt)

    def _ship(self, pkt: ShardPacket) -> None:
        self._outbox.append(pkt)

    def _direct(self, origin: int, target: int) -> bool:
        """True when the op may take the inherited serial path.

        Only same-node (shared-memory) operations run directly: EVERY
        inter-node op goes through the packet path, including ones whose
        target lives in this same shard (the coordinator loops those back
        at the next boundary).  Uniformity is what makes sharded runs
        exact rather than approximate — a target NIC's receive-link
        reservations must happen in global issue-time order, and mixing
        issue-time reservations (serial path) with boundary-time
        reservations (packet path) at one NIC would reorder overlapping
        incast flows relative to the serial schedule.
        """
        return self.machine.same_node(origin, target)

    # -- RDMA put -------------------------------------------------------
    def put(self, origin: int, target: int, target_addr: int,
            data: np.ndarray, *, win_id: int | None = None,
            immediate: int | None = None, accumulate: str | None = None,
            acc_dtype=np.float64,
            scatter: list[tuple[int, int]] | None = None,
            san_track: bool = True) -> OpHandle:
        if self._direct(origin, target):
            return super().put(origin, target, target_addr, data,
                               win_id=win_id, immediate=immediate,
                               accumulate=accumulate, acc_dtype=acc_dtype,
                               scatter=scatter, san_track=san_track)
        raw = np.ascontiguousarray(data).view(np.uint8).ravel().copy()
        nbytes = raw.nbytes
        if scatter is not None:
            if sum(b for _, b in scatter) != nbytes:
                raise NetworkError(
                    "scatter-gather list does not cover the payload")
            target_addr = scatter[0][0] if scatter else target_addr
        nic = self.nics[origin]
        nic.ops_issued += 1
        fate = self._fate(origin, target, nbytes, False)
        if fate is not None and fate.lost:
            # Mirrors the serial lost branch exactly: the origin engine is
            # still reserved (plan without the hop), local_done fires at
            # inject_end, and no packet ships — the payload never commits.
            eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
            plan = eng.plan(nbytes)
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             nbytes, op="put", medium="ugni",
                             notified=immediate is not None, lost=True)
            local_done = Event(self.engine, "put.local")
            remote_done = Event(self.engine, "put.remote")
            self._at(plan.inject_end, lambda: local_done.succeed(None))
            self._fail_lost("put", origin, target, fate, remote_done)
            return OpHandle("put", plan.cpu_busy, local_done, remote_done,
                            nbytes=nbytes, target=target,
                            commit_at=self.engine.now + fate.fail_after,
                            failed=True)
        # Origin-side pricing identical to the serial inter-node path
        # byte for byte (plan + hop; drop penalty is zero by gating).
        eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
        plan = eng.plan(nbytes,
                        extra_delay=self._hop_extra(origin, target))
        self.tracer.emit(self.engine.now, "wire", origin, target, nbytes,
                         op="put", medium="ugni",
                         notified=immediate is not None)
        local_done = Event(self.engine, "put.local")
        remote_done = Event(self.engine, "put.remote")
        self._at(plan.inject_end, lambda: local_done.succeed(None))
        op_id = next(self._op_ids)
        self._pending[op_id] = ("put", remote_done)
        self._ship(ShardPacket(
            ptype="put", origin=origin, target=target, op_id=op_id,
            sort_time=self.engine.now, nbytes=nbytes,
            t_commit=plan.commit_at, G=eng.params.G, L=eng.params.L,
            target_addr=target_addr, immediate=immediate, win_id=win_id,
            accumulate=accumulate, acc_dtype=str(np.dtype(acc_dtype)),
            scatter=scatter, data=raw))
        return OpHandle("put", plan.cpu_busy, local_done, remote_done,
                        nbytes=nbytes, target=target,
                        commit_at=plan.commit_at)

    def _recv_put(self, pkt: ShardPacket) -> None:
        """Target-side half of a cross-shard put, at boundary time."""
        commit = self._rx_reserve(pkt.target, pkt.t_commit, pkt.nbytes,
                                  pkt.G)
        space = self.spaces[pkt.target]
        raw = pkt.data
        nbytes, target_addr = pkt.nbytes, pkt.target_addr
        accumulate, scatter = pkt.accumulate, pkt.scatter

        def commit_fn() -> None:
            if not nbytes:
                return
            if scatter is not None:
                pos = 0
                for addr, blen in scatter:
                    space.copy_in(addr, raw[pos:pos + blen])
                    pos += blen
                return
            if accumulate is None or accumulate == "replace":
                space.copy_in(target_addr, raw)
                return
            ufunc = {"sum": np.add, "max": np.maximum,
                     "min": np.minimum}.get(accumulate)
            if ufunc is None:
                raise NetworkError(f"unknown accumulate op {accumulate!r}")
            dt = np.dtype(pkt.acc_dtype)
            dst = space.mem[target_addr:target_addr + nbytes].view(dt)
            ufunc(dst, raw.view(dt), out=dst)

        # Same relative order as the serial fabric: payload commit first,
        # then the notification post, at the same timestamp.
        self._at(commit, commit_fn)
        if pkt.immediate is not None:
            self._post_notification(pkt.origin, pkt.target, "put",
                                    pkt.nbytes, pkt.immediate, pkt.win_id,
                                    pkt.target_addr, commit,
                                    same_node=False)
        self._ship(ShardPacket(
            ptype="ack", origin=pkt.target, target=pkt.origin,
            op_id=pkt.op_id, sort_time=commit, t_exec=commit + pkt.L))

    def _recv_ack(self, pkt: ShardPacket) -> None:
        """Origin-side completion of a put/sys: remote_done at ack time."""
        kind, remote_done = self._pending.pop(pkt.op_id)
        self._at(pkt.t_exec, lambda: remote_done.succeed(None))

    # -- RDMA get -------------------------------------------------------
    def get(self, origin: int, target: int, target_addr: int, nbytes: int,
            local_addr: int, *, win_id: int | None = None,
            immediate: int | None = None,
            gather: list[tuple[int, int]] | None = None,
            scatter: list[tuple[int, int]] | None = None) -> OpHandle:
        if self._direct(origin, target):
            return super().get(origin, target, target_addr, nbytes,
                               local_addr, win_id=win_id,
                               immediate=immediate, gather=gather,
                               scatter=scatter)
        if not self.params.reliable:  # pragma: no cover - gated upstream
            raise NetworkError(
                "cross-shard notified gets require reliable=True")
        for name, sg in (("gather", gather), ("scatter", scatter)):
            if sg is not None and sum(b for _, b in sg) != nbytes:
                raise NetworkError(
                    f"{name} list does not cover the {nbytes}-byte payload")
        if gather is not None and gather:
            target_addr = gather[0][0]
        nic = self.nics[origin]
        nic.ops_issued += 1
        fate = self._fate(origin, target, nbytes, False)
        if fate is not None and fate.lost:
            cpu_busy = nic.fma.plan(GET_REQUEST_BYTES).cpu_busy
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             GET_REQUEST_BYTES, op="get-req",
                             medium="ugni", lost=True)
            local_done = Event(self.engine, "get.local")
            remote_done = Event(self.engine, "get.remote")
            self._fail_lost("get", origin, target, fate,
                            local_done, remote_done)
            return OpHandle("get", cpu_busy, local_done, remote_done,
                            nbytes=nbytes, target=target,
                            commit_at=self.engine.now + fate.fail_after,
                            failed=True)
        hop = self._hop_extra(origin, target)
        req = nic.fma.plan(GET_REQUEST_BYTES, extra_delay=hop)
        self.tracer.emit(self.engine.now, "wire", origin, target,
                         GET_REQUEST_BYTES, op="get-req", medium="ugni")
        self.tracer.emit(self.engine.now, "wire", target, origin, nbytes,
                         op="get-resp", medium="ugni",
                         notified=immediate is not None)
        local_done = Event(self.engine, "get.local")
        remote_done = Event(self.engine, "get.remote")
        op_id = next(self._op_ids)
        # commit_at must end up as the origin-side data-landed time to
        # match the serial fabric; that time is only known once the
        # response leg is planned, so _recv_get_resp patches the handle.
        handle = OpHandle("get", req.cpu_busy, local_done, remote_done,
                          nbytes=nbytes, target=target,
                          commit_at=req.commit_at)
        self._pending[op_id] = ("get", local_done, remote_done, scatter,
                                local_addr, handle)
        self._ship(ShardPacket(
            ptype="get", origin=origin, target=target, op_id=op_id,
            sort_time=self.engine.now, nbytes=nbytes,
            t_exec=req.commit_at, hop=hop, target_addr=target_addr,
            immediate=immediate, win_id=win_id, gather=gather))
        return handle

    def _recv_get(self, pkt: ShardPacket) -> None:
        """Target-side half of a cross-shard get: plan + serve + respond."""
        tnic = self.nics[pkt.target]
        teng = tnic.fma if pkt.nbytes <= self.params.fma_max else tnic.bte
        resp = teng.plan(pkt.nbytes, extra_delay=pkt.hop,
                         not_before=pkt.t_exec)
        serve_at = resp.inject_end
        tspace = self.spaces[pkt.target]
        gather, target_addr, nbytes = pkt.gather, pkt.target_addr, pkt.nbytes

        def serve() -> None:
            if not nbytes:
                snap = np.empty(0, np.uint8)
            elif gather is not None:
                snap = np.concatenate(
                    [tspace.copy_out(a, b) for a, b in gather])
            else:
                snap = tspace.copy_out(target_addr, nbytes)
            self._ship(ShardPacket(
                ptype="get-resp", origin=pkt.target, target=pkt.origin,
                op_id=pkt.op_id, sort_time=serve_at, nbytes=nbytes,
                t_commit=resp.commit_at, G=teng.params.G, data=snap))

        self._at(serve_at, serve)
        if pkt.immediate is not None:
            # reliable=True: the target-side notification fires at serve.
            self._post_notification(pkt.origin, pkt.target, "get", nbytes,
                                    pkt.immediate, pkt.win_id,
                                    pkt.target_addr, serve_at,
                                    same_node=False)

    def _recv_get_resp(self, pkt: ShardPacket) -> None:
        """Origin-side delivery of the get data."""
        kind, local_done, remote_done, scatter, local_addr, handle = \
            self._pending.pop(pkt.op_id)
        data_at = self._rx_reserve(pkt.target, pkt.t_commit, pkt.nbytes,
                                   pkt.G)
        # Serial Fabric.get reports commit_at = data_at (data locally
        # available); mirror it so cross-shard handles read the same.
        handle.commit_at = data_at
        ospace = self.spaces[pkt.target]
        snap = pkt.data
        nbytes = pkt.nbytes

        def deliver() -> None:
            if not nbytes:
                return
            if scatter is not None:
                pos = 0
                for addr, blen in scatter:
                    ospace.copy_in(addr, snap[pos:pos + blen])
                    pos += blen
            else:
                ospace.copy_in(local_addr, snap)

        self._at_batch(data_at, (
            deliver,
            lambda: local_done.succeed(None),
            lambda: remote_done.succeed(None),
        ))

    # -- atomics --------------------------------------------------------
    def amo(self, origin: int, target: int, target_addr: int, op: str,
            operand: int, compare: int | None = None, *,
            dtype=np.int64, win_id: int | None = None,
            immediate: int | None = None) -> OpHandle:
        if self._direct(origin, target):
            return super().amo(origin, target, target_addr, op, operand,
                               compare, dtype=dtype, win_id=win_id,
                               immediate=immediate)
        if op not in ("sum", "replace", "cas", "no_op"):
            raise NetworkError(f"unknown atomic op {op!r}")
        nic = self.nics[origin]
        nic.ops_issued += 1
        itemsize = np.dtype(dtype).itemsize
        fate = self._fate(origin, target, itemsize, False)
        if fate is not None and fate.lost:
            cpu_busy = nic.fma.plan(AMO_REQUEST_BYTES).cpu_busy
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             AMO_REQUEST_BYTES, op=f"amo-{op}",
                             medium="ugni", lost=True)
            local_done = Event(self.engine, "amo.local")
            remote_done = Event(self.engine, "amo.remote")
            self._fail_lost("amo", origin, target, fate,
                            local_done, remote_done)
            return OpHandle("amo", cpu_busy, local_done, remote_done,
                            nbytes=itemsize, target=target,
                            commit_at=self.engine.now + fate.fail_after,
                            failed=True)
        hop = self._hop_extra(origin, target)
        req = nic.fma.plan(AMO_REQUEST_BYTES, extra_delay=hop)
        exec_at = req.commit_at
        done_at = exec_at + self.params.fma.L + hop
        self.tracer.emit(self.engine.now, "wire", origin, target,
                         AMO_REQUEST_BYTES, op=f"amo-{op}", medium="ugni")
        self.tracer.emit(self.engine.now, "wire", target, origin,
                         AMO_RESPONSE_BYTES, op="amo-resp", medium="ugni")
        local_done = Event(self.engine, "amo.local")
        remote_done = Event(self.engine, "amo.remote")
        op_id = next(self._op_ids)
        self._pending[op_id] = ("amo", local_done, remote_done, done_at)
        self._ship(ShardPacket(
            ptype="amo", origin=origin, target=target, op_id=op_id,
            sort_time=self.engine.now, nbytes=itemsize, t_exec=exec_at,
            target_addr=target_addr, amo_op=op, operand=operand,
            compare=compare, acc_dtype=str(np.dtype(dtype)),
            immediate=immediate, win_id=win_id))
        return OpHandle("amo", req.cpu_busy, local_done, remote_done,
                        nbytes=itemsize, target=target, commit_at=exec_at)

    def _recv_amo(self, pkt: ShardPacket) -> None:
        tspace = self.spaces[pkt.target]
        dt = np.dtype(pkt.acc_dtype)
        itemsize = dt.itemsize
        addr, op = pkt.target_addr, pkt.amo_op

        def execute() -> None:
            view = tspace.mem[addr:addr + itemsize].view(dt)
            old = view[0].item()
            if op == "sum":
                view[0] = old + pkt.operand
            elif op == "replace":
                view[0] = pkt.operand
            elif op == "cas":
                if old == pkt.compare:
                    view[0] = pkt.operand
            self._ship(ShardPacket(
                ptype="amo-resp", origin=pkt.target, target=pkt.origin,
                op_id=pkt.op_id, sort_time=pkt.t_exec, value=old))

        self._at(pkt.t_exec, execute)
        if pkt.immediate is not None:
            self._post_notification(pkt.origin, pkt.target, "amo",
                                    itemsize, pkt.immediate, pkt.win_id,
                                    addr, pkt.t_exec, same_node=False)

    def _recv_amo_resp(self, pkt: ShardPacket) -> None:
        kind, local_done, remote_done, done_at = \
            self._pending.pop(pkt.op_id)
        old = pkt.value
        self._at_batch(done_at, (
            lambda: local_done.succeed(None),
            lambda: remote_done.succeed(old),
        ))

    # -- software protocol messages ------------------------------------
    def send_sys(self, origin: int, target: int, ptype: str, nbytes: int,
                 payload: dict | None = None,
                 data: np.ndarray | None = None) -> OpHandle:
        if self._direct(origin, target):
            return super().send_sys(origin, target, ptype, nbytes,
                                    payload=payload, data=data)
        nic = self.nics[origin]
        fate = self._fate(origin, target, nbytes, False)
        if fate is not None and fate.lost:
            eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
            plan = eng.plan(nbytes)
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             nbytes, op=f"sys-{ptype}", medium="ugni",
                             lost=True)
            local_done = Event(self.engine, "sys.local")
            remote_done = Event(self.engine, "sys.remote")
            self._at(plan.inject_end, lambda: local_done.succeed(None))
            self._fail_lost(f"sys-{ptype}", origin, target, fate,
                            remote_done)
            return OpHandle(f"sys-{ptype}", plan.cpu_busy, local_done,
                            remote_done, nbytes=nbytes, target=target,
                            failed=True)
        eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
        plan = eng.plan(nbytes,
                        extra_delay=self._hop_extra(origin, target))
        self.tracer.emit(self.engine.now, "wire", origin, target, nbytes,
                         op=f"sys-{ptype}", medium="ugni")
        snapshot = None if data is None else np.ascontiguousarray(
            data).view(np.uint8).ravel().copy()
        local_done = Event(self.engine, "sys.local")
        remote_done = Event(self.engine, "sys.remote")
        self._at(plan.inject_end, lambda: local_done.succeed(None))
        op_id = next(self._op_ids)
        self._pending[op_id] = ("sys", remote_done)
        self._ship(ShardPacket(
            ptype="sys", origin=origin, target=target, op_id=op_id,
            sort_time=self.engine.now, nbytes=nbytes,
            t_commit=plan.commit_at, G=eng.params.G, L=eng.params.L,
            sys_ptype=ptype, payload=dict(payload or {}), data=snapshot))
        return OpHandle(f"sys-{ptype}", plan.cpu_busy, local_done,
                        remote_done, nbytes=nbytes, target=target)

    def _recv_sys(self, pkt: ShardPacket) -> None:
        commit = self._rx_reserve(pkt.target, pkt.t_commit, pkt.nbytes,
                                  pkt.G)
        tnic = self.nics[pkt.target]

        def deliver() -> None:
            sp = SysPacket(ptype=pkt.sys_ptype, source=pkt.origin,
                           target=pkt.target, nbytes=pkt.nbytes,
                           payload=dict(pkt.payload), data=pkt.data,
                           time=self.engine.now)
            tnic.sys_inbox.put(sp)
            tnic.sys_arrival.fire(sp)
            if self.on_sys_arrival is not None:
                self.on_sys_arrival(pkt.target, sp)

        self._at(commit, deliver)
        self._ship(ShardPacket(
            ptype="ack", origin=pkt.target, target=pkt.origin,
            op_id=pkt.op_id, sort_time=commit, t_exec=commit + pkt.L))

    # -- collective window registration --------------------------------
    def broadcast_win_reg(self, call_idx: int, rank: int, header: int,
                          base: int, size: int, disp_unit: int) -> None:
        """Ship this rank's window base to every other shard.

        The collective barrier inside ``win_allocate`` guarantees the
        broadcast lands before any remote access: the barrier's causal
        chain from the registering rank crosses a shard boundary no
        earlier than the boundary that carries this packet.
        """
        for s in range(self.routing.shards):
            if s == self.shard:
                continue
            self._ship(ShardPacket(
                ptype="win-reg", origin=rank, target=-1,
                op_id=next(self._op_ids), sort_time=self.engine.now,
                shard=s,
                payload={"call_idx": call_idx, "header": header,
                         "base": base, "size": size,
                         "disp_unit": disp_unit}))

    def _recv_win_reg(self, pkt: ShardPacket) -> None:
        p = pkt.payload
        self.win_registry.register_remote(
            p["call_idx"], pkt.origin, p["header"], p["base"], p["size"],
            p["disp_unit"])


# ---------------------------------------------------------------------------
# Shard-aware window registry
# ---------------------------------------------------------------------------
class _ShardSharedWin(_SharedWin):
    """A shared-window record that broadcasts local registrations."""

    def __init__(self, win_id: int, nranks: int, call_idx: int,
                 fabric: ShardFabric):
        super().__init__(win_id, nranks)
        self._call_idx = call_idx
        self._fabric = fabric

    def register(self, rank: int, region, disp_unit: int) -> None:
        super().register(rank, region, disp_unit)
        self._fabric.broadcast_win_reg(
            self._call_idx, rank, self.header[rank], self.bases[rank],
            self.sizes[rank], disp_unit)

    def target_addr(self, target: int, disp: int, nbytes: int) -> int:
        try:
            return super().target_addr(target, disp, nbytes)
        except KeyError:
            raise NetworkError(
                f"window {self.win_id}: base address of rank {target} is "
                f"not known in this shard (the win_allocate barrier must "
                f"complete before remote accesses)") from None


class ShardWindowRegistry(WindowRegistry):
    """Positional window identity across shards.

    Window ids stay consistent without coordination: windows are
    allocated collectively in the same positional order on every rank,
    and the allocation barrier of call ``k`` completes before any rank
    reaches call ``k+1``, so every shard first encounters the calls in
    index order and the per-shard id counters agree.
    """

    def __init__(self, nranks: int, fabric: ShardFabric):
        super().__init__(nranks)
        self._fabric = fabric

    def _shared_for(self, idx: int) -> _ShardSharedWin:
        shared = self._shared.get(idx)
        if shared is None:
            shared = _ShardSharedWin(next(self._ids), self.nranks, idx,
                                     self._fabric)
            self._shared[idx] = shared
        return shared

    def attach(self, rank: int) -> _ShardSharedWin:
        idx = self._call_idx[rank]
        self._call_idx[rank] += 1
        return self._shared_for(idx)

    def register_remote(self, call_idx: int, rank: int, header: int,
                        base: int, size: int, disp_unit: int) -> None:
        shared = self._shared_for(call_idx)
        shared.header[rank] = header
        shared.bases[rank] = base
        shared.sizes[rank] = size
        shared.disp_units[rank] = disp_unit


# ---------------------------------------------------------------------------
# Shard-local cluster
# ---------------------------------------------------------------------------
class ShardCluster(Cluster):
    """One worker's view: full topology, shard-local everything else."""

    def __init__(self, config: ClusterConfig, routing: ShardRouting,
                 shard: int):
        self.routing = routing
        self.shard = shard
        self._local = routing.ranks_of(shard)
        super().__init__(config)

    def _build_sanitizer(self):
        # The sanitizer's vector clocks span all ranks in one process;
        # sharded workers run without it (run serial to sanitize).
        return None

    def _build_spaces(self):
        return RankTable(
            {r: AddressSpace(r, self.cfg.space_bytes) for r in self._local},
            self.cfg.nranks, "address space")

    def _build_fabric(self) -> ShardFabric:
        return ShardFabric(self.engine, self.machine, self.spaces,
                           self.routing, self.shard,
                           params=self.cfg.params, tracer=self.tracer,
                           seed=self.cfg.seed,
                           fault_plan=self.cfg.faults)

    def _build_win_registry(self) -> ShardWindowRegistry:
        reg = ShardWindowRegistry(self.cfg.nranks, self.fabric)
        self.fabric.win_registry = reg
        return reg

    def _build_ranks(self):
        return RankTable({r: Rank(self, r) for r in self._local},
                         self.cfg.nranks, "rank context")

    def _endpoint_table(self):
        return RankTable({c.rank: c.endpoint for c in self.ranks},
                         self.cfg.nranks, "endpoint")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _shard_worker(conn, shard: int, config: ClusterConfig,
                  routing: ShardRouting, programs, args: tuple) -> None:
    """Worker body: build the shard-local cluster and obey the protocol.

    Messages from the coordinator: ``("run", until)`` advances the local
    engine, ``("deliver", packets)`` applies a boundary batch, and
    ``("finish",)`` collects results.  Every run/deliver is answered with
    ``("sync", outbox, next_event_time)``.
    """
    try:
        # the fork inherits the coordinator's whole heap: freeze it so
        # this worker's gc never traverses inherited objects (and never
        # copy-on-write-faults their pages) — a large prior simulation
        # in the parent would otherwise multiply worker CPU
        gc.freeze()
        events_base = events_scheduled()
        cpu_base = time.process_time()
        cluster = ShardCluster(config, routing, shard)
        engine, fabric = cluster.engine, cluster.fabric
        procs = {}
        for r in routing.ranks_of(shard):
            prog = programs if callable(programs) else programs[r]
            procs[r] = engine.process(prog(cluster.ranks[r], *args),
                                      name=f"rank{r}")
        conn.send(("sync", [], engine.peek()))
        while True:
            msg = conn.recv()
            if msg[0] == "run":
                if msg[1] > engine.now:
                    engine.run(until=msg[1], detect_deadlock=False)
                conn.send(("sync", fabric.drain_outbox(), engine.peek()))
            elif msg[0] == "deliver":
                fabric.process_inbox(msg[1])
                conn.send(("sync", fabric.drain_outbox(), engine.peek()))
            elif msg[0] == "finish":
                results = {r: (p.value if p.triggered else None)
                           for r, p in procs.items()}
                blocked = [p.name or f"rank{r}"
                           for r, p in procs.items() if p.is_alive]
                conn.send(("done", results, blocked, cluster.stats(),
                           events_scheduled() - events_base, engine.now,
                           time.process_time() - cpu_base))
                return
            else:  # pragma: no cover - protocol bug guard
                raise SimulationError(f"unknown coordinator op {msg[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - coordinator already gone
            pass


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
class ShardedRun:
    """Summary object returned by :func:`run_sharded` in place of the
    serial :class:`~repro.cluster.Cluster` (same ``.cfg`` / ``.time`` /
    ``.stats()`` surface, plus shard-protocol counters)."""

    def __init__(self, cfg: ClusterConfig, shards: int, lookahead: float,
                 time_us: float, stats: dict[str, Any], windows: int,
                 exchanges: int, events: int,
                 cpu_s: list[float] | None = None,
                 critical_path_s: float = 0.0):
        self.cfg = cfg
        self.shards = shards
        self.lookahead = lookahead
        self._time = time_us
        self._stats = stats
        self.windows = windows
        self.exchanges = exchanges
        self.events = events
        #: per-worker process CPU seconds (build + simulation)
        self.cpu_s = cpu_s or []
        #: max worker CPU + coordinator CPU: projected wall time on one
        #: dedicated core per shard
        self.critical_path_s = critical_path_s

    @property
    def time(self) -> float:
        return self._time

    def stats(self) -> dict[str, Any]:
        return self._stats


def _merge_stats(parts: list[dict[str, Any]], run: "ShardedRun") \
        -> dict[str, Any]:
    """Fold per-worker partial stats into one cluster-level summary."""
    out: dict[str, Any] = {}
    for st in parts:
        for key, val in st.items():
            if key == "faults":
                # Every worker carries the same counter keys; ``update``
                # would keep only the last worker's values, so sum them
                # per key to match the serial injector's single ledger.
                acc = out.setdefault(key, {})
                for k, v in val.items():
                    acc[k] = acc.get(k, 0) + v
            elif isinstance(val, dict):
                out.setdefault(key, {}).update(val)
            elif key == "time_us":
                out[key] = max(out.get(key, 0.0), val)
            else:
                out[key] = out.get(key, 0) + val
    out["shards"] = run.shards
    out["shard_windows"] = run.windows
    out["shard_exchanges"] = run.exchanges
    out["shard_cpu_s"] = run.cpu_s
    out["shard_critical_path_s"] = run.critical_path_s
    return out


def run_sharded(program, args: Sequence[Any], config: ClusterConfig,
                shards: int) -> tuple[list[Any], ShardedRun]:
    """Run one rank program over ``shards`` conservative-parallel workers.

    Mirrors ``Cluster.run`` semantics: returns per-rank results,
    raises :class:`DeadlockError` when processes hang (unless
    ``config.detect_deadlock`` is off), and re-raises worker failures as
    :class:`SimulationError` carrying the worker traceback.
    """
    machine = Machine(config.nranks, config.ranks_per_node,
                      nodes_per_group=config.nodes_per_group)
    routing = ShardRouting(machine, shards)
    lookahead = routing.lookahead(config.params)
    if not callable(program):
        program = list(program)
        if len(program) != config.nranks:
            raise SimulationError(
                f"{len(program)} programs for {config.nranks} ranks")
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        raise SimulationError(
            "sharded execution needs the fork start method (rank "
            "programs are not picklable); run with shards=1")
    coord_cpu0 = time.process_time()
    gc.collect()  # shrink the heap the workers are about to inherit
    conns, workers = [], []
    for s in range(shards):
        parent_conn, child_conn = ctx.Pipe()
        w = ctx.Process(target=_shard_worker,
                        args=(child_conn, s, config, routing, program,
                              tuple(args)),
                        daemon=True)
        w.start()
        child_conn.close()
        conns.append(parent_conn)
        workers.append(w)

    def _recv(s: int):
        try:
            msg = conns[s].recv()
        except EOFError:
            raise SimulationError(
                f"shard {s} worker died "
                f"({partition_summary(routing)})") from None
        if msg[0] == "error":
            raise SimulationError(
                f"shard {s} worker failed:\n{msg[1]}")
        return msg

    try:
        next_time = [0.0] * shards
        awaiting = set(range(shards))
        inflight: list[ShardPacket] = []
        windows = exchanges = 0
        while True:
            for s in sorted(awaiting):
                _, outbox, nxt = _recv(s)
                inflight.extend(outbox)
                next_time[s] = nxt
            awaiting.clear()
            if inflight:
                by_shard: dict[int, list[ShardPacket]] = {}
                for pkt in inflight:
                    dest = (pkt.shard if pkt.shard is not None
                            else routing.shard_of(pkt.target))
                    by_shard.setdefault(dest, []).append(pkt)
                inflight = []
                for s, pkts in by_shard.items():
                    conns[s].send(("deliver", pkts))
                    awaiting.add(s)
                exchanges += 1
                if exchanges > MAX_EXCHANGES:  # pragma: no cover
                    raise SimulationError(
                        "shard boundary exchange did not quiesce")
                continue
            horizon = min(next_time)
            if horizon == float("inf"):
                break
            until = horizon + lookahead
            for s in range(shards):
                conns[s].send(("run", until))
                awaiting.add(s)
            windows += 1
        for c in conns:
            c.send(("finish",))
        results: list[Any] = [None] * config.nranks
        blocked: list[str] = []
        parts: list[dict[str, Any]] = []
        cpu_s: list[float] = []
        events = 0
        time_us = 0.0
        for s in range(shards):
            _, res, blk, stats, ev, now, cpu = _recv(s)
            for r, v in res.items():
                results[r] = v
            blocked.extend(blk)
            parts.append(stats)
            cpu_s.append(cpu)
            events += ev
            time_us = max(time_us, now)
        # Satellite fix: shard workers simulate in their own processes;
        # fold their event counts into this process's module counter so
        # events_scheduled()-based events/sec stays truthful.
        add_external_events(events)
        # projected wall time with one dedicated core per shard: the
        # slowest worker's CPU plus the coordinator's own routing CPU
        critical = (max(cpu_s) if cpu_s else 0.0) \
            + (time.process_time() - coord_cpu0)
        global _cp_seconds_total
        _cp_seconds_total += critical
        if blocked and config.detect_deadlock:
            raise DeadlockError(sorted(blocked))
        run = ShardedRun(config, shards, lookahead, time_us, {}, windows,
                         exchanges, events, cpu_s, critical)
        run._stats = _merge_stats(parts, run)
        return results, run
    finally:
        for c in conns:
            try:
                c.close()
            except OSError:  # pragma: no cover
                pass
        for w in workers:
            w.join(timeout=5)
            if w.is_alive():  # pragma: no cover - hung worker
                w.terminate()
