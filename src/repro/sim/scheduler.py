"""Event schedulers for the DES engine: binary heap and calendar queue.

The engine's ordering contract (docs/architecture.md §9) is that events
fire in ``(time, priority, schedule-sequence)`` order.  Both schedulers
here implement that contract exactly, so they are interchangeable behind
the same :class:`~repro.sim.engine.Engine` API — ``REPRO_SCHEDULER=heap``
or ``REPRO_SCHEDULER=calendar`` selects one, and the CI bench-smoke job
runs the byte-equality matrix across both.

**HeapScheduler** is the classic binary heap of ``(time, prio, seq,
event)`` tuples: O(log n) per operation, with heapq doing the work in C.

**CalendarScheduler** (the default) is a calendar queue with a
ladder-style overflow rung, specialised for the traffic LogGP models
generate: dense bursts of events at *identical* timestamps (every
commit/notification/ack hook of one transfer lands on the same
microsecond).  It is two-level:

* The bottom level is a dict mapping each pending **timestamp** to a
  FIFO list of its NORMAL-priority events.  Because the
  schedule-sequence counter is monotone, append order *is* seq order at
  that time — pushing at an already-pending timestamp is one dict probe
  plus one list append, with no tuple allocation and no heap sift.
  URGENT events are kept out of these lists entirely: in practice they
  are only ever scheduled *at the current time* (process kick-off,
  interrupt delivery, already-fired resume relays, condition triggers),
  so they go to a single active-tick side list, with a rarely-used
  ``{timestamp: [events]}`` escape hatch for a future-time URGENT.
  Draining a timestamp walks the URGENT side list, then the NORMAL
  list, re-checking URGENT after every event: a newly pushed same-time
  URGENT entry (higher seq) must fire before older NORMAL entries
  (lower seq), exactly as the heap orders ``(t, 0, big-seq) <
  (t, 1, small-seq)``.  Both walks use plain list iterators, which by
  definition pick up elements appended mid-iteration — the same-tick
  cascade costs no re-scan.

* The top level indexes *distinct* timestamps into a calendar: an array
  of ``nslots`` buckets each covering ``width`` microseconds starting at
  ``base``.  A slot's timestamp list stays unsorted until the drain
  reaches it (one sort per slot, on mostly-small lists); timestamps
  beyond the calendar horizon fall into an unsorted overflow rung (the
  "ladder top").  When the year is exhausted the calendar **rebuilds**
  from the overflow: ``base`` becomes the earliest pending timestamp,
  ``width`` the mean gap between pending timestamps, and ``nslots`` the
  next power of two at or above their count (clamped to
  [``_MIN_SLOTS``, ``_MAX_SLOTS``]) — so the steady state is O(1)
  amortised per distinct timestamp.  A rebuild is also triggered while
  pushing, when the pending-timestamp count outgrows ``2 * nslots``.

Ordering proof sketch for the calendar: (1) across timestamps, every
pending time lives in exactly one of {sorted bottom list, a calendar
slot, overflow}; slot index is monotone in time and each slot is sorted
before consumption, so timestamps pop in ascending order.  (2) within a
timestamp, the URGENT-first re-checking drain above reproduces
``(priority, seq)`` order.  (1) + (2) compose to the full ``(time,
priority, seq)`` contract, which the hypothesis equivalence test in
``tests/test_sim_scheduler.py`` checks against the heap directly.

The calendar scheduler only supports the engine's two priorities
(``URGENT == 0``, ``NORMAL == 1``); the heap accepts arbitrary ints.
``peek``/``len`` are exact at scheduler-transaction boundaries (between
``pop`` calls and outside ``drain``); while ``drain`` is mid-bucket they
conservatively count the bucket as still pending.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from typing import Any

from repro.errors import SimulationError

#: Events scheduled with URGENT priority fire before NORMAL ones at equal
#: time.  These are the canonical definitions; ``repro.sim.engine``
#: re-exports them.
URGENT = 0
NORMAL = 1

_INF = float("inf")

#: calendar geometry bounds (slots are cheap: one empty list each)
_MIN_SLOTS = 32
_MAX_SLOTS = 65536


class HeapScheduler:
    """The classic binary-heap event list (``heapq`` of 4-tuples)."""

    name = "heap"

    __slots__ = ("_q", "_seq")

    def __init__(self) -> None:
        self._q: list[tuple[float, int, int, Any]] = []
        self._seq = 0

    # -- scheduling ---------------------------------------------------------
    def push(self, when: float, prio: int, event: Any) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._q, (when, prio, seq, event))

    def pop(self) -> tuple[float, Any]:
        when, _prio, _seq, event = heappop(self._q)
        return when, event

    def peek(self) -> float:
        q = self._q
        return q[0][0] if q else _INF

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    # -- run loop -----------------------------------------------------------
    def drain(self, engine, until: float | None) -> bool:
        """Process events until empty or past ``until``.

        Returns True if stopped at the ``until`` boundary (events remain),
        False if the queue fully drained.  Advances ``engine.now`` and
        raises through :meth:`Engine._raise_crash` on a process crash.
        """
        q = self._q
        pop = heappop
        if until is None:
            while q:
                when, _prio, _seq, event = pop(q)
                engine.now = when
                event._process()
                if engine._crashed is not None:
                    engine._raise_crash()
            return False
        while q:
            if q[0][0] > until:
                engine.now = until
                return True
            when, _prio, _seq, event = pop(q)
            engine.now = when
            event._process()
            if engine._crashed is not None:
                engine._raise_crash()
        return False


class CalendarScheduler:
    """Calendar queue over distinct timestamps with same-tick FIFO buckets.

    See the module docstring for the design and the ordering argument.
    """

    name = "calendar"

    __slots__ = ("_seq", "_times", "_tget", "_slots", "_base", "_width",
                 "_nslots", "_cur_slot", "_cur", "_pos", "_over",
                 "_awhen", "_an", "_au", "_fu", "_aui", "_ani")

    def __init__(self) -> None:
        self._seq = 0
        #: timestamp -> [normal events]; append order within a list is
        #: schedule-seq order (the counter is monotone).  The dict itself is
        #: never reassigned, so its bound ``get`` can be cached.
        self._times: dict[float, list] = {}
        self._tget = self._times.get
        self._nslots = _MIN_SLOTS
        self._slots: list[list[float]] = [[] for _ in range(_MIN_SLOTS)]
        self._base = 0.0
        self._width = 1.0
        self._cur_slot = -1          # slot currently mirrored by the bottom
        self._cur: list[float] = []  # sorted due timestamps (bottom rung)
        self._pos = 0                # consumption pointer into _cur
        self._over: list[float] = []  # beyond-horizon timestamps (ladder top)
        #: the bucket being drained: its timestamp (or None), its normal
        #: list, and the persistent active-tick URGENT side list.
        self._awhen: float | None = None
        self._an: list | None = None
        self._au: list = []
        #: rare escape hatch: URGENT events at a non-active future time
        self._fu: dict[float, list] = {}
        # consumption indices into _au/_an, used by the step()-driven pop()
        # path (drain() keeps its cursors in locals and prunes on exception)
        self._aui = 0
        self._ani = 0

    # -- scheduling ---------------------------------------------------------
    def push(self, when: float, prio: int, event: Any) -> None:
        self._seq += 1
        if prio == 1:
            if when == self._awhen:
                # Zero-delay cascade into the bucket being drained (the
                # succeed()/hook storm of the current tick): skip the dict
                # probe, the live list is at hand.
                self._an.append(event)
                return
            b = self._tget(when)
            if b is not None:
                b.append(event)
                return
            self._times[when] = [event]
            # Inlined _place(): this runs once per distinct timestamp and
            # the call frame is measurable at fig1 rates.
            idx = int((when - self._base) / self._width)
            if idx <= self._cur_slot:
                # Due in the active slot (or earlier, after float
                # truncation): keep the bottom rung sorted.  Everything
                # before ``_pos`` has been consumed and is <= now <= when,
                # so inserting from ``_pos`` preserves order.
                insort(self._cur, when, lo=self._pos)
            elif idx < self._nslots:
                self._slots[idx].append(when)
            else:
                self._over.append(when)
            if len(self._times) > (self._nslots << 1) \
                    and self._nslots < _MAX_SLOTS:
                self._rebuild()
        elif prio == 0:
            if when == self._awhen:
                self._au.append(event)
                return
            f = self._fu.get(when)
            if f is not None:
                f.append(event)
                return
            self._fu[when] = [event]
            if when not in self._times:
                # Keep the time index single: an urgent-only timestamp
                # still owns a (empty) normal bucket and a calendar entry.
                self._times[when] = []
                self._place(when)
        else:
            raise SimulationError(
                f"calendar scheduler supports only URGENT/NORMAL "
                f"priorities, got {prio!r} (use REPRO_SCHEDULER=heap)")

    def _place(self, when: float) -> None:
        """Index a newly pending timestamp into the calendar."""
        idx = int((when - self._base) / self._width)
        if idx <= self._cur_slot:
            insort(self._cur, when, lo=self._pos)
        elif idx < self._nslots:
            self._slots[idx].append(when)
        else:
            self._over.append(when)
        if len(self._times) > (self._nslots << 1) \
                and self._nslots < _MAX_SLOTS:
            self._rebuild()

    def _rebuild(self) -> None:
        """Re-seed the calendar from every pending timestamp.

        Runs when the year is exhausted (all remaining timestamps sit in
        the overflow rung) and when the pending-timestamp population
        outgrows the slot array.  Geometry follows the classic calendar
        queue: width = mean gap, nslots = next power of two >= count.
        """
        times = self._cur[self._pos:]
        for j in range(self._cur_slot + 1, self._nslots):
            times.extend(self._slots[j])
        times.extend(self._over)
        d = len(times)
        self._cur = []
        self._pos = 0
        self._cur_slot = -1
        self._over = []
        if d == 0:
            # Nothing pending: keep the old geometry.  A stale ``base`` is
            # self-healing — far-future indexes land in the overflow rung
            # and the next exhausted-year rebuild recomputes everything.
            self._slots = [[] for _ in range(self._nslots)]
            return
        times.sort()
        base = times[0]
        span = times[-1] - base
        nslots = 1 << max(d - 1, 1).bit_length()
        if nslots < _MIN_SLOTS:
            nslots = _MIN_SLOTS
        elif nslots > _MAX_SLOTS:
            nslots = _MAX_SLOTS
        width = (span / d) if span > 0.0 else 1.0
        self._base = base
        self._width = width
        self._nslots = nslots
        slots: list[list[float]] = [[] for _ in range(nslots)]
        last = nslots - 1
        for t in times:
            idx = int((t - base) / width)
            if idx > last:
                # ``span/width == d <= nslots`` so only float-rounding edges
                # land here; clamping is monotone, so order is preserved.
                idx = last
            slots[idx].append(t)
        self._slots = slots

    # -- consumption --------------------------------------------------------
    def _advance(self) -> float | None:
        """Consume and return the next pending timestamp, or None."""
        pos = self._pos
        cur = self._cur
        if pos < len(cur):
            self._pos = pos + 1
            return cur[pos]
        if not self._times:
            return None
        while True:
            slots = self._slots
            j = self._cur_slot + 1
            n = self._nslots
            while j < n:
                lst = slots[j]
                if lst:
                    lst.sort()
                    self._cur = lst
                    self._pos = 1
                    self._cur_slot = j
                    return lst[0]
                j += 1
            # Year exhausted: everything pending is in the overflow rung.
            if not self._over:
                raise SimulationError(
                    "calendar scheduler index lost a pending timestamp "
                    "(internal invariant violation)")
            self._cur_slot = n
            self._rebuild()

    def _activate(self, when: float) -> None:
        """Make ``when`` the active bucket (merging any future-urgent list).

        ``_au`` is empty here — it is cleared whenever a bucket is reaped —
        so extending it with the escape-hatch list preserves seq order
        (everything in ``_fu[when]`` was pushed before activation).
        """
        self._awhen = when
        self._an = self._times[when]
        fu = self._fu.pop(when, None)
        if fu:
            self._au.extend(fu)

    def _reap(self) -> None:
        """Drop the exhausted active bucket."""
        del self._times[self._awhen]
        self._awhen = None
        self._an = None
        self._au.clear()
        self._aui = 0
        self._ani = 0

    def pop(self) -> tuple[float, Any]:
        while True:
            when = self._awhen
            if when is not None:
                au = self._au
                ui = self._aui
                if ui < len(au):
                    self._aui = ui + 1
                    return when, au[ui]
                an = self._an
                ni = self._ani
                if ni < len(an):
                    self._ani = ni + 1
                    return when, an[ni]
                self._reap()
                continue
            nxt = self._advance()
            if nxt is None:
                raise IndexError("pop from an empty scheduler")
            self._activate(nxt)

    def peek(self) -> float:
        when = self._awhen
        if when is not None and (self._aui < len(self._au)
                                 or self._ani < len(self._an)):
            return when
        if self._pos < len(self._cur):
            return self._cur[self._pos]
        for j in range(self._cur_slot + 1, self._nslots):
            lst = self._slots[j]
            if lst:
                return min(lst)
        if self._over:
            return min(self._over)
        return _INF

    def __len__(self) -> int:
        total = sum(map(len, self._times.values()))
        total += sum(map(len, self._fu.values()))
        if self._awhen is not None:
            total += len(self._au) - self._aui - self._ani
        return total

    def __bool__(self) -> bool:
        if self._awhen is not None:
            if (self._aui < len(self._au)
                    or self._ani < len(self._an)):
                return True
            return len(self._times) > 1 or bool(self._fu)
        return bool(self._times) or bool(self._fu)

    # -- run loop -----------------------------------------------------------
    def drain(self, engine, until: float | None) -> bool:
        """Batch-drain whole timestamp buckets (see HeapScheduler.drain).

        This is the same-tick batch commit: all events at one timestamp —
        typically a burst of transport-completion hooks plus the relay
        cascade they trigger — are dispatched by iterating two lists, with
        no per-event scheduler transaction.  List iterators see elements
        appended mid-iteration, so same-tick pushes land in the live bucket
        and are dispatched in the same pass; the URGENT side list is checked
        after every event so a fresh URGENT still preempts older NORMALs.
        Consumed-prefix counters live in locals and prune the lists if an
        exception (a crash escalation, a sanitizer race) escapes, leaving
        the bucket exactly resumable.
        """
        times = self._times
        au = self._au
        fu = self._fu
        when = self._awhen
        if when is not None:
            # Leftover bucket from the step()-driven path: prune what pop()
            # already consumed, then treat it like a fresh activation.  Its
            # time is <= engine.now <= until, so no boundary check.
            if self._ani:
                del self._an[:self._ani]
                self._ani = 0
            if self._aui:
                del au[:self._aui]
                self._aui = 0
        while True:
            if when is None:
                # Inlined bottom-rung advance (one frame per bucket saved).
                cur = self._cur
                pos = self._pos
                if pos < len(cur):
                    when = cur[pos]
                    self._pos = pos + 1
                else:
                    when = self._advance()
                    if when is None:
                        return False
                if until is not None and when > until:
                    self._pos -= 1      # un-consume: stays at _cur[_pos]
                    engine.now = until
                    return True
                # Inlined _activate() (au is empty between buckets, so the
                # escape-hatch merge preserves seq order).
                self._awhen = when
                self._an = times[when]
                if fu:
                    f = fu.pop(when, None)
                    if f:
                        au.extend(f)
            n = self._an
            engine.now = when
            ui = 0
            ni = 0
            try:
                if au:
                    for event in au:
                        ui += 1
                        event._process()
                        if engine._crashed is not None:
                            engine._raise_crash()
                    au.clear()
                    ui = 0
                for event in n:
                    ni += 1
                    event._process()
                    if engine._crashed is not None:
                        engine._raise_crash()
                    if au:
                        for ev in au:
                            ui += 1
                            ev._process()
                            if engine._crashed is not None:
                                engine._raise_crash()
                        au.clear()
                        ui = 0
            except BaseException:
                if ui:
                    del au[:ui]
                if ni:
                    del n[:ni]
                self._aui = 0
                self._ani = 0
                raise
            # Inlined _reap(): au is exhausted-and-cleared by the loop above
            # and the drain cursors are locals, so dropping the bucket is
            # just the dict delete (``_an`` may go stale; every reader
            # checks ``_awhen`` first).
            del times[when]
            self._awhen = None
            when = None


#: registry for REPRO_SCHEDULER / Engine(scheduler=...)
SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}

_DEFAULT = "calendar"


def scheduler_name(name: str | None = None) -> str:
    """Resolve a scheduler name: explicit arg > REPRO_SCHEDULER > default."""
    name = name or os.environ.get("REPRO_SCHEDULER") or _DEFAULT
    if name not in SCHEDULERS:
        raise SimulationError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}")
    return name


def make_scheduler(name: str | None = None):
    """Build the scheduler selected by ``name`` / ``REPRO_SCHEDULER``."""
    return SCHEDULERS[scheduler_name(name)]()
