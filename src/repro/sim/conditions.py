"""Composite events: wait for all or any of a set of events."""

from __future__ import annotations

from typing import Any

from repro.sim.engine import Engine, Event
from repro.sim.scheduler import URGENT


class _Condition(Event):
    """Base for AllOf/AnyOf; value is a dict {event: value} of fired events.

    Duplicate events in the input are collapsed at construction:
    ``all_of([e, e])`` waits for ``e`` once instead of deadlocking on a
    completion count ``e`` can never reach (``_fired`` is keyed by event, so
    a duplicate can only ever contribute one entry).

    Once the condition triggers — or its last waiter is detached by an
    interrupt — it removes its ``_collect`` callback from every still-pending
    child, so loser events of an :class:`AnyOf` do not pin the condition (and
    everything it references) for the rest of the simulation.
    """

    __slots__ = ("_events", "_fired")

    def __init__(self, engine: Engine, events: list[Event]):
        # Flattened Event.__init__ (conditions are allocated per composite
        # wait, one of the hottest allocation sites in the MPI layer).
        self.engine = engine
        self.callbacks = []
        self._value = None
        self._exc = None
        self._state = 0
        self._defused = False
        self.name = ""
        # dict.fromkeys dedups by identity (events hash by id) at C speed
        # while preserving first-occurrence order.
        uniq = list(dict.fromkeys(events))
        for ev in uniq:
            if not isinstance(ev, Event):
                raise TypeError(f"condition over non-event {ev!r}")
        self._events = uniq
        self._fired: dict[Event, Any] = {}
        if not uniq:
            self.succeed({}, priority=URGENT)
            return
        for ev in uniq:
            if self._state != 0:
                # Triggered while attaching (a processed child failed, or an
                # AnyOf already won): don't hook the remaining children.
                break
            if ev._state == 2:
                self._collect(ev)
            else:
                ev.callbacks.append(self._collect)

    def _collect(self, ev: Event) -> None:
        if self._state != 0:
            return
        if ev._exc is not None:
            self.engine._unobserved.pop(id(ev), None)
            self.fail(ev._exc, priority=URGENT)
            self._detach_children()
            return
        self._fired[ev] = ev._value
        if self._done():
            self.succeed(dict(self._fired), priority=URGENT)
            if len(self._fired) != len(self._events):
                # Only AnyOf-style triggers leave losers behind; a complete
                # AllOf has no pending children to detach from.
                self._detach_children()

    def _detach_children(self) -> None:
        collect = self._collect
        for ev in self._events:
            if ev._state != 2:
                try:
                    ev.callbacks.remove(collect)
                except ValueError:
                    pass

    def _abandoned(self) -> None:
        # Last waiter interrupted away: nobody can ever observe this
        # condition, so unhook from the children instead of leaking.
        if self._state == 0:
            self._detach_children()

    def _done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every (distinct) constituent event has triggered."""

    __slots__ = ()

    def _done(self) -> bool:
        return len(self._fired) == len(self._events)


class AnyOf(_Condition):
    """Triggers as soon as one constituent event triggers."""

    __slots__ = ()

    def _done(self) -> bool:
        return len(self._fired) >= 1
