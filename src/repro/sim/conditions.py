"""Composite events: wait for all or any of a set of events."""

from __future__ import annotations

from typing import Any

from repro.sim.engine import URGENT, Engine, Event


class _Condition(Event):
    """Base for AllOf/AnyOf; value is a dict {event: value} of fired events."""

    __slots__ = ("_events", "_fired")

    def __init__(self, engine: Engine, events: list[Event]):
        super().__init__(engine)
        self._events = list(events)
        self._fired: dict[Event, Any] = {}
        for ev in self._events:
            if not isinstance(ev, Event):
                raise TypeError(f"condition over non-event {ev!r}")
        if not self._events:
            self.succeed({}, priority=URGENT)
            return
        for ev in self._events:
            if ev.processed:
                self._collect(ev)
            else:
                ev.callbacks.append(self._collect)

    def _collect(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc, priority=URGENT)
            return
        self._fired[ev] = ev._value
        if self._done():
            self.succeed(dict(self._fired), priority=URGENT)

    def _done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every constituent event has triggered."""

    __slots__ = ()

    def _done(self) -> bool:
        return len(self._fired) == len(self._events)


class AnyOf(_Condition):
    """Triggers as soon as one constituent event triggers."""

    __slots__ = ()

    def _done(self) -> bool:
        return len(self._fired) >= 1
