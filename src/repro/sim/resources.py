"""Shared-resource primitives used by the runtime layers.

* :class:`Resource` — counted resource with FIFO queuing (models a CPU core,
  a DMA engine, a NIC injection port).
* :class:`Store` — FIFO of items with blocking ``get`` (models completion
  queues and message channels).
* :class:`Signal` — a re-armable broadcast event (models "poke all waiters").
* :class:`Gate` — a level-triggered condition: ``wait()`` passes immediately
  while the gate is open.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import URGENT, Engine, Event


class Resource:
    """A counted resource with FIFO fairness.

    Usage from a process::

        yield from res.acquire()
        ...critical section...
        res.release()
    """

    __slots__ = ("engine", "capacity", "name", "_in_use", "_waiters")

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(
                f"resource capacity must be >=1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Generator[Event, Any, None]:
        """Generator-style blocking acquire (use with ``yield from``)."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return
        ev = Event(self.engine)
        self._waiters.append(ev)
        yield ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter (count unchanged).
            self._waiters.popleft().succeed(None, priority=URGENT)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` is immediate (the network layers bound their queues explicitly
    where the paper's protocol requires it).  An optional ``on_put`` hook
    lets observers (e.g. pollers) react to arrivals.
    """

    __slots__ = ("engine", "name", "_items", "_getters", "on_put")

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.on_put: Callable[[Any], None] | None = None

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._items.append(item)
        if self.on_put is not None:
            self.on_put(item)

    def get(self) -> Generator[Event, Any, Any]:
        """Blocking get (use with ``yield from``); returns the item."""
        if self._items:
            return self._items.popleft()
        ev = Event(self.engine)
        self._getters.append(ev)
        item = yield ev
        return item

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items without removing them."""
        return list(self._items)


class Signal:
    """A re-armable broadcast: ``fire(value)`` wakes every current waiter."""

    __slots__ = ("engine", "name", "_event", "fire_count")

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._event = Event(engine)
        self.fire_count = 0

    def wait(self) -> Event:
        """Event that triggers at the next :meth:`fire`. Yield it."""
        return self._event

    def fire(self, value: Any = None) -> None:
        ev, self._event = self._event, Event(self.engine)
        self.fire_count += 1
        ev.succeed(value, priority=URGENT)


class Gate:
    """Level-triggered condition: waiters pass while the gate is open."""

    __slots__ = ("engine", "name", "_opened", "_waiters")

    def __init__(self, engine: Engine, opened: bool = False, name: str = ""):
        self.engine = engine
        self.name = name
        self._opened = opened
        self._waiters: deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._opened

    def open(self) -> None:
        self._opened = True
        while self._waiters:
            self._waiters.popleft().succeed(None, priority=URGENT)

    def close(self) -> None:
        self._opened = False

    def wait(self) -> Generator[Event, Any, None]:
        """Block until the gate is open (use with ``yield from``)."""
        if self._opened:
            return
        ev = Event(self.engine)
        self._waiters.append(ev)
        yield ev
