"""Deterministic random-number streams.

Each consumer (experiment, rank, subsystem) derives its own independent
stream from a root seed and a label, so adding randomness to one subsystem
never perturbs another — a standard reproducibility technique in parallel
simulators.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a 63-bit child seed from a root seed and a label path."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


class RngStream:
    """A labelled, independently-seeded ``numpy`` Generator wrapper."""

    def __init__(self, root_seed: int, *labels: object):
        self.seed = derive_seed(root_seed, *labels)
        self.labels = labels
        self._rng = np.random.default_rng(self.seed)

    def child(self, *labels: object) -> "RngStream":
        """Derive a sub-stream (e.g. per-rank from per-experiment)."""
        return RngStream(self.seed, *labels)

    # Thin pass-throughs for the operations the simulator uses.
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        return int(self._rng.integers(low, high))

    def random(self) -> float:
        return float(self._rng.random())

    def exponential(self, scale: float) -> float:
        return float(self._rng.exponential(scale))

    def choice(self, seq):
        return seq[int(self._rng.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._rng.normal(loc, scale))

    def array(self, shape, dtype=np.float64) -> np.ndarray:
        """Random array in [0, 1); used to fill test buffers."""
        return self._rng.random(shape).astype(dtype, copy=False)
