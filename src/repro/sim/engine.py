"""The discrete-event engine: events, timeouts, processes, and the run loop.

Virtual time is a ``float`` measured in **microseconds** — the natural unit of
the paper's LogGP parameters (L is ~1 µs on uGNI, G is fractions of a ns/byte).

The core protocol: a simulated activity is a Python generator.  It yields
:class:`Event` objects and is resumed with the event's value when the event
triggers.  Composition uses plain ``yield from``, which lets the MPI-like
layers expose blocking-looking calls (``yield from comm.send(...)``).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.errors import DeadlockError, SimulationError

#: Events scheduled with URGENT priority fire before NORMAL ones at equal time.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (which schedules it on the engine), and *processed*
    once the engine has run its callbacks.  Processes waiting on the event are
    resumed with :attr:`value` (or have the failure exception thrown in).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "_state", "name")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._state = Event.PENDING
        self.name = name

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (not failed)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if delay < 0:
            raise SimulationError(
                f"negative delay {delay} in succeed of {self!r}")
        self._value = value
        self._state = Event.TRIGGERED
        self.engine._schedule(self, delay, priority)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters get ``exc`` thrown in."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if delay < 0:
            raise SimulationError(
                f"negative delay {delay} in fail of {self!r}")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._state = Event.TRIGGERED
        self.engine._schedule(self, delay, priority)
        return self

    def _process(self) -> None:
        self._state = Event.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "triggered", "processed")[self._state]
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(engine)
        self._value = value
        self._state = Event.TRIGGERED
        engine._schedule(self, delay, NORMAL)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator may ``return value``; waiters on the process receive it.
    Uncaught exceptions inside the generator fail the process event; if
    nothing is waiting on the process, the exception propagates out of
    :meth:`Engine.run` so bugs never vanish silently.
    """

    __slots__ = ("_gen", "_waiting_on", "_defused")

    def __init__(self, engine: "Engine",
                 gen: Generator[Event, Any, Any], name: str = ""):
        super().__init__(engine, name=name or getattr(gen, "__name__", ""))
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {gen!r}")
        self._gen = gen
        self._waiting_on: Event | None = None
        self._defused = False
        # Kick off at the current time (insertion order preserved).
        init = Event(engine, name=f"init:{self.name}")
        init.callbacks.append(self._resume)
        init.succeed(None, priority=URGENT)
        engine._register_process(self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        hit = Event(self.engine, name=f"interrupt:{self.name}")
        hit.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        hit.succeed(None, priority=URGENT)

    # -- internal -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: BaseException | None = None):
        if self.triggered:  # already finished (e.g. raced interrupt)
            return
        self.engine._active_process = self
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            self.engine._unregister_process(self)
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self.engine._unregister_process(self)
            self._defused = bool(self.callbacks)
            if not self._defused:
                # Nobody is waiting: surface the crash from Engine.run().
                self.engine._crash(exc, self)
            self.fail(exc, priority=URGENT)
            return
        finally:
            self.engine._active_process = None

        if not isinstance(target, Event):
            # Re-enter through the normal step machinery: if the generator
            # catches the error and yields a real event it keeps running;
            # if the error (or anything else) escapes, the crash path
            # unregisters the process and fails its event, instead of the
            # yielded-value discard that used to strand the process and
            # surface later as a spurious DeadlockError.
            self._step(throw=SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.processed:
            # Already fired: resume immediately (but via the queue to keep
            # deterministic ordering).
            relay = Event(self.engine)
            relay._value, relay._exc = target._value, target._exc
            relay.callbacks.append(self._resume)
            relay._state = Event.TRIGGERED
            self.engine._schedule(relay, 0.0, URGENT)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Engine:
    """The event loop.  ``now`` is virtual time in microseconds."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Process | None = None
        self._processes: dict[int, Process] = {}
        self._crashed: tuple[BaseException, Process] | None = None

    # -- public factory helpers ---------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AllOf
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AnyOf
        return AnyOf(self, list(events))

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            # Fail at the scheduling site: a "time went backwards" at some
            # later step() points nowhere near the culprit.
            raise SimulationError(
                f"negative schedule delay {delay} for {event!r}")
        heapq.heappush(self._heap,
                       (self.now + delay, priority, next(self._seq), event))

    def _register_process(self, proc: Process) -> None:
        self._processes[id(proc)] = proc

    def _unregister_process(self, proc: Process) -> None:
        self._processes.pop(id(proc), None)

    def _crash(self, exc: BaseException, proc: Process) -> None:
        if self._crashed is None:
            self._crashed = (exc, proc)

    # -- run loop -----------------------------------------------------------
    def step(self) -> None:
        """Process one event off the heap."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        event._process()
        if self._crashed is not None:
            exc, proc = self._crashed
            self._crashed = None
            raise SimulationError(
                f"process {proc.name!r} crashed at t={self.now:.3f}us"
            ) from exc

    def run(self, until: float | None = None,
            detect_deadlock: bool = True) -> float:
        """Run until the heap empties or ``until`` (µs) is reached.

        Returns the final virtual time.  If processes remain alive when the
        heap drains and ``detect_deadlock`` is set, raises
        :class:`DeadlockError` naming the blocked processes — a simulated
        program that hangs should fail loudly, like a real MPI job timeout.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            self.step()
        if detect_deadlock and self._processes:
            blocked = [p.name or f"pid{pid}"
                       for pid, p in self._processes.items()]
            raise DeadlockError(blocked)
        return self.now

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
