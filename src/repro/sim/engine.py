"""The discrete-event engine: events, timeouts, processes, and the run loop.

Virtual time is a ``float`` measured in **microseconds** — the natural
unit of the paper's LogGP parameters (L is ~1 µs on uGNI, G is
fractions of a ns/byte).

The core protocol: a simulated activity is a Python generator.  It yields
:class:`Event` objects and is resumed with the event's value when the event
triggers.  Composition uses plain ``yield from``, which lets the MPI-like
layers expose blocking-looking calls (``yield from comm.send(...)``).

Hot-path design (see docs/architecture.md §9): every simulated microsecond is
paid for in pure-Python event dispatch, so the inner loop avoids allocation
and indirection wherever the ordering contract allows.  The pending-event set
lives in a pluggable scheduler (:mod:`repro.sim.scheduler`): a calendar queue
by default — O(1) for the same-timestamp bursts LogGP traffic generates, with
whole-tick batch drains — or the classic binary heap via
``REPRO_SCHEDULER=heap``.  Resuming a process whose target already fired goes
through a pooled :class:`_Relay` instead of a fresh ``Event``;
``succeed``/``fail`` push the schedule record inline for the ubiquitous
zero-delay case; and :meth:`Engine.run` drives the scheduler's batch drain
rather than calling :meth:`Engine.step` per event.  The ordering contract is
strict: events fire in ``(time, priority, schedule-seq)`` order, and none of
the fast paths may change the sequence of schedule calls — the sanitizer's
zero-perturbation guarantee and the golden-value tests depend on it.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable, Sequence
from typing import Any

from repro.errors import DeadlockError, SimulationError
from repro.sim.scheduler import NORMAL, URGENT, make_scheduler

__all__ = [
    "URGENT", "NORMAL", "Event", "Timeout", "Interrupt", "Process",
    "Engine", "events_scheduled", "add_external_events",
]

#: Events scheduled across all engines in this interpreter (the denominator
#: of the bench harness's events/sec metric).  Updated by :meth:`Engine.run`
#: and :meth:`Engine.step` from the scheduler's sequence counter, so
#: maintaining it costs nothing per event.
_events_total = 0


def events_scheduled() -> int:
    """Total events scheduled by all engines so far (monotonic)."""
    return _events_total


def add_external_events(n: int) -> None:
    """Fold events simulated outside this interpreter into the total.

    The sharded core (:mod:`repro.sim.shard`) runs engines in forked
    worker processes; each worker's schedule count is reported back at
    shutdown and folded in here so events/sec stays truthful regardless
    of where the events actually ran.
    """
    global _events_total
    _events_total += n


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (which schedules it on the engine), and *processed*
    once the engine has run its callbacks.  Processes waiting on the event are
    resumed with :attr:`value` (or have the failure exception thrown in).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "_state",
                 "_defused", "name")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._state = 0
        self._defused = False
        self.name = name

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != 0

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == 2

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (not failed)."""
        return self._state != 0 and self._exc is None

    @property
    def value(self) -> Any:
        if self._state == 0:
            raise SimulationError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            self.engine._unobserved.pop(id(self), None)
            raise self._exc
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._state != 0:
            raise SimulationError(f"event {self!r} already triggered")
        if delay == 0.0:
            # Inlined zero-delay schedule: by far the common case.
            self._value = value
            self._state = 1
            eng = self.engine
            eng._push(eng.now, priority, self)
            return self
        if delay < 0:
            raise SimulationError(
                f"negative delay {delay} in succeed of {self!r}")
        self._value = value
        self._state = 1
        self.engine._schedule(self, delay, priority)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters get ``exc`` thrown in."""
        if self._state != 0:
            raise SimulationError(f"event {self!r} already triggered")
        if delay < 0:
            raise SimulationError(
                f"negative delay {delay} in fail of {self!r}")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._state = 1
        self.engine._schedule(self, delay, priority)
        return self

    def defuse(self) -> "Event":
        """Allow this event's failure to go unobserved.

        By default a failed event that nobody ever waits on is reported when
        :meth:`Engine.run` drains (a swallowed error is a bug most of the
        time).  Layers that fail events speculatively — e.g. the fault
        injector failing a ``remote_done`` the program may legitimately never
        flush — defuse them first.
        """
        self._defused = True
        self.engine._unobserved.pop(id(self), None)
        return self

    def _abandoned(self) -> None:
        """Hook: the last waiter detached before this event triggered.

        Composite events override this to detach their child callbacks so an
        interrupted waiter does not leak ``_collect`` references.
        """

    def _process(self) -> None:
        self._state = 2
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)
        elif self._exc is not None and not self._defused:
            # Failure with nobody to throw into: remember it so Engine.run
            # can report it if no late waiter ever observes the value.
            self.engine._unobserved[id(self)] = self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "triggered", "processed")[self._state]
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class _Relay(Event):
    """Pooled internal event that resumes a process at the current time.

    Used for the "target already processed" resume path, for process
    kick-off, and for interrupt delivery, where the engine would otherwise
    allocate a fresh ``Event`` per resume.  A relay recycles itself back to
    the engine's free list as soon as its callbacks have run; it is never
    exposed to user code, so no reference can outlive the recycling.
    """

    __slots__ = ()

    def _process(self) -> None:
        self._state = 2
        callbacks = self.callbacks
        for cb in callbacks:
            cb(self)
        # Reset and return to the pool (keeping the callbacks list avoids a
        # fresh allocation on reuse).
        callbacks.clear()
        self._state = 0
        self._value = None
        self._exc = None
        self.engine._relay_pool.append(self)


class _Hook(Event):
    """Pooled internal event that runs a bare callable at its fire time.

    The network layer defers tens of thousands of "commit this transfer at
    time t" actions per run; a hook carries the callable directly instead of
    an ``Event`` plus a wrapper lambda.  Like :class:`_Relay`, hooks are
    engine-internal and recycle themselves on processing.
    """

    __slots__ = ("_fn",)

    def __init__(self, engine: "Engine"):
        super().__init__(engine)
        self._fn: Callable[[], None] | None = None

    def _process(self) -> None:
        fn = self._fn
        self._fn = None
        self._state = 0
        self.engine._hook_pool.append(self)
        fn()  # type: ignore[misc]


class _Batch(Event):
    """Pooled internal event that runs several callables at one fire time.

    Backs :meth:`Engine.call_at_batch`: transport completion paths that
    schedule several hooks at the *same* timestamp (a get's deliver +
    local_done + remote_done, an AMO's two completions) commit them in one
    scheduler transaction.  The batch consumes one sequence number per
    callable — consecutive seqs at an identical (time, priority) are adjacent
    in dispatch order anyway, so the ordering contract is untouched.
    """

    __slots__ = ("_fns",)

    def __init__(self, engine: "Engine"):
        super().__init__(engine)
        self._fns: Sequence[Callable[[], None]] = ()

    def _process(self) -> None:
        fns = self._fns
        self._fns = ()
        self._state = 0
        self.engine._batch_pool.append(self)
        for fn in fns:
            fn()


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        # Flattened Event.__init__ + schedule: timeouts are allocated on
        # every simulated compute/overhead step, so skip the super() frame
        # and the _schedule frame.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._exc = None
        self._state = 1
        self._defused = False
        self.name = ""
        engine._push(engine.now + delay, NORMAL, self)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator may ``return value``; waiters on the process receive it.
    Uncaught exceptions inside the generator fail the process event; if
    nothing is waiting on the process, the exception propagates out of
    :meth:`Engine.run` so bugs never vanish silently.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, engine: "Engine",
                 gen: Generator[Event, Any, Any], name: str = ""):
        super().__init__(engine, name=name or getattr(gen, "__name__", ""))
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {gen!r}")
        self._gen = gen
        self._waiting_on: Event | None = None
        # Kick off at the current time via a pooled relay (insertion order
        # preserved: the relay is scheduled URGENT exactly like the dedicated
        # init event used to be).  _waiting_on stays None until the first
        # resume so a pre-start interrupt still lets the process start.
        pool = engine._relay_pool
        relay = pool.pop() if pool else _Relay(engine)
        relay._state = 1
        relay.callbacks.append(self._resume)
        engine._push(engine.now, URGENT, relay)
        engine._processes[id(self)] = self

    @property
    def is_alive(self) -> bool:
        return self._state == 0

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Delivery rides a pooled :class:`_Relay` carrying the
        :class:`Interrupt` as its exception — one sequence number, no
        ``Event``-plus-closure allocation, exactly like the interrupt event
        it replaced.  The process is detached from its current wait target
        immediately (the interrupt wins over a pending resume), and detached
        *again* at delivery time in :meth:`_interrupted` in case another
        same-tick event resumed and re-parked it in between.
        """
        if self._state != 0:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        self._detach()
        eng = self.engine
        pool = eng._relay_pool
        relay = pool.pop() if pool else _Relay(eng)
        relay._exc = Interrupt(cause)
        relay._state = 1
        relay.callbacks.append(self._interrupted)
        eng._push(eng.now, URGENT, relay)

    # -- internal -----------------------------------------------------------
    def _detach(self) -> None:
        """Remove ``_resume`` from the current wait target, if any.

        When the target's callback list empties, let composite events detach
        from their children so loser callbacks don't accumulate forever.  A
        target that is an in-flight pooled relay simply fires with an empty
        callback list and recycles itself as usual.
        """
        waiting_on = self._waiting_on
        if waiting_on is not None:
            callbacks = waiting_on.callbacks
            try:
                callbacks.remove(self._resume)
            except ValueError:
                pass
            if not callbacks:
                waiting_on._abandoned()
            self._waiting_on = None

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _interrupted(self, event: Event) -> None:
        """Fired by the pooled interrupt relay.

        The process may have been resumed by another same-tick event and
        re-parked on a *new* target since :meth:`interrupt` detached it;
        detach from wherever it waits now, so the stale ``_resume`` callback
        cannot fire a second resume later, then deliver the interrupt.  A
        process that already finished (raced interrupt) is left alone —
        ``_step`` guards that too, but skipping the detach keeps a dead
        process's state untouched.
        """
        if self._state != 0:
            return
        self._detach()
        self._step(throw=event._exc)

    def _step(self, send: Any = None, throw: BaseException | None = None):
        if self._state != 0:  # already finished (e.g. raced interrupt)
            return
        eng = self.engine
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            eng._processes.pop(id(self), None)
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            eng._processes.pop(id(self), None)
            self._defused = bool(self.callbacks)
            if not self._defused:
                # Nobody is waiting: surface the crash from Engine.run().
                eng._crash(exc, self)
            self.fail(exc, priority=URGENT)
            return

        if not isinstance(target, Event):
            # Re-enter through the normal step machinery: if the generator
            # catches the error and yields a real event it keeps running;
            # if the error (or anything else) escapes, the crash path
            # unregisters the process and fails its event, instead of the
            # yielded-value discard that used to strand the process and
            # surface later as a spurious DeadlockError.
            self._step(throw=SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target._state == 2:
            # Already fired: resume immediately, but via the queue to keep
            # deterministic ordering.  A pooled relay carries the value so
            # no Event is allocated per resume.
            exc = target._exc
            if exc is not None:
                eng._unobserved.pop(id(target), None)
            pool = eng._relay_pool
            relay = pool.pop() if pool else _Relay(eng)
            relay._value = target._value
            relay._exc = exc
            relay._state = 1
            relay.callbacks.append(self._resume)
            eng._push(eng.now, URGENT, relay)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Engine:
    """The event loop.  ``now`` is virtual time in microseconds.

    ``scheduler`` selects the pending-event structure: ``"calendar"`` (the
    default), ``"heap"``, or ``None`` to resolve from the
    ``REPRO_SCHEDULER`` environment variable (see
    :mod:`repro.sim.scheduler`).  Both orderings are byte-identical; the
    choice only affects speed.
    """

    def __init__(self, scheduler: str | None = None):
        self.now: float = 0.0
        self._sched = make_scheduler(scheduler)
        #: bound scheduler insert — ``_push(when, priority, event)``; every
        #: schedule site goes through this one callable (it owns the
        #: sequence counter).
        self._push = self._sched.push
        self._seq_accounted = 0
        self._relay_pool: list[_Relay] = []
        self._hook_pool: list[_Hook] = []
        self._batch_pool: list[_Batch] = []
        self._processes: dict[int, Process] = {}
        self._crashed: tuple[BaseException, Process] | None = None
        self._unobserved: dict[int, Event] = {}

    # -- public factory helpers ---------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AllOf
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AnyOf
        return AnyOf(self, list(events))

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            # Fail at the scheduling site: a "time went backwards" at some
            # later step() points nowhere near the culprit.
            raise SimulationError(
                f"negative schedule delay {delay} for {event!r}")
        self._push(self.now + delay, priority, event)

    def call_at(self, when: float, fn: Callable[[], None],
                priority: int = NORMAL) -> None:
        """Run ``fn()`` at absolute time ``when`` (clamped to ``now``).

        Scheduling a hook consumes one sequence number, exactly like the
        event-plus-callback pattern it replaces, so interleaving with other
        same-time events is unchanged.
        """
        if when < self.now:
            when = self.now
        pool = self._hook_pool
        hook = pool.pop() if pool else _Hook(self)
        hook._state = 1
        hook._fn = fn
        self._push(when, priority, hook)

    def call_at_batch(self, when: float,
                      fns: Sequence[Callable[[], None]],
                      priority: int = NORMAL) -> None:
        """Run each of ``fns`` in order at absolute time ``when``.

        One scheduler transaction, but one sequence number *per callable* —
        byte-identical dispatch order to ``len(fns)`` consecutive
        :meth:`call_at` calls (consecutive seqs at one (time, priority) are
        adjacent; nothing already scheduled can interleave, and everything
        scheduled later gets a higher seq either way).  The transports use
        this for completion hooks that land on the same microsecond.
        """
        if when < self.now:
            when = self.now
        pool = self._batch_pool
        batch = pool.pop() if pool else _Batch(self)
        batch._state = 1
        batch._fns = fns
        self._push(when, priority, batch)
        self._sched._seq += len(fns) - 1

    def _register_process(self, proc: Process) -> None:
        self._processes[id(proc)] = proc

    def _unregister_process(self, proc: Process) -> None:
        self._processes.pop(id(proc), None)

    def _crash(self, exc: BaseException, proc: Process) -> None:
        if self._crashed is None:
            self._crashed = (exc, proc)

    def _raise_crash(self) -> None:
        exc, proc = self._crashed  # type: ignore[misc]
        self._crashed = None
        raise SimulationError(
            f"process {proc.name!r} crashed at t={self.now:.3f}us"
        ) from exc

    def events_scheduled(self) -> int:
        """Events scheduled on this engine so far."""
        return self._sched._seq

    def _account(self) -> None:
        """Fold this engine's schedule counter into the module total."""
        global _events_total
        seq = self._sched._seq
        _events_total += seq - self._seq_accounted
        self._seq_accounted = seq

    def _flush_unobserved(self) -> None:
        failed = list(self._unobserved.values())
        self._unobserved.clear()
        names = ", ".join(repr(ev.name or f"event@{id(ev):#x}")
                          for ev in failed[:5])
        raise SimulationError(
            f"{len(failed)} event failure(s) never observed by any "
            f"waiter: {names}") from failed[0]._exc

    # -- run loop -----------------------------------------------------------
    def step(self) -> None:
        """Process one event off the scheduler."""
        when, event = self._sched.pop()
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        try:
            event._process()
            if self._crashed is not None:
                self._raise_crash()
        finally:
            # Keep the module-level events/sec denominator fresh for
            # step-driven simulations too, not only full run() calls.
            self._account()

    def run(self, until: float | None = None,
            detect_deadlock: bool = True) -> float:
        """Run until the scheduler empties or ``until`` (µs) is reached.

        Returns the final virtual time.  If processes remain alive when the
        scheduler drains and ``detect_deadlock`` is set, raises
        :class:`DeadlockError` naming the blocked processes — a simulated
        program that hangs should fail loudly, like a real MPI job timeout.
        Event failures that were never observed by any waiter (and not
        :meth:`~Event.defuse`-d) are reported at every drain boundary —
        including a bounded ``run(until=...)`` that stops with events still
        pending — instead of being swallowed.  A program that legitimately
        observes a failure in a *later* bounded quantum must defuse it (or
        attach a waiter) before the quantum ends.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past")
        try:
            stopped = self._sched.drain(self, until)
        finally:
            self._account()
        if self._unobserved:
            self._flush_unobserved()
        if not stopped and detect_deadlock and self._processes:
            blocked = [p.name or f"pid{pid}"
                       for pid, p in self._processes.items()]
            raise DeadlockError(blocked)
        return self.now

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._sched.peek()
