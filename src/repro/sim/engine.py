"""The discrete-event engine: events, timeouts, processes, and the run loop.

Virtual time is a ``float`` measured in **microseconds** — the natural unit of
the paper's LogGP parameters (L is ~1 µs on uGNI, G is fractions of a ns/byte).

The core protocol: a simulated activity is a Python generator.  It yields
:class:`Event` objects and is resumed with the event's value when the event
triggers.  Composition uses plain ``yield from``, which lets the MPI-like
layers expose blocking-looking calls (``yield from comm.send(...)``).

Hot-path design (see docs/architecture.md §9): every simulated microsecond is
paid for in pure-Python event dispatch, so the inner loop avoids allocation
and indirection wherever the ordering contract allows.  Resuming a process
whose target already fired goes through a pooled :class:`_Relay` instead of a
fresh ``Event``; ``succeed``/``fail`` push the heap record inline for the
ubiquitous zero-delay case; and :meth:`Engine.run` drives the heap directly
rather than calling :meth:`Engine.step` per event.  The ordering contract is
strict: events fire in ``(time, priority, schedule-seq)`` order, and none of
the fast paths may change the sequence of schedule calls — the sanitizer's
zero-perturbation guarantee and the golden-value tests depend on it.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
from heapq import heappop, heappush
from typing import Any

from repro.errors import DeadlockError, SimulationError

#: Events scheduled with URGENT priority fire before NORMAL ones at equal time.
URGENT = 0
NORMAL = 1

#: Heap events scheduled across all engines in this interpreter (the
#: denominator of the bench harness's events/sec metric).  Updated by
#: :meth:`Engine.run` from the engine's schedule counter, so maintaining it
#: costs nothing per event.
_events_total = 0


def events_scheduled() -> int:
    """Total heap events scheduled by all engines so far (monotonic)."""
    return _events_total


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (which schedules it on the engine), and *processed*
    once the engine has run its callbacks.  Processes waiting on the event are
    resumed with :attr:`value` (or have the failure exception thrown in).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "_state",
                 "_defused", "name")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._state = 0
        self._defused = False
        self.name = name

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != 0

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == 2

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (not failed)."""
        return self._state != 0 and self._exc is None

    @property
    def value(self) -> Any:
        if self._state == 0:
            raise SimulationError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            self.engine._unobserved.pop(id(self), None)
            raise self._exc
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._state != 0:
            raise SimulationError(f"event {self!r} already triggered")
        if delay == 0.0:
            # Inlined zero-delay schedule: by far the common case.
            self._value = value
            self._state = 1
            eng = self.engine
            eng._seq = seq = eng._seq + 1
            heappush(eng._heap, (eng.now, priority, seq, self))
            return self
        if delay < 0:
            raise SimulationError(
                f"negative delay {delay} in succeed of {self!r}")
        self._value = value
        self._state = 1
        self.engine._schedule(self, delay, priority)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0,
             priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters get ``exc`` thrown in."""
        if self._state != 0:
            raise SimulationError(f"event {self!r} already triggered")
        if delay < 0:
            raise SimulationError(
                f"negative delay {delay} in fail of {self!r}")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._state = 1
        self.engine._schedule(self, delay, priority)
        return self

    def defuse(self) -> "Event":
        """Allow this event's failure to go unobserved.

        By default a failed event that nobody ever waits on is reported when
        :meth:`Engine.run` drains (a swallowed error is a bug most of the
        time).  Layers that fail events speculatively — e.g. the fault
        injector failing a ``remote_done`` the program may legitimately never
        flush — defuse them first.
        """
        self._defused = True
        self.engine._unobserved.pop(id(self), None)
        return self

    def _abandoned(self) -> None:
        """Hook: the last waiter detached before this event triggered.

        Composite events override this to detach their child callbacks so an
        interrupted waiter does not leak ``_collect`` references.
        """

    def _process(self) -> None:
        self._state = 2
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)
        elif self._exc is not None and not self._defused:
            # Failure with nobody to throw into: remember it so Engine.run
            # can report it if no late waiter ever observes the value.
            self.engine._unobserved[id(self)] = self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "triggered", "processed")[self._state]
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class _Relay(Event):
    """Pooled internal event that resumes a process at the current time.

    Used for the "target already processed" resume path and for process
    kick-off, where the engine would otherwise allocate a fresh ``Event`` per
    resume.  A relay recycles itself back to the engine's free list as soon
    as its callbacks have run; it is never exposed to user code, so no
    reference can outlive the recycling.
    """

    __slots__ = ()

    def _process(self) -> None:
        self._state = 2
        callbacks = self.callbacks
        for cb in callbacks:
            cb(self)
        # Reset and return to the pool (keeping the callbacks list avoids a
        # fresh allocation on reuse).
        callbacks.clear()
        self._state = 0
        self._value = None
        self._exc = None
        self.engine._relay_pool.append(self)


class _Hook(Event):
    """Pooled internal event that runs a bare callable at its fire time.

    The network layer defers tens of thousands of "commit this transfer at
    time t" actions per run; a hook carries the callable directly instead of
    an ``Event`` plus a wrapper lambda.  Like :class:`_Relay`, hooks are
    engine-internal and recycle themselves on processing.
    """

    __slots__ = ("_fn",)

    def __init__(self, engine: "Engine"):
        super().__init__(engine)
        self._fn: Callable[[], None] | None = None

    def _process(self) -> None:
        fn = self._fn
        self._fn = None
        self._state = 0
        self.engine._hook_pool.append(self)
        fn()  # type: ignore[misc]


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        # Flattened Event.__init__ + schedule: timeouts are allocated on
        # every simulated compute/overhead step, so skip the super() frame
        # and the _schedule frame.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._exc = None
        self._state = 1
        self._defused = False
        self.name = ""
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (engine.now + delay, NORMAL, seq, self))


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator may ``return value``; waiters on the process receive it.
    Uncaught exceptions inside the generator fail the process event; if
    nothing is waiting on the process, the exception propagates out of
    :meth:`Engine.run` so bugs never vanish silently.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, engine: "Engine",
                 gen: Generator[Event, Any, Any], name: str = ""):
        super().__init__(engine, name=name or getattr(gen, "__name__", ""))
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {gen!r}")
        self._gen = gen
        self._waiting_on: Event | None = None
        # Kick off at the current time via a pooled relay (insertion order
        # preserved: the relay is scheduled URGENT exactly like the dedicated
        # init event used to be).  _waiting_on stays None until the first
        # resume so a pre-start interrupt still lets the process start.
        pool = engine._relay_pool
        relay = pool.pop() if pool else _Relay(engine)
        relay._state = 1
        relay.callbacks.append(self._resume)
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (engine.now, URGENT, seq, relay))
        engine._processes[id(self)] = self

    @property
    def is_alive(self) -> bool:
        return self._state == 0

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != 0:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        waiting_on = self._waiting_on
        if waiting_on is not None:
            callbacks = waiting_on.callbacks
            try:
                callbacks.remove(self._resume)
            except ValueError:
                pass
            if not callbacks:
                # Last waiter gone: let composite events detach from their
                # children so loser callbacks don't accumulate forever.
                waiting_on._abandoned()
            self._waiting_on = None
        hit = Event(self.engine, name=f"interrupt:{self.name}")
        hit.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        hit.succeed(None, priority=URGENT)

    # -- internal -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: BaseException | None = None):
        if self._state != 0:  # already finished (e.g. raced interrupt)
            return
        eng = self.engine
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            eng._processes.pop(id(self), None)
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            eng._processes.pop(id(self), None)
            self._defused = bool(self.callbacks)
            if not self._defused:
                # Nobody is waiting: surface the crash from Engine.run().
                eng._crash(exc, self)
            self.fail(exc, priority=URGENT)
            return

        if not isinstance(target, Event):
            # Re-enter through the normal step machinery: if the generator
            # catches the error and yields a real event it keeps running;
            # if the error (or anything else) escapes, the crash path
            # unregisters the process and fails its event, instead of the
            # yielded-value discard that used to strand the process and
            # surface later as a spurious DeadlockError.
            self._step(throw=SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target._state == 2:
            # Already fired: resume immediately, but via the queue to keep
            # deterministic ordering.  A pooled relay carries the value so
            # no Event is allocated per resume.
            exc = target._exc
            if exc is not None:
                eng._unobserved.pop(id(target), None)
            pool = eng._relay_pool
            relay = pool.pop() if pool else _Relay(eng)
            relay._value = target._value
            relay._exc = exc
            relay._state = 1
            relay.callbacks.append(self._resume)
            eng._seq = seq = eng._seq + 1
            heappush(eng._heap, (eng.now, URGENT, seq, relay))
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Engine:
    """The event loop.  ``now`` is virtual time in microseconds."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._seq_accounted = 0
        self._relay_pool: list[_Relay] = []
        self._hook_pool: list[_Hook] = []
        self._processes: dict[int, Process] = {}
        self._crashed: tuple[BaseException, Process] | None = None
        self._unobserved: dict[int, Event] = {}

    # -- public factory helpers ---------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AllOf
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AnyOf
        return AnyOf(self, list(events))

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            # Fail at the scheduling site: a "time went backwards" at some
            # later step() points nowhere near the culprit.
            raise SimulationError(
                f"negative schedule delay {delay} for {event!r}")
        self._seq = seq = self._seq + 1
        heappush(self._heap, (self.now + delay, priority, seq, event))

    def call_at(self, when: float, fn: Callable[[], None],
                priority: int = NORMAL) -> None:
        """Run ``fn()`` at absolute time ``when`` (clamped to ``now``).

        Scheduling a hook consumes one sequence number, exactly like the
        event-plus-callback pattern it replaces, so interleaving with other
        same-time events is unchanged.
        """
        if when < self.now:
            when = self.now
        pool = self._hook_pool
        hook = pool.pop() if pool else _Hook(self)
        hook._state = 1
        hook._fn = fn
        self._seq = seq = self._seq + 1
        heappush(self._heap, (when, priority, seq, hook))

    def _register_process(self, proc: Process) -> None:
        self._processes[id(proc)] = proc

    def _unregister_process(self, proc: Process) -> None:
        self._processes.pop(id(proc), None)

    def _crash(self, exc: BaseException, proc: Process) -> None:
        if self._crashed is None:
            self._crashed = (exc, proc)

    def events_scheduled(self) -> int:
        """Heap events scheduled on this engine so far."""
        return self._seq

    # -- run loop -----------------------------------------------------------
    def step(self) -> None:
        """Process one event off the heap."""
        when, _prio, _seq, event = heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        event._process()
        if self._crashed is not None:
            exc, proc = self._crashed
            self._crashed = None
            raise SimulationError(
                f"process {proc.name!r} crashed at t={self.now:.3f}us"
            ) from exc

    def run(self, until: float | None = None,
            detect_deadlock: bool = True) -> float:
        """Run until the heap empties or ``until`` (µs) is reached.

        Returns the final virtual time.  If processes remain alive when the
        heap drains and ``detect_deadlock`` is set, raises
        :class:`DeadlockError` naming the blocked processes — a simulated
        program that hangs should fail loudly, like a real MPI job timeout.
        Event failures that were never observed by any waiter (and not
        :meth:`~Event.defuse`-d) are reported once the heap drains, instead
        of being swallowed.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past")
        # The inner loop is the hottest code in the repository: drive the
        # heap directly with locals instead of calling step() per event, and
        # keep the bounded-run check out of the unbounded loop.
        heap = self._heap
        pop = heappop
        try:
            if until is None:
                while heap:
                    when, _prio, _seq, event = pop(heap)
                    self.now = when
                    event._process()
                    if self._crashed is not None:
                        exc, proc = self._crashed
                        self._crashed = None
                        raise SimulationError(
                            f"process {proc.name!r} crashed at "
                            f"t={self.now:.3f}us"
                        ) from exc
            else:
                while heap:
                    if heap[0][0] > until:
                        self.now = until
                        return self.now
                    when, _prio, _seq, event = pop(heap)
                    self.now = when
                    event._process()
                    if self._crashed is not None:
                        exc, proc = self._crashed
                        self._crashed = None
                        raise SimulationError(
                            f"process {proc.name!r} crashed at "
                            f"t={self.now:.3f}us"
                        ) from exc
        finally:
            global _events_total
            _events_total += self._seq - self._seq_accounted
            self._seq_accounted = self._seq
        if self._unobserved:
            failed = list(self._unobserved.values())
            self._unobserved.clear()
            names = ", ".join(repr(ev.name or f"event@{id(ev):#x}")
                              for ev in failed[:5])
            raise SimulationError(
                f"{len(failed)} event failure(s) never observed by any "
                f"waiter: {names}") from failed[0]._exc
        if detect_deadlock and self._processes:
            blocked = [p.name or f"pid{pid}"
                       for pid, p in self._processes.items()]
            raise DeadlockError(blocked)
        return self.now

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
