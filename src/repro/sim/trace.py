"""Event tracing and counters.

The network layer records one :class:`TraceRecord` per wire transaction; the
protocol-audit tests (Figure 2 of the paper) count transactions on the
critical path of each synchronization scheme directly from this trace.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    ``kind`` is a short category string (``"wire"``, ``"cq"``, ``"match"``,
    ``"copy"``, ...), ``detail`` carries kind-specific fields.
    """

    time: float
    kind: str
    src: int
    dst: int
    nbytes: int = 0
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Accumulates trace records and summary counters.

    Tracing is cheap but not free; construct with ``enabled=False`` (the
    default for benchmarks) to reduce overhead to a single branch.
    Counters are always maintained — they are O(1) and the transaction-count
    experiments rely on them.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self.counters: Counter[str] = Counter()
        self.bytes_by_kind: Counter[str] = Counter()
        #: injected-fault events by fault type ("drop", "dup", "stall", ...)
        self.faults: Counter[str] = Counter()

    def emit(self, time: float, kind: str, src: int, dst: int,
             nbytes: int = 0, **detail: Any) -> None:
        self.counters[kind] += 1
        self.bytes_by_kind[kind] += nbytes
        if kind == "fault":
            self.faults[detail.get("fault", "unknown")] += 1
        if self.enabled:
            self.records.append(
                TraceRecord(time, kind, src, dst, nbytes, detail))

    def count(self, kind: str) -> int:
        return self.counters[kind]

    def select(self, kind: str | None = None,
               src: int | None = None,
               dst: int | None = None) -> list[TraceRecord]:
        """Filter records (requires ``enabled=True`` at emit time)."""
        out: Iterable[TraceRecord] = self.records
        if kind is not None:
            out = (r for r in out if r.kind == kind)
        if src is not None:
            out = (r for r in out if r.src == src)
        if dst is not None:
            out = (r for r in out if r.dst == dst)
        return list(out)

    def reset(self) -> None:
        self.records.clear()
        self.counters.clear()
        self.bytes_by_kind.clear()
        self.faults.clear()

    def wire_transactions(self) -> int:
        """Total wire-level transactions (the unit Figure 2 counts)."""
        return self.counters["wire"]

    def fault_events(self) -> int:
        """Total injected-fault events (drops, dups, stalls, ...)."""
        return self.counters["fault"]

    def race_count(self) -> int:
        """Races recorded by the synchronization sanitizer."""
        return self.counters["race"]

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault events broken down by fault type."""
        return dict(self.faults)
