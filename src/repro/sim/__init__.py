"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of SimPy, written
from scratch for this reproduction.  Simulated processes are Python
generators that ``yield`` :class:`~repro.sim.engine.Event` objects; the
:class:`~repro.sim.engine.Engine` advances virtual time (a float, in
microseconds) and resumes processes when the events they wait on trigger.

Determinism: the event heap orders by ``(time, priority, sequence)`` where
``sequence`` is a global monotone counter, so same-time events always fire in
insertion order and repeated runs are bit-identical.
"""

from repro.sim.conditions import AllOf, AnyOf
from repro.sim.engine import Engine, Event, Interrupt, Process, Timeout
from repro.sim.resources import Gate, Resource, Signal, Store
from repro.sim.rng import RngStream
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "Signal",
    "Gate",
    "RngStream",
    "Tracer",
    "TraceRecord",
]
