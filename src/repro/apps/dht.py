"""Distributed hash table insert motif — the large-scale RMA pattern.

Quo Vadis MPI RMA catalogs the DHT as the canonical irregular one-sided
workload: every rank owns a block of the table and inserts into *remote*
blocks chosen by a hash, so each process sees notifications arrive from
changing, unpredictable sources — the high fan-in case for the Unexpected
Queue's wildcard matching (§IV-B).

The motif runs ``rounds`` insert rounds.  In round ``r`` every rank puts
one 8-byte record into the table block of ``(rank + shift_r) % size``
(``shift_r`` a per-round constant, so each round is a bijection and every
rank receives exactly one record per round), tagging the notification
with the round number.  Producers run ahead without waiting — records
pile up in the consumer's UQ — and each rank drains all ``rounds``
notifications at the end through a single wildcard (``ANY_SOURCE``,
``ANY_TAG``) persistent request, verifying the (source, tag) multiset
and the slot contents.

A small per-rank random compute jitter decorrelates the producers the
way real insert work would; all ranks stay active the whole run — the
all-ranks-busy, event-dense profile (opposite of the stencil's latency
chain) used by the sharded weak-scaling sweep.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

#: multiplicative hash constant (Knuth) for the per-round shift
_HASH = 2654435761


def round_shift(r: int, size: int) -> int:
    """Per-round ring shift in [1, size): bijective, never self-directed."""
    if size < 2:
        return 0
    return 1 + (r * _HASH) % (size - 1)


def _dht_program(ctx, rounds: int, verify: bool, jitter_us: float):
    # analyze: nranks=4 args=(3,False,0.0)
    rank, size = ctx.rank, ctx.size
    win = yield from ctx.win_allocate(rounds * 8)
    req = yield from ctx.na.notify_init(win, source=ANY_SOURCE, tag=ANY_TAG)
    yield from ctx.barrier()
    t0 = ctx.now

    # Produce: one record per round into the round's target block.
    for r in range(rounds):
        if jitter_us > 0.0:
            yield from ctx.compute(ctx.rng.uniform(0.0, jitter_us))
        target = (rank + round_shift(r, size)) % size
        record = np.array([float(rank * rounds + r)])
        yield from ctx.na.put_notify(win, record, target, r * 8,
                                     tag=r & 0xFFFF)
        yield from win.flush_local(target)

    # Drain: every round's bijection sends this rank exactly one record.
    seen: list[tuple[int, int]] = []
    for _ in range(rounds):
        yield from ctx.na.start(req)
        st = yield from ctx.na.wait(req)
        seen.append((st.source, st.tag))
    elapsed = ctx.now - t0

    ok = True
    if verify:
        expect = sorted((rank - round_shift(r, size)) % size
                        for r in range(rounds))
        got_sources = sorted(s for s, _ in seen)
        if got_sources != expect:
            raise ReproError(
                f"rank {rank}: source multiset {got_sources} != {expect}")
        tags = sorted(t for _, t in seen)
        if tags != sorted(r & 0xFFFF for r in range(rounds)):
            raise ReproError(f"rank {rank}: tag multiset off: {tags}")
        table = win.local(np.float64, count=rounds, mode="r")
        for r in range(rounds):
            source = (rank - round_shift(r, size)) % size
            want = float(source * rounds + r)
            if table[r] != want:
                raise ReproError(
                    f"rank {rank} slot {r}: {table[r]} != {want} "
                    f"(from rank {source})")
    yield from ctx.barrier()
    return (elapsed, ok, seen)


def run_dht(nranks: int, rounds: int = 16, verify: bool = False,
            jitter_us: float = 0.4,
            config: ClusterConfig | None = None) -> dict:
    """Run the DHT insert motif; returns timing and insert-rate metrics."""
    if nranks < 2:
        raise ReproError("the DHT motif needs at least 2 ranks")
    if rounds < 1:
        raise ReproError(f"rounds must be >= 1, got {rounds}")
    if config is None:
        config = ClusterConfig(nranks=nranks)
    results, cluster = run_ranks(
        nranks,
        lambda ctx: _dht_program(ctx, rounds, verify, jitter_us),
        config=config)
    elapsed = max(r[0] for r in results)
    inserts = nranks * rounds
    return {
        "nranks": nranks,
        "rounds": rounds,
        "inserts": inserts,
        "time_us": elapsed,
        "minserts_per_s": inserts / elapsed if elapsed else 0.0,
        "verified": verify and all(r[1] for r in results),
    }
