"""2D Jacobi halo exchange — the paper's introductory halo-exchange motif.

A ``g × g`` grid on a 2D process grid; each iteration exchanges four halos
(rows contiguous, columns via the derived vector datatype) and applies the
5-point Jacobi update.  Double-buffered (parity) halo slots make the NA
variant a pure bounded-buffer producer-consumer: each rank posts **one
counting request per parity** with ``expected_count = #neighbours``, so a
whole iteration's synchronization is a single wait (§III counting).

Modes: ``mp`` (isend/irecv/waitall), ``pscw`` (per-iteration epochs with
the neighbour group), ``na`` (typed ``put_notify`` + counting requests).
"""

from __future__ import annotations


import numpy as np

from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError
from repro.mpi.datatypes import contiguous, indexed
from repro.rma.typed import put_notify_typed

HALO2D_MODES = ("mp", "pscw", "na")

#: flops per grid point of one Jacobi update
JACOBI_FLOPS = 4.0


def _process_grid(size: int) -> tuple[int, int]:
    """Near-square factorization pr x pc = size."""
    pr = int(np.sqrt(size))
    while size % pr:
        pr -= 1
    return pr, size // pr


def _serial_jacobi(g: int, iters: int) -> np.ndarray:
    a = _initial_grid(g)
    for _ in range(iters):
        new = a.copy()
        new[1:-1, 1:-1] = 0.25 * (a[:-2, 1:-1] + a[2:, 1:-1]
                                  + a[1:-1, :-2] + a[1:-1, 2:])
        a = new
    return a


def _initial_grid(g: int) -> np.ndarray:
    a = np.zeros((g, g))
    a[0, :] = 1.0                     # hot top boundary
    a[:, 0] = np.linspace(1.0, 0.0, g)
    return a


def _halo2d_program(ctx, mode: str, g: int, iters: int, verify: bool):
    rank, size = ctx.rank, ctx.size
    pr, pc = _process_grid(size)
    myr, myc = divmod(rank, pc)
    if g % pr or g % pc:
        raise ReproError(f"grid {g} not divisible by process grid "
                         f"{pr}x{pc}")
    lr, lc = g // pr, g // pc          # local block shape
    # Neighbours (None at physical boundaries).
    north = rank - pc if myr > 0 else None
    south = rank + pc if myr < pr - 1 else None
    west = rank - 1 if myc > 0 else None
    east = rank + 1 if myc < pc - 1 else None
    neighbours = [n for n in (north, south, west, east) if n is not None]

    # Local block with a one-cell halo ring.
    a = np.zeros((lr + 2, lc + 2))
    if verify:
        full = _initial_grid(g)
        a[1:-1, 1:-1] = full[myr * lr:(myr + 1) * lr,
                             myc * lc:(myc + 1) * lc]
    # Local cells on the *global* boundary are fixed: the Jacobi update
    # below skips the first/last local row/column where there is no
    # neighbour.
    r0 = 2 if north is None else 1
    r1 = lr if south is None else lr + 1
    c0 = 2 if west is None else 1
    c1 = lc if east is None else lc + 1

    halo_len = max(lr, lc)
    # Window layout: parity (2) x direction (4) x halo_len doubles.
    slot_bytes = halo_len * 8
    win = None
    reqs = None
    if mode in ("na", "pscw"):
        win = yield from ctx.win_allocate(2 * 4 * slot_bytes)
        if mode == "na" and neighbours:
            # One counting request per parity, tag-bound to that parity so
            # a fast neighbour's next-iteration halos can never satisfy
            # this iteration's count.
            reqs = []
            for parity in range(2):
                r = yield from ctx.na.notify_init(
                    win, tag=parity, expected_count=len(neighbours))
                reqs.append(r)
    # Direction codes: my {0:N,1:S,2:W,3:E} edge lands in the neighbour's
    # opposite slot.
    _OPP = {0: 1, 1: 0, 2: 3, 3: 2}

    def my_edges():
        """(direction, neighbour, payload) for each existing neighbour."""
        out = []
        if north is not None:
            out.append((0, north, np.ascontiguousarray(a[1, 1:-1])))
        if south is not None:
            out.append((1, south, np.ascontiguousarray(a[lr, 1:-1])))
        if west is not None:
            out.append((2, west, np.ascontiguousarray(a[1:-1, 1])))
        if east is not None:
            out.append((3, east, np.ascontiguousarray(a[1:-1, lc])))
        return out

    def install_halos(parity: int):
        """Copy received slots into the halo ring.

        The view covers only this parity's half of the window: the other
        parity's slots may still be receiving the neighbours' next-iteration
        halos (that's the point of double buffering).
        """
        slots = win.local(np.float64, offset=parity * 4 * slot_bytes,
                          count=4 * halo_len,
                          mode="r").reshape(4, halo_len)
        if north is not None:
            a[0, 1:-1] = slots[0, :lc]
        if south is not None:
            a[-1, 1:-1] = slots[1, :lc]
        if west is not None:
            a[1:-1, 0] = slots[2, :lr]
        if east is not None:
            a[1:-1, -1] = slots[3, :lr]

    compute_us = lr * lc * JACOBI_FLOPS / ctx.cluster.cfg.flops_per_us

    yield from ctx.barrier()
    t0 = ctx.now

    for it in range(iters):
        parity = it % 2
        if mode == "mp":
            rreqs, rbufs = [], {}
            if north is not None:
                rbufs[0] = np.zeros(lc)
            if south is not None:
                rbufs[1] = np.zeros(lc)
            if west is not None:
                rbufs[2] = np.zeros(lr)
            if east is not None:
                rbufs[3] = np.zeros(lr)
            nbr = {0: north, 1: south, 2: west, 3: east}
            for d, buf in rbufs.items():
                req = yield from ctx.comm.irecv(buf, nbr[d],
                                                tag=it * 8 + d)
                rreqs.append(req)
            sreqs = []
            for d, n, payload in my_edges():
                req = yield from ctx.comm.isend(
                    payload, n, tag=it * 8 + _OPP[d])
                sreqs.append(req)
            yield from ctx.comm.waitall(sreqs)
            yield from ctx.comm.waitall(rreqs)
            if north is not None:
                a[0, 1:-1] = rbufs[0]
            if south is not None:
                a[-1, 1:-1] = rbufs[1]
            if west is not None:
                a[1:-1, 0] = rbufs[2]
            if east is not None:
                a[1:-1, -1] = rbufs[3]
        elif mode == "na":
            for d, n, payload in my_edges():
                disp = (parity * 4 + _OPP[d]) * slot_bytes
                if d in (2, 3):
                    # Column edge: ship it with a derived datatype straight
                    # out of the 2D array (no manual copy) — the indexed
                    # type names the column cells of the base array.
                    src_col = 1 if d == 2 else lc
                    col_type = indexed(
                        [1] * lr,
                        [(1 + i) * (lc + 2) + src_col for i in range(lr)])
                    yield from put_notify_typed(
                        ctx, win, a, col_type, n, target_disp=disp,
                        target_type=contiguous(lr), tag=parity)
                else:
                    yield from ctx.na.put_notify(
                        win, payload, n, disp, tag=parity)
                yield from win.flush_local(n)
            if neighbours:
                req = reqs[parity]
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                install_halos(parity)
        elif mode == "pscw":
            if neighbours:
                yield from win.post(neighbours)
                yield from win.start(neighbours)
            for d, n, payload in my_edges():
                disp = (parity * 4 + _OPP[d]) * slot_bytes
                yield from win.put(payload, n, disp)
            if neighbours:
                yield from win.complete()
                yield from win.wait(neighbours)
                install_halos(parity)
        # Jacobi update on the globally-interior cells.
        yield from ctx.compute(compute_us)
        if verify:
            new = a.copy()
            new[r0:r1, c0:c1] = 0.25 * (
                a[r0 - 1:r1 - 1, c0:c1] + a[r0 + 1:r1 + 1, c0:c1]
                + a[r0:r1, c0 - 1:c1 - 1] + a[r0:r1, c0 + 1:c1 + 1])
            a = new

    elapsed = ctx.now - t0
    return (elapsed, a[1:-1, 1:-1].copy() if verify else None,
            (myr, myc, lr, lc))


def run_halo2d(mode: str, nranks: int, g: int, iters: int = 4,
               verify: bool = False,
               config: ClusterConfig | None = None) -> dict:
    """Run the 2D Jacobi halo exchange; returns timing and MLUP/s."""
    if mode not in HALO2D_MODES:
        raise ReproError(f"unknown halo2d mode {mode!r}; "
                         f"choose from {HALO2D_MODES}")
    if config is None:
        config = ClusterConfig(nranks=nranks)
    results, cluster = run_ranks(
        nranks,
        lambda ctx: _halo2d_program(ctx, mode, g, iters, verify),
        config=config)
    elapsed = max(r[0] for r in results)
    out = {
        "mode": mode,
        "nranks": nranks,
        "grid": g,
        "iters": iters,
        "time_us": elapsed,
        "mlups": (g - 2) ** 2 * iters / elapsed if elapsed else 0.0,
    }
    if verify:
        ref = _serial_jacobi(g, iters)[1:-1, 1:-1]
        assembled = np.zeros((g, g))
        for elapsed_r, block, (myr, myc, lr, lc) in results:
            assembled[myr * lr:(myr + 1) * lr,
                      myc * lc:(myc + 1) * lc] = block
        out["max_error"] = float(
            np.abs(assembled[1:-1, 1:-1] - ref).max())
    return out
