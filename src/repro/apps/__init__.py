"""The paper's application case studies (§V–§VI).

* :mod:`repro.apps.pingpong` — latency/bandwidth microbenchmark, Figure 3.
* :mod:`repro.apps.overlap` — computation/communication overlap, Figure 4a.
* :mod:`repro.apps.stencil` — PRK Sync_p2p pipelined stencil, Figures 1/4b.
* :mod:`repro.apps.tree` — 16-ary reduction tree, Figure 4c.
* :mod:`repro.apps.cholesky` — task-based tiled Cholesky, Figure 5.
* :mod:`repro.apps.halo2d` — 2D Jacobi halo exchange (the introduction's
  halo motif; exercises derived datatypes and counting notifications).
* :mod:`repro.apps.particles` — dynamic particle exchange (§VI-B's dynamic
  applications: nondeterministic producer sets, point-to-point termination
  via notifications instead of a global allreduce).

Each module exposes ``run_*`` driver functions returning plain dictionaries
of metrics in simulated microseconds, plus the rank programs themselves for
reuse and testing.
"""

from repro.apps.cholesky import CHOLESKY_MODES, run_cholesky
from repro.apps.halo2d import HALO2D_MODES, run_halo2d
from repro.apps.overlap import OVERLAP_MODES, run_overlap
from repro.apps.particles import PARTICLE_MODES, run_particles
from repro.apps.pingpong import PINGPONG_MODES, run_pingpong
from repro.apps.stencil import STENCIL_MODES, run_stencil
from repro.apps.tree import TREE_MODES, run_tree_reduction

__all__ = [
    "run_pingpong",
    "PINGPONG_MODES",
    "run_overlap",
    "OVERLAP_MODES",
    "run_stencil",
    "STENCIL_MODES",
    "run_tree_reduction",
    "TREE_MODES",
    "run_cholesky",
    "CHOLESKY_MODES",
    "run_halo2d",
    "HALO2D_MODES",
    "run_particles",
    "PARTICLE_MODES",
]
