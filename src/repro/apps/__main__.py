"""Run any application from the command line.

Examples::

    python -m repro.apps stencil   --mode na -P 8 --rows 256 --cols 1280
    python -m repro.apps pingpong  --mode mp --size 4096
    python -m repro.apps tree      --mode na -P 64 --arity 16
    python -m repro.apps cholesky  --mode onesided -P 4 --ntiles 8 --verify
    python -m repro.apps halo2d    --mode na -P 4 --grid 64
    python -m repro.apps particles --mode na -P 8 --steps 6
    python -m repro.apps overlap   --mode na --size 65536
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps import (run_cholesky, run_halo2d, run_overlap,
                        run_particles, run_pingpong, run_stencil,
                        run_tree_reduction)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="python -m repro.apps",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="app", required=True)

    def common(sp, modes, default_mode):
        sp.add_argument("--mode", choices=modes, default=default_mode)
        sp.add_argument("-P", "--nranks", type=int, default=4)
        sp.add_argument("--json", action="store_true",
                        help="print the raw metrics dict as JSON")

    sp = sub.add_parser("pingpong", help="Figure 3 microbenchmark")
    common(sp, ("mp", "onesided_pscw", "onesided_fence", "na", "na_get",
                "raw"), "na")
    sp.add_argument("--size", type=int, default=64)
    sp.add_argument("--iters", type=int, default=30)
    sp.add_argument("--shm", action="store_true",
                    help="place both ranks on one node")

    sp = sub.add_parser("overlap", help="Figure 4a overlap benchmark")
    common(sp, ("mp", "onesided_fence", "onesided_flush", "na"), "na")
    sp.add_argument("--size", type=int, default=8192)

    sp = sub.add_parser("stencil", help="PRK Sync_p2p (Figures 1/4b)")
    common(sp, ("mp", "na", "pscw", "fence"), "na")
    sp.add_argument("--rows", type=int, default=256)
    sp.add_argument("--cols", type=int, default=1280)
    sp.add_argument("--iters", type=int, default=1)
    sp.add_argument("--verify", action="store_true")

    sp = sub.add_parser("tree", help="reduction tree (Figure 4c)")
    common(sp, ("mp", "pscw", "na", "vendor"), "na")
    sp.add_argument("--arity", type=int, default=16)
    sp.add_argument("--reps", type=int, default=5)

    sp = sub.add_parser("cholesky", help="task Cholesky (Figure 5)")
    common(sp, ("mp", "onesided", "na"), "na")
    sp.add_argument("--ntiles", type=int, default=8)
    sp.add_argument("--tile", type=int, default=32, dest="b")
    sp.add_argument("--variant", choices=("right", "left"),
                    default="right")
    sp.add_argument("--verify", action="store_true")

    sp = sub.add_parser("halo2d", help="2D Jacobi halo exchange")
    common(sp, ("mp", "pscw", "na"), "na")
    sp.add_argument("--grid", type=int, default=64)
    sp.add_argument("--iters", type=int, default=6)
    sp.add_argument("--verify", action="store_true")

    sp = sub.add_parser("particles", help="dynamic particle exchange")
    common(sp, ("mp", "na"), "na")
    sp.add_argument("--per-rank", type=int, default=64)
    sp.add_argument("--steps", type=int, default=8)
    sp.add_argument("--verify", action="store_true")
    return p


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.app == "pingpong":
        r = run_pingpong(args.mode, args.size, iters=args.iters,
                         same_node=args.shm)
    elif args.app == "overlap":
        r = run_overlap(args.mode, args.size)
    elif args.app == "stencil":
        r = run_stencil(args.mode, args.nranks, rows=args.rows,
                        cols=args.cols, iters=args.iters,
                        verify=args.verify)
    elif args.app == "tree":
        r = run_tree_reduction(args.mode, args.nranks, arity=args.arity,
                               reps=args.reps)
    elif args.app == "cholesky":
        r = run_cholesky(args.mode, args.nranks, ntiles=args.ntiles,
                         b=args.b, verify=args.verify,
                         variant=args.variant)
    elif args.app == "halo2d":
        r = run_halo2d(args.mode, args.nranks, g=args.grid,
                       iters=args.iters, verify=args.verify)
    elif args.app == "particles":
        r = run_particles(args.mode, args.nranks, per_rank=args.per_rank,
                          steps=args.steps, verify=args.verify)
    else:  # pragma: no cover - argparse guards
        return 2
    if args.json:
        print(json.dumps(r, default=str, indent=2))
    else:
        for k, v in r.items():
            print(f"{k:22s} {v}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
