"""Ping-pong latency/bandwidth benchmark — Figure 3 of the paper.

The Notified Access variant is a direct port of the paper's Listing 1: a
window of ``2 * max_size`` doubles, one persistent notification request,
``put_notify`` + ``flush`` + ``start``/``wait`` per iteration.

Modes
-----
``mp``              blocking send/recv (eager or rendezvous by size)
``onesided_pscw``   general active target (start/put/complete + post/wait)
``onesided_fence``  fence synchronization each direction
``na``              notified put (Listing 1)
``na_get``          notified get: each side reads the other's buffer and the
                    owner learns from the notification that it may reuse it
``flush_notify``    plain put + notified flush (§III's rejected alternative:
                    the notification is a second, ordered transfer)
``raw``             busy-wait on the payload bytes — the illegal
                    lower bound the paper plots as "unsynchronized"
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError

PINGPONG_MODES = ("mp", "onesided_pscw", "onesided_fence", "na", "na_get",
                  "flush_notify", "raw")

_TAG = 99


def _client_server(ctx):
    """(client_rank, server_rank, partner) helper."""
    client, server = 0, 1
    partner = server if ctx.rank == client else client
    return client, server, partner


def _mp_program(ctx, size_bytes: int, iters: int):
    client, server, partner = _client_server(ctx)
    n = size_bytes // 8
    sbuf = np.arange(n, dtype=np.float64) + ctx.rank
    rbuf = np.zeros(n, dtype=np.float64)
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == client:
            yield from ctx.comm.send(sbuf, partner, _TAG)
            yield from ctx.comm.recv(rbuf, partner, _TAG)
        else:
            yield from ctx.comm.recv(rbuf, partner, _TAG)
            yield from ctx.comm.send(sbuf, partner, _TAG)
    return (ctx.now - t0) / (2 * iters)


def _pscw_program(ctx, size_bytes: int, iters: int):
    client, server, partner = _client_server(ctx)
    win = yield from ctx.win_allocate(2 * size_bytes)
    n = size_bytes // 8
    data = np.arange(n, dtype=np.float64) + ctx.rank
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == client:
            yield from win.start([partner])
            yield from win.put(data, partner, 0)
            yield from win.complete()
            yield from win.post([partner])
            yield from win.wait([partner])
        else:
            yield from win.post([partner])
            yield from win.wait([partner])
            yield from win.start([partner])
            yield from win.put(data, partner, size_bytes)
            yield from win.complete()
    return (ctx.now - t0) / (2 * iters)


def _fence_program(ctx, size_bytes: int, iters: int):
    client, server, partner = _client_server(ctx)
    win = yield from ctx.win_allocate(2 * size_bytes)
    n = size_bytes // 8
    data = np.arange(n, dtype=np.float64) + ctx.rank
    yield from win.fence()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == client:
            yield from win.put(data, partner, 0)
        yield from win.fence()
        if ctx.rank == server:
            yield from win.put(data, partner, size_bytes)
        yield from win.fence()
    dt = (ctx.now - t0) / (2 * iters)
    yield from win.fence_end()
    return dt


def _na_program(ctx, size_bytes: int, iters: int):
    """The paper's Listing 1."""
    client, server, partner = _client_server(ctx)
    win = yield from ctx.win_allocate(2 * size_bytes)
    n = size_bytes // 8
    data = np.arange(n, dtype=np.float64) + ctx.rank
    req = yield from ctx.na.notify_init(win, source=partner, tag=_TAG,
                                        expected_count=1)
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == client:
            yield from ctx.na.put_notify(win, data, partner, 0, tag=_TAG)
            yield from win.flush_local(partner)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
        else:
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            yield from ctx.na.put_notify(win, data, partner, size_bytes,
                                         tag=_TAG)
            yield from win.flush_local(partner)
    dt = (ctx.now - t0) / (2 * iters)
    yield from ctx.na.request_free(req)
    return dt


def _flush_notify_program(ctx, size_bytes: int, iters: int):
    """Put + notified flush: the data and its notification are separate
    transfers, so every handoff pays the second transaction §III costs
    against — the baseline the reliability ablation compares NA to."""
    client, server, partner = _client_server(ctx)
    win = yield from ctx.win_allocate(2 * size_bytes)
    n = size_bytes // 8
    data = np.arange(n, dtype=np.float64) + ctx.rank
    req = yield from ctx.na.notify_init(win, source=partner, tag=_TAG,
                                        expected_count=1)
    yield from win.lock_all()
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == client:
            yield from win.put(data, partner, 0)
            yield from ctx.na.flush_notify(win, partner, tag=_TAG)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
        else:
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            yield from win.put(data, partner, size_bytes)
            yield from ctx.na.flush_notify(win, partner, tag=_TAG)
    dt = (ctx.now - t0) / (2 * iters)
    yield from win.unlock_all()
    yield from ctx.na.request_free(req)
    return dt


def _na_get_program(ctx, size_bytes: int, iters: int):
    """Notified get ping-pong: pull the partner's buffer; the partner's
    notification doubles as the 'your data was consumed' pong."""
    client, server, partner = _client_server(ctx)
    win = yield from ctx.win_allocate(2 * size_bytes)
    buf = ctx.alloc(max(size_bytes, 8))
    req = yield from ctx.na.notify_init(win, source=partner, tag=_TAG,
                                        expected_count=1)
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == client:
            yield from ctx.na.get_notify(win, buf, partner, 0,
                                         nbytes=size_bytes, tag=_TAG)
            yield from win.flush(partner)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
        else:
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            yield from ctx.na.get_notify(win, buf, partner, size_bytes,
                                         nbytes=size_bytes, tag=_TAG)
            yield from win.flush(partner)
    dt = (ctx.now - t0) / (2 * iters)
    yield from ctx.na.request_free(req)
    return dt


def _raw_program(ctx, size_bytes: int, iters: int):
    """Unsynchronized busy-wait bound: wait directly on the data commit.

    The real benchmark spins on the first and last payload bytes; the
    simulated receiver instead waits until exactly the time the last byte
    becomes visible (the put's commit), handed over out-of-band.  Not a
    legal program — the paper plots it only as the transfer lower bound.
    """
    from repro.sim.resources import Store
    client, server, partner = _client_server(ctx)
    win = yield from ctx.win_allocate(2 * size_bytes)
    n = max(size_bytes // 8, 1)
    data = np.arange(n, dtype=np.float64) + ctx.rank
    yield from win.fence()          # open an access epoch, then measure
    # Out-of-band handle exchange standing in for the polled marker bytes.
    mailboxes = getattr(ctx.cluster, "_raw_mailboxes", None)
    if mailboxes is None:
        mailboxes = ctx.cluster._raw_mailboxes = [
            Store(ctx.engine, name=f"raw:{r}") for r in range(ctx.size)]
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == client:
            h = yield from win.put(data, partner, 0)
            mailboxes[partner].put(h)
            pong = yield from mailboxes[ctx.rank].get()
            if ctx.now < pong.commit_at:
                yield ctx.timeout(pong.commit_at - ctx.now)
            ctx.san_acquire(pong)
        else:
            ping = yield from mailboxes[ctx.rank].get()
            if ctx.now < ping.commit_at:
                yield ctx.timeout(ping.commit_at - ctx.now)
            ctx.san_acquire(ping)
            h = yield from win.put(data, partner, size_bytes)
            mailboxes[partner].put(h)
    dt = (ctx.now - t0) / (2 * iters)
    yield from win.fence_end()
    return dt


_PROGRAMS = {
    "mp": _mp_program,
    "onesided_pscw": _pscw_program,
    "onesided_fence": _fence_program,
    "na": _na_program,
    "na_get": _na_get_program,
    "flush_notify": _flush_notify_program,
    "raw": _raw_program,
}


def run_pingpong(mode: str, size_bytes: int, iters: int = 50,
                 same_node: bool = False,
                 config: ClusterConfig | None = None) -> dict:
    """Run one ping-pong configuration; returns metrics in µs.

    ``same_node=True`` places both ranks on one node (the Figure 3c
    shared-memory experiment).
    """
    if mode not in _PROGRAMS:
        raise ReproError(f"unknown ping-pong mode {mode!r}; "
                         f"choose from {PINGPONG_MODES}")
    if size_bytes % 8 or size_bytes <= 0:
        raise ReproError("size_bytes must be a positive multiple of 8")
    if config is None:
        config = ClusterConfig(nranks=2,
                               ranks_per_node=2 if same_node else 1)
    program = _PROGRAMS[mode]
    results, cluster = run_ranks(
        2, lambda ctx: program(ctx, size_bytes, iters), config=config)
    half_rtt = float(results[0])
    out = {
        "mode": mode,
        "size_bytes": size_bytes,
        "iters": iters,
        "same_node": same_node,
        "half_rtt_us": half_rtt,
        "bandwidth_MBps": size_bytes / half_rtt if half_rtt else 0.0,
        "wire_transactions": cluster.tracer.wire_transactions(),
    }
    if cluster.fabric.faults is not None:
        out["faults"] = cluster.stats()["faults"]
    return out
