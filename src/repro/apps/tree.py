"""16-ary tree reduction — Figure 4c of the paper (§VI-B).

P ranks form a k-ary (default 16) reduction tree.  Each inner node combines
its children's contributions and forwards the partial result to its parent;
the root holds the final reduction.

Modes
-----
``mp``      recv from each child, send to parent
``pscw``    children put into parent slots inside a PSCW epoch
``na``      children ``put_notify`` into per-child parent slots; the parent
            waits for **one counting request** with
            ``expected_count = #children`` (the paper's counting feature)
``vendor``  the tuned vendor ``MPI_Reduce`` stand-in (binomial tree with a
            cheaper software path)
"""

from __future__ import annotations


import numpy as np

from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError
from repro.mpi.collectives import vendor_reduce

TREE_MODES = ("mp", "pscw", "na", "vendor")

_TAG = 11


def _children(rank: int, size: int, arity: int) -> list[int]:
    return [c for c in range(rank * arity + 1, rank * arity + arity + 1)
            if c < size]


def _parent(rank: int, arity: int) -> int:
    return (rank - 1) // arity


def _tree_program(ctx, mode: str, arity: int, elems: int, reps: int):
    rank, size = ctx.rank, ctx.size
    kids = _children(rank, size, arity)
    value = np.full(elems, float(rank), dtype=np.float64)
    nbytes = elems * 8
    win = None
    req = None
    if mode in ("na", "pscw"):
        win = yield from ctx.win_allocate(max(len(kids), 1) * nbytes)
        if mode == "na" and kids:
            req = yield from ctx.na.notify_init(
                win, expected_count=len(kids))

    yield from ctx.barrier()
    reduce_time = 0.0
    for rep in range(reps):
        t_rep = ctx.now
        acc = value.copy()
        if mode == "mp":
            buf = np.zeros(elems)
            for c in kids:
                yield from ctx.comm.recv(buf, c, _TAG)
                acc += buf
            if rank != 0:
                yield from ctx.comm.send(acc, _parent(rank, arity), _TAG)
        elif mode == "na":
            if kids:
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                slots = win.local(np.float64).reshape(len(kids), elems)
                acc += slots.sum(axis=0)
            if rank != 0:
                parent = _parent(rank, arity)
                slot = parent * arity + 1
                yield from ctx.na.put_notify(
                    win, acc, parent, (rank - slot) * nbytes, tag=_TAG)
                yield from win.flush_local(parent)
        elif mode == "pscw":
            if kids:
                yield from win.post(kids)
                yield from win.wait(kids)
                slots = win.local(np.float64).reshape(len(kids), elems)
                acc += slots.sum(axis=0)
            if rank != 0:
                parent = _parent(rank, arity)
                slot = parent * arity + 1
                yield from win.start([parent])
                yield from win.put(acc, parent, (rank - slot) * nbytes)
                yield from win.complete()
        elif mode == "vendor":
            out = np.zeros(elems)
            yield from vendor_reduce(ctx.comm, value,
                                     out if rank == 0 else None, 0)
            acc = out
        if rank == 0:
            expected = size * (size - 1) / 2.0   # sum of all rank values
            if not np.allclose(acc, expected):
                raise ReproError(
                    f"tree reduction produced {acc[0]}, expected {expected}")
        reduce_time += ctx.now - t_rep
        # Separate repetitions so requests and slots can be reused safely
        # (the barrier is excluded from the measured reduction time).
        yield from ctx.barrier()
    return reduce_time / reps


def run_tree_reduction(mode: str, nranks: int, arity: int = 16,
                       elems: int = 1, reps: int = 5,
                       config: ClusterConfig | None = None) -> dict:
    """Run the k-ary tree reduction; returns the mean reduction time."""
    if mode not in TREE_MODES:
        raise ReproError(f"unknown tree mode {mode!r}; "
                         f"choose from {TREE_MODES}")
    if arity < 2:
        raise ReproError(f"arity must be >= 2, got {arity}")
    if config is None:
        config = ClusterConfig(nranks=nranks)
    results, cluster = run_ranks(
        nranks,
        lambda ctx: _tree_program(ctx, mode, arity, elems, reps),
        config=config)
    return {
        "mode": mode,
        "nranks": nranks,
        "arity": arity,
        "elems": elems,
        "size_bytes": elems * 8,
        "time_us": float(results[0]),
    }
