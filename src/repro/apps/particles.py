"""Dynamic particle exchange — the §VI-B motif for dynamic applications.

The paper motivates consumer-managed buffering with "dynamic applications
such as particle codes or graph computations": multiple producers send data
to a consumer and **the set of producers changes nondeterministically**, so
producer-managed target buffers are awkward.

Here a 1D periodic domain is split into per-rank cells.  Each step every
particle moves by a velocity-dependent offset; particles crossing a cell
boundary must migrate to the owning rank.  Who sends to whom — and how
much — changes every step.

Modes
-----
``mp``   each rank sends per-destination batches; because receivers cannot
         know how many messages will arrive, every step ends with an
         allreduce on the global migration count (the classic termination
         protocol), then probe/recv loops.
``na``   each rank ``put_notify``-s its batches into per-source slots and
         sends zero-byte "step done" notifications to its two potential
         neighbours; the consumer's counting request replaces the global
         allreduce — point-to-point termination, the NA advantage.

Both modes move real particle coordinates; ``verify=True`` checks every
step against a serial reference.
"""

from __future__ import annotations


import numpy as np

from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError

PARTICLE_MODES = ("mp", "na")

#: maximum particles one rank can host (slot sizing)
MAX_LOCAL = 4096
#: tag marking a data batch; the step parity rides in the low bit
_BATCH_TAG = 2
_DONE_TAG = 8


def _serial_reference(domain: float, positions: np.ndarray,
                      velocities: np.ndarray, steps: int,
                      dt: float) -> np.ndarray:
    pos = positions.copy()
    for _ in range(steps):
        pos = (pos + velocities * dt) % domain
    return np.sort(pos)


def _initial_particles(nranks: int, per_rank: int, seed: int):
    rng = np.random.default_rng(seed)
    domain = float(nranks)          # one unit of space per rank
    n = nranks * per_rank
    positions = rng.uniform(0, domain, n)
    velocities = rng.uniform(-0.4, 0.4, n)
    return domain, positions, velocities


def _particles_program(ctx, mode: str, per_rank: int, steps: int,
                       dt: float, seed: int, verify: bool):
    rank, size = ctx.rank, ctx.size
    domain, all_pos, all_vel = _initial_particles(size, per_rank, seed)
    mine = (all_pos >= rank) & (all_pos < rank + 1)
    pos = all_pos[mine].copy()
    vel = all_vel[mine].copy()

    left, right = (rank - 1) % size, (rank + 1) % size
    # NA window: two parity sets x two source slots (from left / right),
    # each (1 + 2*MAX_LOCAL) doubles: [count, positions..., velocities...].
    slot_doubles = 1 + 2 * MAX_LOCAL
    win = None
    step_reqs = None
    if mode == "na":
        win = yield from ctx.win_allocate(4 * slot_doubles * 8)
        # One counting request per parity: both neighbours report "done"
        # (their batch for us, possibly empty, has been delivered).
        step_reqs = []
        for parity in range(2):
            r = yield from ctx.na.notify_init(
                win, tag=_DONE_TAG + parity,
                expected_count=2 if size > 1 else 1)
            step_reqs.append(r)

    def pack(mask: np.ndarray) -> np.ndarray:
        out = np.empty(1 + 2 * int(mask.sum()))
        out[0] = float(mask.sum())
        out[1:1 + int(mask.sum())] = pos[mask]
        out[1 + int(mask.sum()):] = vel[mask]
        return out

    yield from ctx.barrier()
    t0 = ctx.now

    for step in range(steps):
        parity = step % 2
        # Move my particles; charge per-particle compute.
        yield from ctx.compute(len(pos) * 0.002)
        pos = (pos + vel * dt) % domain
        dest_cell = np.floor(pos).astype(int) % size
        stay = dest_cell == rank
        # Velocities are bounded so migration is at most one cell; with
        # size == 2 "left" and "right" are the same rank and the split
        # between the two masks is arbitrary but consistent.
        go_left = ~stay & (dest_cell == left)
        go_right = ~stay & ~go_left
        if (go_right & (dest_cell != right)).any():
            raise ReproError("particle moved more than one cell per step")
        if size == 1:
            continue

        if mode == "mp":
            # Send batches (possibly empty counts are NOT sent) ...
            nsent = 0
            for mask, dest in ((go_left, left), (go_right, right)):
                if mask.any():
                    yield from ctx.comm.send(pack(mask), dest,
                                             tag=_BATCH_TAG + parity)
                    nsent += 1
            # ... then the termination protocol: a global allreduce on the
            # number of batches each rank should expect.
            sent_to = np.zeros(size)
            if go_left.any():
                sent_to[left] += 1
            if go_right.any():
                sent_to[right] += 1
            expect = np.zeros(size)
            yield from ctx.comm.allreduce(sent_to, expect)
            pos, vel = pos[stay], vel[stay]
            for _ in range(int(expect[rank])):
                buf = np.zeros(1 + 2 * MAX_LOCAL)
                st = yield from ctx.comm.recv(
                    buf, tag=_BATCH_TAG + parity)
                cnt = int(buf[0])
                pos = np.concatenate([pos, buf[1:1 + cnt]])
                vel = np.concatenate(
                    [vel, buf[1 + cnt:1 + 2 * cnt]])
        else:  # na
            # Deposit batches into my per-source slot at each neighbour,
            # then notify "done" — even when the batch is empty (zero
            # particles still means "you will get nothing more from me").
            for mask, dest, side in ((go_left, left, 1),
                                     (go_right, right, 0)):
                # side: which source slot of the DEST this rank occupies
                # (I am its right neighbour when sending left).
                disp = (parity * 2 + side) * slot_doubles * 8
                batch = pack(mask)
                yield from ctx.na.put_notify(win, batch, dest, disp,
                                             tag=_DONE_TAG + parity)
                yield from win.flush_local(dest)
            pos, vel = pos[stay], vel[stay]
            req = step_reqs[parity]
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            # View only this parity's pair of slots: the other parity's
            # slots may already be receiving next-step batches.
            slots = win.local(
                np.float64, offset=parity * 2 * slot_doubles * 8,
                count=2 * slot_doubles, mode="r").reshape(2, slot_doubles)
            for side in range(2):
                row = slots[side]
                cnt = int(row[0])
                if cnt:
                    pos = np.concatenate([pos, row[1:1 + cnt]])
                    vel = np.concatenate(
                        [vel, row[1 + cnt:1 + 2 * cnt]])
        if len(pos) > MAX_LOCAL:
            raise ReproError("local particle buffer overflow")

    elapsed = ctx.now - t0
    return (elapsed, np.sort(pos) if verify else None, len(pos))


def run_particles(mode: str, nranks: int, per_rank: int = 64,
                  steps: int = 8, dt: float = 0.3, seed: int = 5,
                  verify: bool = False,
                  config: ClusterConfig | None = None) -> dict:
    """Run the dynamic particle exchange; returns timing and checks."""
    if mode not in PARTICLE_MODES:
        raise ReproError(f"unknown particles mode {mode!r}; "
                         f"choose from {PARTICLE_MODES}")
    if config is None:
        config = ClusterConfig(nranks=nranks)
    results, cluster = run_ranks(
        nranks,
        lambda ctx: _particles_program(ctx, mode, per_rank, steps, dt,
                                       seed, verify),
        config=config)
    elapsed = max(r[0] for r in results)
    total = sum(r[2] for r in results)
    out = {
        "mode": mode,
        "nranks": nranks,
        "steps": steps,
        "time_us": elapsed,
        "total_particles": total,
        "particles_conserved": total == nranks * per_rank,
    }
    if not out["particles_conserved"]:
        raise ReproError(
            f"lost particles: {total} of {nranks * per_rank}")
    if verify:
        domain, all_pos, all_vel = _initial_particles(nranks, per_rank,
                                                      seed)
        ref = _serial_reference(domain, all_pos, all_vel, steps, dt)
        got = np.sort(np.concatenate(
            [r[1] for r in results if r[1] is not None]))
        out["max_error"] = float(np.abs(got - ref).max())
    return out
