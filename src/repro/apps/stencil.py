"""PRK Sync_p2p pipelined stencil — Figures 1 and 4b of the paper.

A ``rows × cols`` grid is decomposed column-block-wise over P ranks.  The
3-point update ``A(i,j) = A(i-1,j) + A(i,j-1) - A(i-1,j-1)`` makes row ``i``
of rank ``p`` depend on the last column of rank ``p-1``'s row ``i``: a
wavefront pipeline where exactly **one double** crosses each boundary per
row — the latency-bound, synchronization-dominated pattern the paper uses
to showcase Notified Access.

Modes
-----
``mp``     blocking recv → compute → send per row
``na``     one ``put_notify`` per row into a per-row halo slot; the consumer
           drains a single wildcard-tag request in arrival (= row) order
``pscw``   per-row post/start/complete/wait epochs with both neighbours
``fence``  per-row global fences; the wavefront advances one rank per round

Set ``verify=True`` to run the real numerics (NumPy) alongside the timing
model and check the global corner value against a serial reference.
"""

from __future__ import annotations


import numpy as np

from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError

STENCIL_MODES = ("mp", "na", "pscw", "fence")

#: ring-buffer depth of the PSCW/fence halo slots
NA_SLOTS = 4
#: modeled memory operations per grid point (for the GMOPS metric)
POINT_MOPS = 4
#: modeled flops per grid point (for CPU-time charging)
POINT_FLOPS = 4.0


def _split(cols: int, size: int, rank: int) -> tuple[int, int]:
    """Column range [lo, hi) of ``rank`` (block distribution)."""
    base, rem = divmod(cols, size)
    lo = rank * base + min(rank, rem)
    hi = lo + base + (1 if rank < rem else 0)
    return lo, hi


def _serial_reference(rows: int, cols: int, iters: int) -> float:
    """Serial PRK Sync_p2p; returns the final corner value.

    Uses the telescoped form of the recurrence
    ``A[i,j] = A[i,0] + A[i-1,j] - A[i-1,0]`` row by row.
    """
    a = np.zeros((rows, cols))
    a[0, :] = np.arange(cols, dtype=np.float64)
    a[:, 0] = np.arange(rows, dtype=np.float64)
    for _ in range(iters):
        for i in range(1, rows):
            a[i, 1:] = a[i, 0] + a[i - 1, 1:] - a[i - 1, 0]
        a[0, 0] = -a[rows - 1, cols - 1]
    return float(a[rows - 1, cols - 1])


class _LocalGrid:
    """Per-rank grid state (real numerics, used when verify=True).

    Because the 3-point recurrence telescopes along a row, updating the
    local segment needs the left halo of the *current* row (received from
    the left neighbour) and of the *previous* row (remembered from the last
    exchange): ``A[i,j] = halo_i + A[i-1,j] - halo_{i-1}``.
    """

    def __init__(self, rows: int, lo: int, hi: int, rank: int):
        self.rows = rows
        self.lo, self.hi = lo, hi
        self.a = np.zeros((rows, hi - lo))
        self.a[0, :] = np.arange(lo, hi, dtype=np.float64)
        if rank == 0:
            self.a[:, 0] = np.arange(rows, dtype=np.float64)
        # Halo of row 0 is the known top boundary value A[0, lo-1] = lo-1.
        self.prev_left = float(lo - 1) if lo > 0 else 0.0

    def begin_iteration(self) -> None:
        """Reset the halo bookkeeping for a new sweep (row 0 is fixed)."""
        self.prev_left = float(self.lo - 1) if self.lo > 0 else 0.0

    def update_row(self, i: int, left_val: float) -> float:
        seg = self.a[i]
        if self.lo == 0:
            # First column is a fixed boundary; telescope from it.
            seg[1:] = seg[0] + self.a[i - 1, 1:] - self.a[i - 1, 0]
        else:
            seg[:] = left_val + self.a[i - 1, :] - self.prev_left
            self.prev_left = left_val
        return float(seg[-1])


def _stencil_program(ctx, mode: str, rows: int, cols: int, iters: int,
                     verify: bool):
    rank, size = ctx.rank, ctx.size
    lo, hi = _split(cols, size, rank)
    cols_local = hi - lo
    left = rank - 1 if rank > 0 else None
    right = rank + 1 if rank < size - 1 else None
    row_compute_us = cols_local * POINT_FLOPS / ctx.cluster.cfg.flops_per_us
    grid = _LocalGrid(rows, lo, hi, rank) if verify else None

    def compute_row(i: int, left_val: float) -> float:
        """Returns the boundary value this rank sends right for row i."""
        if grid is not None:
            return grid.update_row(i, left_val)
        return 0.0

    # --- per-mode communication plumbing ---------------------------------
    # NA uses one halo slot per row (the full boundary column), so no slot
    # is reused within a sweep and no credit traffic is needed; the sweep
    # barrier separates reuse across iterations.  PSCW/fence cycle through
    # a small slot ring, synchronized by their own epochs.
    win = None
    data_req = None
    if mode in ("pscw", "fence"):
        win = yield from ctx.win_allocate(max(NA_SLOTS, 2) * 8)
    elif mode == "na":
        win = yield from ctx.win_allocate(rows * 8)
        if left is not None:
            # Rows arrive in order on the in-order fabric, so one wildcard
            # request consumes them in row order; the status tag carries
            # the row index (mod 2^16) as a cross-check.
            from repro.mpi.constants import ANY_TAG
            data_req = yield from ctx.na.notify_init(win, source=left,
                                                     tag=ANY_TAG)

    yield from ctx.barrier()
    t0 = ctx.now

    for it in range(iters):
        if grid is not None:
            grid.begin_iteration()
        if mode in ("mp", "na", "pscw"):
            for i in range(1, rows):
                slot = i % NA_SLOTS
                left_val = 0.0
                # 1. obtain the halo value from the left neighbour
                if left is not None:
                    if mode == "mp":
                        buf = np.zeros(1)
                        yield from ctx.comm.recv(buf, left, tag=0)
                        left_val = float(buf[0])
                    elif mode == "na":
                        yield from ctx.na.start(data_req)
                        st = yield from ctx.na.wait(data_req)
                        if st.tag != (i & 0xFFFF):
                            raise ReproError(
                                f"halo row mismatch: got tag {st.tag} "
                                f"for row {i}")
                        left_val = float(win.local(np.float64, offset=i * 8,
                                                   count=1, mode="r")[0])
                    elif mode == "pscw":
                        yield from win.post([left])
                        yield from win.wait([left])
                        left_val = float(win.local(np.float64,
                                                   offset=slot * 8,
                                                   count=1, mode="r")[0])
                # 2. compute the row segment
                yield from ctx.compute(row_compute_us)
                out_val = compute_row(i, left_val)
                # 3. forward the boundary value to the right neighbour
                if right is not None:
                    if mode == "mp":
                        yield from ctx.comm.send(np.array([out_val]), right,
                                                 tag=0)
                    elif mode == "na":
                        yield from ctx.na.put_notify(
                            win, np.array([out_val]), right,
                            i * 8, tag=i & 0xFFFF)
                        yield from win.flush_local(right)
                    elif mode == "pscw":
                        yield from win.start([right])
                        yield from win.put(np.array([out_val]), right,
                                           slot * 8)
                        yield from win.complete()
        elif mode == "fence":
            # The wavefront advances one rank per global fence round.
            yield from win.fence()
            total_rounds = (rows - 1) + size
            for t in range(total_rounds):
                i = t - rank + 1
                if 1 <= i < rows:
                    slot = i % 2
                    left_val = (float(win.local(np.float64,
                                                offset=slot * 8,
                                                count=1, mode="r")[0])
                                if left is not None else 0.0)
                    yield from ctx.compute(row_compute_us)
                    out_val = compute_row(i, left_val)
                    if right is not None:
                        yield from win.put(np.array([out_val]), right,
                                           slot * 8)
                yield from win.fence()
            yield from win.fence_end()
        # Iteration handoff: the PRK kernel feeds the corner value back.
        if iters > 1 or verify:
            corner = np.zeros(1)
            if rank == size - 1:
                if grid is not None:
                    corner[0] = -grid.a[rows - 1, -1]
                yield from ctx.comm.send(corner, 0, tag=7)
            elif rank == 0:
                yield from ctx.comm.recv(corner, size - 1, tag=7)
                if grid is not None:
                    grid.a[0, 0] = corner[0]
            yield from ctx.barrier()

    elapsed = ctx.now - t0
    result = None
    if grid is not None and rank == size - 1:
        result = float(grid.a[rows - 1, -1])
    return (elapsed, result)


def run_stencil(mode: str, nranks: int, rows: int, cols: int,
                iters: int = 1, verify: bool = False,
                config: ClusterConfig | None = None) -> dict:
    """Run the pipelined stencil; returns timing and GMOPS metrics."""
    if mode not in STENCIL_MODES:
        raise ReproError(f"unknown stencil mode {mode!r}; "
                         f"choose from {STENCIL_MODES}")
    if rows < 2 or cols < nranks:
        raise ReproError("grid too small for the rank count")
    if config is None:
        config = ClusterConfig(nranks=nranks)
    results, cluster = run_ranks(
        nranks,
        lambda ctx: _stencil_program(ctx, mode, rows, cols, iters, verify),
        config=config)
    elapsed = max(r[0] for r in results)
    points = (rows - 1) * (cols - 1) * iters
    mops = points * POINT_MOPS
    out = {
        "mode": mode,
        "nranks": nranks,
        "rows": rows,
        "cols": cols,
        "iters": iters,
        "time_us": elapsed,
        "gmops": mops / (elapsed * 1000.0) if elapsed else 0.0,
    }
    if verify:
        corner = results[nranks - 1][1]
        out["corner"] = corner
        out["corner_expected"] = _serial_reference(rows, cols, iters)
    return out
