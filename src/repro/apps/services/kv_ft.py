"""Fault-tolerant KV service: replication failover under node deaths.

The :mod:`repro.apps.services.kv` store with the :mod:`repro.ft` layer
wired in, measuring *availability* and *recovery time* while the fault
injector kills server nodes mid-run:

Write path
    A put mirrors its record to the first R **live** servers of the
    key's ring chain (:class:`~repro.ft.replicate.ReplicatedWindow`) and
    waits for R zero-byte credit acks through one counting request.
    When a replica dies before acking,
    :meth:`~repro.ft.replicate.ReplicatedWindow.wait_acks` re-points the
    outstanding credit at the next live chain member; the client only
    sees :class:`~repro.errors.FaultError` when the whole chain is dead.

Read path
    A get RPCs the first live chain server.  If that server dies before
    replying, the client retries against the next live chain member
    under a fresh tag and reply slot (a stale late reply can then never
    alias the retry — it parks in the unexpected queue).  With
    ``replication >= 2`` the retry target holds every acked record, so
    reads of acked values survive recovery; with ``replication == 1``
    staleness and loss become measurable instead of fatal.

Epoch checkpoints
    All ranks cut a collective epoch-0 checkpoint after setup.  From
    then on each server ships an incremental snapshot of its applied
    store to a buddy (the next server rank) every ``ckpt_every``
    applies: one notified put of the packed records, acked by a
    zero-byte credit — a server never ships epoch ``k+1`` until the
    buddy acked ``k``, which both bounds buddy memory to one slot and
    gives the sanitizer the happens-before edge ordering successive
    slot overwrites.  The buddy's latest snapshot per dead server is
    reported as the recoverable-record count.

Termination
    Dead servers crash-exit at their planned death time; live servers
    cannot count down static expectations (failover re-points records),
    so clients send a zero-byte end-of-stream credit to every live
    server after settling, and a server exits once all ``nclients``
    credits arrived (a counting request).  Acks happen-before client
    settle happens-before EOS, so no work can linger at a live server
    past its EOS count.

Every wire operation is a notified put and the fault plan is
node-failure-only (no RNG draws), so results — including every latency
and failover count — are byte-identical between the serial core and
``--shards`` runs.
"""

from __future__ import annotations

import numpy as np

from repro.apps.services.kv import (
    _RECORD_BYTES,
    _VALUE_BYTES,
    build_kv_workload,
    copy_servers,
    seed_value,
)
from repro.cluster import ClusterConfig, run_ranks
from repro.errors import FaultError, ReproError
from repro.ft.checkpoint import checkpoint as cut_checkpoint
from repro.ft.detector import FailureDetector
from repro.ft.replicate import ReplicatedWindow
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

#: float64 slots in a shipped checkpoint header: [epoch, record_count]
_CKPT_HEADER = 2


def _chain(nservers: int):
    """Replica preference order for a primary: the full server ring."""
    def chain(primary: int) -> list[int]:
        return [(primary + j) % nservers for j in range(nservers)]
    return chain


def _ckpt_payload(store: dict[int, float], epoch: int,
                  nkeys: int) -> np.ndarray:
    """Pack a server's applied store as [epoch, count, key, val, ...]."""
    out = np.zeros(_CKPT_HEADER + 2 * nkeys, dtype=np.float64)
    out[0] = float(epoch)
    out[1] = float(len(store))
    for j, key in enumerate(sorted(store)):
        out[_CKPT_HEADER + 2 * j] = float(key)
        out[_CKPT_HEADER + 2 * j + 1] = store[key]
    return out


def _parse_ckpt(raw: np.ndarray) -> tuple[int, dict[int, float]]:
    epoch = int(raw[0])
    count = int(raw[1])
    store = {int(raw[_CKPT_HEADER + 2 * j]): float(raw[_CKPT_HEADER + 2 * j + 1])
             for j in range(count)}
    return epoch, store


def _ft_windows(ctx, nclients, nservers, reqs_per_client, nkeys):
    """Collective window allocation, identical on every rank.

    The RPC/reply spaces are ``nservers`` times the legacy size: a get
    retried against the k-th chain member uses tag
    ``k * reqs_per_client + i``, which indexes a fresh request slot and
    a fresh reply slot — stale replies can never alias a retry.
    """
    span = nservers * reqs_per_client
    kv_win = yield from ctx.win_allocate(
        max(nclients * reqs_per_client * _RECORD_BYTES, _RECORD_BYTES))
    rpc_win = yield from ctx.win_allocate(
        max(nclients * span * _VALUE_BYTES, _VALUE_BYTES))
    ack_win = yield from ctx.win_allocate(_VALUE_BYTES)
    reply_win = yield from ctx.win_allocate(
        max(span * _VALUE_BYTES, _VALUE_BYTES))
    eos_win = yield from ctx.win_allocate(_VALUE_BYTES)
    ckpt_win = yield from ctx.win_allocate(
        (_CKPT_HEADER + 2 * nkeys) * 8)
    return kv_win, rpc_win, ack_win, reply_win, eos_win, ckpt_win


def _server_program_ft(ctx, plans, nservers, reqs_per_client, nkeys,
                       ckpt_every):
    """FT server: apply/ack/serve until EOS or planned crash."""
    nclients = len(plans)
    span = nservers * reqs_per_client
    (kv_win, rpc_win, ack_win, reply_win, eos_win,
     ckpt_win) = yield from _ft_windows(ctx, nclients, nservers,
                                        reqs_per_client, nkeys)
    det = FailureDetector(ctx)
    t_die = det.death_time(ctx.rank)
    buddy = (ctx.rank + 1) % nservers
    put_req = yield from ctx.na.notify_init(kv_win, source=ANY_SOURCE,
                                            tag=ANY_TAG)
    get_req = yield from ctx.na.notify_init(rpc_win, source=ANY_SOURCE,
                                            tag=ANY_TAG)
    eos_req = yield from ctx.na.notify_init(eos_win, source=ANY_SOURCE,
                                            tag=0,
                                            expected_count=nclients)
    ckpt_req = yield from ctx.na.notify_init(ckpt_win, source=ANY_SOURCE,
                                             tag=ANY_TAG)
    ack_req = yield from ctx.na.notify_init(
        ack_win, source=buddy if nservers > 1 else ANY_SOURCE, tag=1)
    yield from ctx.barrier()
    # Epoch-0 collective checkpoint: every rank cuts the same setup cut.
    yield from cut_checkpoint(ctx, [kv_win], requests=(put_req,),
                              epoch=0)
    if t_die is not None and ctx.now >= t_die:
        raise ReproError(
            f"server {ctx.rank} is planned dead at t={t_die:g}us, before "
            f"setup finished at t={ctx.now:g}us — raise the death time")

    store: dict[int, float] = {}
    order: list[tuple[str, int, int]] = []
    served = 0
    applied = 0
    since_ckpt = 0
    epoch = 0
    ckpt_pending = False
    buddy_ckpts: dict[int, tuple[int, dict[int, float]]] = {}
    empty = np.empty(0, dtype=np.uint8)
    yield from ctx.na.start(put_req)
    yield from ctx.na.start(get_req)
    yield from ctx.na.start(eos_req)
    yield from ctx.na.start(ckpt_req)
    crashed = False
    eos = False
    while True:
        if t_die is not None and ctx.now >= t_die:
            crashed = True
            break
        reqs = [put_req, get_req, eos_req, ckpt_req]
        if ckpt_pending:
            reqs.append(ack_req)
        idx = yield from ctx.na.testany(reqs)
        if idx is None:
            if ctx.nic.notification_pending():
                continue
            waits = [ctx.nic.notification_arrival()]
            if t_die is not None:
                waits.append(ctx.timeout(t_die - ctx.now))
            yield waits[0] if len(waits) == 1 else ctx.engine.any_of(waits)
            continue
        req = reqs[idx]
        st = req.last_status
        if req is eos_req:
            eos = True
            break
        if req is put_req:
            client_idx = st.source - nservers
            slot = (client_idx * reqs_per_client + st.tag) * _RECORD_BYTES
            rec = kv_win.local(np.float64, offset=slot, count=2, mode="r")
            store[int(rec[0])] = float(rec[1])
            order.append(("put", st.source, st.tag))
            applied += 1
            since_ckpt += 1
            yield from ctx.na.put_notify(ack_win, empty, st.source, 0,
                                         tag=st.tag)
            yield from ack_win.flush_local(st.source)
            yield from ctx.na.start(put_req)
            if (ckpt_every and since_ckpt >= ckpt_every
                    and not ckpt_pending and nservers > 1
                    and not det.detected(buddy)):
                # Ship the applied store to the buddy; the next ship
                # waits for this one's credit (one slot, flow-controlled,
                # and the ack match orders successive slot overwrites).
                epoch += 1
                payload = _ckpt_payload(store, epoch, nkeys)
                yield from ctx.na.put_notify(ckpt_win, payload, buddy, 0,
                                             tag=0)
                yield from ckpt_win.flush_local(buddy)
                yield from ctx.na.start(ack_req)
                ckpt_pending = True
                since_ckpt = 0
        elif req is get_req:
            client_idx = st.source - nservers
            slot = (client_idx * span + st.tag) * _VALUE_BYTES
            reqv = rpc_win.local(np.float64, offset=slot, count=1,
                                 mode="r")
            key = int(reqv[0])
            value = store.get(key, seed_value(key))
            order.append(("get", st.source, st.tag))
            yield from ctx.na.put_notify(
                reply_win, np.array([value]), st.source,
                st.tag * _VALUE_BYTES, tag=st.tag)
            yield from reply_win.flush_local(st.source)
            served += 1
            yield from ctx.na.start(get_req)
        elif req is ckpt_req:
            # Buddy snapshot arrived: copy it out (the match is the
            # acquire for the read), then credit the shipper so it may
            # overwrite the slot with the next epoch.
            raw = ckpt_win.local(np.float64, offset=0,
                                 count=_CKPT_HEADER + 2 * nkeys,
                                 mode="r").copy()
            ck_epoch, ck_store = _parse_ckpt(raw)
            buddy_ckpts[st.source] = (ck_epoch, ck_store)
            yield from ctx.na.put_notify(ack_win, empty, st.source, 0,
                                         tag=1)
            yield from ack_win.flush_local(st.source)
            yield from ctx.na.start(ckpt_req)
        else:                                   # ack_req: buddy credit
            ckpt_pending = False
    return {"store": store, "order": order, "served": served,
            "acked": applied, "crashed": crashed, "eos": eos,
            "died_at": t_die if crashed else None,
            "ckpt_epochs": epoch, "buddy_ckpts": buddy_ckpts}


def _client_program_ft(ctx, plans, nservers, replication, reqs_per_client,
                       nkeys, warmup_us, legal):
    """FT client: open-loop issue, settle with failover, EOS credits."""
    me_idx = ctx.rank - nservers
    plan = plans[me_idx]
    nclients = len(plans)
    span = nservers * reqs_per_client
    (kv_win, rpc_win, ack_win, reply_win, eos_win,
     ckpt_win) = yield from _ft_windows(ctx, nclients, nservers,
                                        reqs_per_client, nkeys)
    det = FailureDetector(ctx)
    chain = _chain(nservers)
    rwin = ReplicatedWindow(ctx, kv_win, chain, replication, detector=det)
    yield from ctx.barrier()
    yield from cut_checkpoint(ctx, [kv_win], epoch=0)
    t0 = ctx.now

    puts: list[tuple[int, object, object]] = []   # (rid, req, rput)
    gets: list[tuple[int, object, int, int]] = []  # (rid, req, target, att)
    failed_issue = 0
    for i in range(len(plan.arrivals)):
        due = t0 + plan.arrivals[i]
        if ctx.now < due:
            yield ctx.timeout(due - ctx.now)
        key = int(plan.keys[i])
        primary = copy_servers(key, nservers, 1)[0]
        if plan.is_get[i]:
            live = det.live(chain(primary))
            if not live:
                failed_issue += 1
                continue
            target = live[0]
            req = yield from ctx.na.notify_init(
                reply_win, source=target, tag=i)
            yield from ctx.na.start(req)
            yield from ctx.na.put_notify(
                rpc_win, np.array([float(key)]), target,
                (me_idx * span + i) * _VALUE_BYTES, tag=i)
            gets.append((i, req, target, 0))
        else:
            slot = me_idx * reqs_per_client + i
            record = np.array([float(key), float(slot)])
            try:
                targets = rwin.targets(primary)
            except FaultError:
                failed_issue += 1
                continue
            req = yield from ctx.na.notify_init(
                ack_win, source=ANY_SOURCE, tag=i,
                expected_count=len(targets))
            yield from ctx.na.start(req)
            rput = yield from rwin.put_notify(
                record, primary, slot * _RECORD_BYTES, tag=i,
                targets=targets)
            puts.append((i, req, rput))

    # Settle with failover.  Latencies still come from the match log's
    # NIC arrival clocks (shard-tie invariant); a request that needed a
    # failover is marked "affected" for the recovery-time accounting.
    lat_put: list[float] = []
    lat_get: list[float] = []
    lat_affected: list[float] = []
    put_info: list[dict] = []
    failed = failed_issue
    failovers = 0
    done = 0
    t_last = t0
    for rid, req, rput in puts:
        try:
            yield from rwin.wait_acks(req, rput)
        except FaultError:
            failed += 1
            continue
        t_done = max(t for _, _, t in req.match_log)
        lat = t_done - (t0 + plan.arrivals[rid])
        failovers += rput.failovers
        done += 1
        t_last = max(t_last, t_done)
        put_info.append({"rid": rid, "key": int(plan.keys[rid]),
                         "value": float(me_idx * reqs_per_client + rid),
                         "targets": list(rput.targets),
                         "failovers": rput.failovers})
        if plan.arrivals[rid] >= warmup_us:
            lat_put.append(lat)
            if rput.failovers:
                lat_affected.append(lat)
    for rid, req, target, attempt in gets:
        key = int(plan.keys[rid])
        tag = rid
        ok = True
        while True:
            done_req = yield from ctx.na.test(req)
            if done_req:
                break
            if det.detected(target):
                # Retry against the next live chain member under a
                # fresh tag + reply slot; the abandoned request keeps
                # its slot so a stale late reply can never alias us.
                live = det.live(chain(copy_servers(key, nservers, 1)[0]))
                attempt += 1
                if not live or attempt >= nservers:
                    ok = False
                    break
                target = live[0]
                tag = attempt * reqs_per_client + rid
                failovers += 1
                req = yield from ctx.na.notify_init(
                    reply_win, source=target, tag=tag)
                yield from ctx.na.start(req)
                yield from ctx.na.put_notify(
                    rpc_win, np.array([float(key)]), target,
                    (me_idx * span + tag) * _VALUE_BYTES, tag=tag)
                continue
            if ctx.nic.notification_pending():
                continue
            arrival = ctx.nic.notification_arrival()
            timer = det.timer()
            yield (arrival if timer is None
                   else ctx.engine.any_of([arrival, timer]))
        if not ok:
            failed += 1
            continue
        t_done = max(t for _, _, t in req.match_log)
        yield from ctx.na.request_free(req)
        value = float(reply_win.local(np.float64,
                                      offset=tag * _VALUE_BYTES,
                                      count=1, mode="r")[0])
        if legal is not None and value not in legal[key]:
            raise ReproError(
                f"client {me_idx} get({key}) read {value}, not one of "
                f"the {len(legal[key])} values ever written to it")
        lat = t_done - (t0 + plan.arrivals[rid])
        done += 1
        t_last = max(t_last, t_done)
        if plan.arrivals[rid] >= warmup_us:
            lat_get.append(lat)
            if attempt:
                lat_affected.append(lat)
    # End-of-stream credits to every live server (no trailing barrier:
    # dead servers cannot join collectives).
    empty = np.empty(0, dtype=np.uint8)
    for s in det.live(range(nservers)):
        yield from ctx.na.put_notify(eos_win, empty, s, 0, tag=0)
        yield from eos_win.flush_local(s)
    return {"lat_put": lat_put, "lat_get": lat_get,
            "lat_affected": lat_affected, "done": done, "failed": failed,
            "failovers": failovers, "put_info": put_info,
            "t_end": t_last - t0}


def run_kv_ft(nservers: int = 4, nclients: int = 8, replication: int = 2,
              reqs_per_client: int = 32, rate_rps: float = 4000.0,
              get_frac: float = 0.5, nkeys: int = 64,
              zipf_skew: float = 0.9, warmup_frac: float = 0.2,
              process: str = "poisson", verify: bool = True,
              ckpt_every: int = 8, seed: int = 42,
              config: ClusterConfig | None = None) -> dict:
    """Run the KV service with the fault-tolerance layer on.

    The cluster configuration's :class:`~repro.faults.FaultPlan` (if
    any) must be node-failure-only (``FaultPlan.shardable``) and may
    only kill *server* ranks — clients survive to report results.
    Returns the legacy result surface plus availability, failover, and
    checkpoint-recovery accounting.
    """
    if nservers < 1 or nclients < 1:
        raise ReproError("need at least one server and one client")
    if not 1 <= replication <= nservers:
        raise ReproError(
            f"replication {replication} outside [1, nservers={nservers}]")
    if not 1 <= nservers * reqs_per_client <= 0xFFFF:
        raise ReproError(
            "nservers * reqs_per_client must fit the 16-bit tag space "
            "(retries use tag = attempt * reqs_per_client + i)")
    nranks = nservers + nclients
    if config is None:
        config = ClusterConfig(nranks=nranks, ranks_per_node=2)
    if config.nranks != nranks:
        raise ReproError(f"config has {config.nranks} ranks, "
                         f"need {nranks}")
    plan_f = config.faults
    deaths: dict[int, float] = {}
    if plan_f is not None and plan_f.active:
        if not plan_f.shardable:
            raise ReproError(
                "run_kv_ft needs a node-failure-only FaultPlan "
                "(probabilistic fault classes are serial-only and would "
                "break the --shards byte-equality contract)")
        deaths = dict(plan_f.node_failures)
        bad = [r for r in deaths if not 0 <= r < nservers]
        if bad:
            raise ReproError(
                f"only server ranks (0..{nservers - 1}) may die, "
                f"plan kills {sorted(bad)}")
        if len(deaths) >= nservers:
            raise ReproError("at least one server must survive")
    plans = build_kv_workload(seed, nclients, reqs_per_client, rate_rps,
                              get_frac, nkeys, zipf_skew, process)
    from repro.apps.services.kv import _legal_values
    legal = (_legal_values(plans, reqs_per_client, nkeys)
             if verify else None)
    expected_us = reqs_per_client * nclients / rate_rps * 1e6
    warmup_us = warmup_frac * expected_us

    def program(ctx):
        # analyze: skip  (rank count and loop bounds come from the plan)
        if ctx.rank < nservers:
            result = yield from _server_program_ft(
                ctx, plans, nservers, reqs_per_client, nkeys, ckpt_every)
        else:
            result = yield from _client_program_ft(
                ctx, plans, nservers, replication, reqs_per_client,
                nkeys, warmup_us, legal)
        return result

    results, _cluster = run_ranks(nranks, program, config=config)
    servers = results[:nservers]
    clients = results[nservers:]
    lat_put = sorted(x for c in clients for x in c["lat_put"])
    lat_get = sorted(x for c in clients for x in c["lat_get"])
    lat_affected = sorted(x for c in clients for x in c["lat_affected"])
    total = reqs_per_client * nclients
    done = sum(c["done"] for c in clients)
    failed = sum(c["failed"] for c in clients)

    # -- acked-write audit ---------------------------------------------
    # (1) Every acking server really applied the record (its order log
    # carries the match) — an ack without an apply would be a protocol
    # bug.  (2) An acked write is *lost* when no live member of its
    # final replica set survives to serve it.
    dead_now = set(deaths)
    orders = [set(s["order"]) for s in servers]
    acked_lost = 0
    for c_idx, c in enumerate(clients):
        for info in c["put_info"]:
            rid = info["rid"]
            for srv in info["targets"]:
                if ("put", nservers + c_idx, rid) not in orders[srv]:
                    raise ReproError(
                        f"server {srv} acked put tag {rid} of client "
                        f"{c_idx} without applying it")
            if all(srv in dead_now for srv in info["targets"]):
                acked_lost += 1

    # -- checkpoint recovery -------------------------------------------
    # Records of each dead server recoverable from its buddy's latest
    # shipped snapshot.
    ckpt_recoverable = 0
    for dead in dead_now:
        holder = servers[(dead + 1) % nservers]
        ck = holder["buddy_ckpts"].get(dead)
        if ck is not None:
            ckpt_recoverable += len(ck[1])

    return {
        "nservers": nservers,
        "nclients": nclients,
        "replication": replication,
        "requests": total,
        "completed": done,
        "failed": failed,
        "availability": done / total if total else 1.0,
        "failovers": sum(c["failovers"] for c in clients),
        "acked_lost": acked_lost,
        "deaths": {r: float(t) for r, t in sorted(deaths.items())},
        "crashed": sum(1 for s in servers if s["crashed"]),
        "served": sum(s["served"] for s in servers),
        "acked": sum(s["acked"] for s in servers),
        "stores": [s["store"] for s in servers],
        "server_orders": [s["order"] for s in servers],
        "ckpt_epochs": sum(s["ckpt_epochs"] for s in servers),
        "ckpt_recoverable": ckpt_recoverable,
        "lat_put_us": lat_put,
        "lat_get_us": lat_get,
        "lat_affected_us": lat_affected,
        "warmup_us": warmup_us,
        "t_end_us": max((c["t_end"] for c in clients), default=0.0),
    }
