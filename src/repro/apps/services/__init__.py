"""Production-style service workloads on Notified Access.

Serving applications driven by the open-loop generator in
:mod:`repro.bench.load`:

* :func:`~repro.apps.services.kv.run_kv` — sharded key-value store
  (notified puts with counting replication acks, one-sided directory
  gets);
* :func:`~repro.apps.services.kv_ft.run_kv_ft` — the same store with
  the :mod:`repro.ft` layer on: replication failover, buddy epoch
  checkpoints, crash-exiting servers under node-failure injection;
* :func:`~repro.apps.services.pubsub.run_pubsub` — pub/sub broker
  (publisher fan-out, counting-notification batch wakeup on
  subscribers), with ``replication=``/``ft=`` knobs for mirror-broker
  durability under broker deaths.
"""

from repro.apps.services.kv import build_kv_workload, run_kv
from repro.apps.services.kv_ft import run_kv_ft
from repro.apps.services.pubsub import build_pubsub_workload, run_pubsub

__all__ = [
    "build_kv_workload",
    "build_pubsub_workload",
    "run_kv",
    "run_kv_ft",
    "run_pubsub",
]
