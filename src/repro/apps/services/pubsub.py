"""Pub/sub broker over Notified Access with counting batch wakeup.

Topology: ``nbrokers`` broker ranks, then ``npubs`` publishers, then
``nsubs`` subscribers.  Topic ``t`` is owned by broker ``t % nbrokers``;
each topic has a fixed, seed-derived set of ``fanout`` subscribers.

Publish path
    Publishers are open-loop (arrivals from
    :func:`repro.bench.load.arrival_times`, topic choice Zipf-skewed):
    message ``i`` is a 16-byte ``[topic, publish_time]`` record
    ``put_notify``-ed into the publisher's private slot on the owning
    broker — fire-and-forget, one wire transaction.

Fan-out path
    The broker drains publisher notifications through one wildcard
    persistent request and forwards each message to every subscriber of
    its topic: a 24-byte ``[topic, publish_time, publisher]`` record
    ``put_notify``-ed into the next slot of that subscriber's per-broker
    inbox segment (disjoint writers — no write conflicts anywhere).

Wakeup path — the counting feature
    A subscriber does **not** take a wakeup per message: it posts one
    counting request (``expected_count = batch``) and the matching
    engine wakes it once a whole batch of notifications arrived (the
    paper's counting notifications amortizing synchronization over
    fan-in, §III-B).  On wakeup it walks the request's ``match_log`` —
    notifications from one broker match in arrival order, so each
    matched (source, tag) pairs with the next unread slot of that
    broker's inbox segment — and the match itself is the
    happens-before acquire for the record read.  The batch's wakeup
    instant is the arrival clock of its count-crossing notification
    (``max`` over the match log), not the observation time, so
    end-to-end latency ``wake_time - publish_time`` is invariant to
    same-timestamp event ordering (the sharded core's tie-break
    freedom).

All schedules and fan-out sets derive from the seed, every count is
precomputed on every rank (no control traffic), and latencies are
virtual-time differences — so the tables are byte-identical across
``--jobs``, ``--shards``, and scheduler choices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.load import ZipfKeys, arrival_times
from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.sim.rng import RngStream

#: bytes per publisher->broker record [topic, publish_time]
_PUB_RECORD = 16
#: bytes per broker->subscriber record [topic, publish_time, publisher]
_SUB_RECORD = 24


@dataclass(frozen=True)
class PubSubPlan:
    """The full precomputed workload — identical on every rank."""

    arrivals: list[np.ndarray]      # per publisher, µs offsets
    topics: list[np.ndarray]        # per publisher, int64 topic ids
    subs_of_topic: list[list[int]]  # per topic, subscriber indices
    #: deliveries[broker][sub] — exact record count per inbox segment
    deliveries: list[list[int]]


def build_pubsub_workload(seed: int, npubs: int, nsubs: int, nbrokers: int,
                          ntopics: int, fanout: int, msgs_per_pub: int,
                          rate_rps: float,
                          zipf_skew: float,
                          process: str = "poisson") -> PubSubPlan:
    """Precompute arrivals, topic choices, subscriptions, and counts."""
    zipf = ZipfKeys(ntopics, zipf_skew)
    arrivals, topics = [], []
    for p in range(npubs):
        arrivals.append(arrival_times(seed, ("svc_pubsub", p), msgs_per_pub,
                                      rate_rps / npubs, process))
        topics.append(zipf.sample(RngStream(seed, "svc_pubsub", "topic", p),
                                  msgs_per_pub))
    subs_of_topic = []
    for t in range(ntopics):
        order = list(range(nsubs))
        RngStream(seed, "svc_pubsub", "subs", t).shuffle(order)
        subs_of_topic.append(sorted(order[:fanout]))
    deliveries = [[0] * nsubs for _ in range(nbrokers)]
    for p in range(npubs):
        for t in topics[p]:
            b = int(t) % nbrokers
            for s in subs_of_topic[int(t)]:
                deliveries[b][s] += 1
    return PubSubPlan(arrivals, topics, subs_of_topic, deliveries)


def _publisher_program(ctx, plan, nbrokers, npubs, msgs_per_pub):
    """Open-loop publisher: fire-and-forget notified puts to brokers."""
    p_idx = ctx.rank - nbrokers
    arrivals = plan.arrivals[p_idx]
    topics = plan.topics[p_idx]
    pub_win = yield from ctx.win_allocate(_PUB_RECORD)
    yield from ctx.win_allocate(8)        # sub_win (unused on publishers)
    yield from ctx.barrier()
    t0 = ctx.now
    for i in range(len(arrivals)):
        due = t0 + arrivals[i]
        if ctx.now < due:
            yield ctx.timeout(due - ctx.now)
        topic = int(topics[i])
        broker = topic % nbrokers
        record = np.array([float(topic), ctx.now])
        yield from ctx.na.put_notify(
            pub_win, record, broker, (p_idx * msgs_per_pub + i) * _PUB_RECORD,
            tag=i)
        yield from pub_win.flush_local(broker)
    yield from ctx.barrier()
    return {"published": len(arrivals)}


def _broker_program(ctx, plan, nbrokers, npubs, nsubs, msgs_per_pub):
    """Match publisher records, fan out to each topic's subscribers."""
    b = ctx.rank
    expected = sum(1 for p in range(npubs) for t in plan.topics[p]
                   if int(t) % nbrokers == b)
    pub_win = yield from ctx.win_allocate(
        max(npubs * msgs_per_pub * _PUB_RECORD, _PUB_RECORD))
    sub_win = yield from ctx.win_allocate(8)
    # Inbox segment offsets: subscriber s's inbox lays broker segments
    # back to back; this broker's segment starts after brokers < b.
    seg_base = [sum(plan.deliveries[bb][s] for bb in range(b))
                for s in range(nsubs)]
    cursor = [0] * nsubs
    req = yield from ctx.na.notify_init(pub_win, source=ANY_SOURCE,
                                        tag=ANY_TAG)
    yield from ctx.barrier()
    order: list[tuple[int, int]] = []
    for _ in range(expected):
        yield from ctx.na.start(req)
        st = yield from ctx.na.wait(req)
        p_idx = st.source - nbrokers
        slot = (p_idx * msgs_per_pub + st.tag) * _PUB_RECORD
        rec = pub_win.local(np.float64, offset=slot, count=2, mode="r")
        topic, pub_time = int(rec[0]), float(rec[1])
        order.append((st.source, st.tag))
        out = np.array([float(topic), pub_time, float(p_idx)])
        for s in plan.subs_of_topic[topic]:
            disp = (seg_base[s] + cursor[s]) * _SUB_RECORD
            cursor[s] += 1
            sub_rank = nbrokers + npubs + s
            yield from ctx.na.put_notify(sub_win, out, sub_rank, disp,
                                         tag=topic)
            yield from sub_win.flush_local(sub_rank)
    yield from ctx.barrier()
    return {"forwarded": sum(cursor), "order": order}


def _subscriber_program(ctx, plan, nbrokers, npubs, nsubs, batch,
                        warmup_us):
    """Counting-notification batch wakeup + match-log consumption."""
    s = ctx.rank - nbrokers - npubs
    total = sum(plan.deliveries[b][s] for b in range(nbrokers))
    seg_base = [sum(plan.deliveries[bb][s] for bb in range(b))
                for b in range(nbrokers)]
    yield from ctx.win_allocate(_PUB_RECORD)   # pub_win (unused on subs)
    sub_win = yield from ctx.win_allocate(max(total * _SUB_RECORD, 8))
    yield from ctx.barrier()
    t0 = ctx.now

    matched = 0
    consumed = [0] * nbrokers   # per-broker cursor into my segments
    deliveries: list[tuple[int, int]] = []
    lat: list[float] = []
    measured = 0
    last_wake = t0
    while matched < total:
        want = min(batch, total - matched)
        req = yield from ctx.na.notify_init(sub_win, source=ANY_SOURCE,
                                            tag=ANY_TAG,
                                            expected_count=want)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
        batch_log = list(req.match_log)
        yield from ctx.na.request_free(req)
        matched += want
        # The batch's wakeup instant is when its count threshold was
        # crossed — the arrival clock of the latest matched
        # notification, not when this process happened to observe it
        # (keeps latencies shard-tie invariant).
        wake = max(t for _, _, t in batch_log)
        last_wake = max(last_wake, wake)
        # Per-broker segments fill in the broker's send order, and
        # notifications from one source match in arrival order, so each
        # matched (source, tag) pairs with the next unread slot of that
        # broker's segment.  The match acquired the record's
        # happens-before edge, so a checked "r" read is race-free.
        for source, tag, _t in batch_log:
            slot = (seg_base[source] + consumed[source]) * _SUB_RECORD
            consumed[source] += 1
            rec = sub_win.local(np.float64, offset=slot, count=3,
                                mode="r")
            topic, pub_time = int(rec[0]), float(rec[1])
            if topic != tag:
                raise ReproError(
                    f"subscriber {s}: slot topic {topic} != "
                    f"notification tag {tag}")
            deliveries.append((topic, int(rec[2])))
            if pub_time - t0 >= warmup_us:
                lat.append(wake - pub_time)
                measured += 1
    if sum(consumed) != total:
        raise ReproError(
            f"subscriber {s}: consumed {sum(consumed)} of {total}")
    yield from ctx.barrier()
    return {"delivered": total, "measured": measured, "lat": lat,
            "deliveries": deliveries, "t_last_wake": last_wake - t0}


# ----------------------------------------------------------------------
# fault-tolerant variants (replication + crash-exiting mirror brokers)
# ----------------------------------------------------------------------
# The ft path mirrors every publish to the first R live brokers of the
# topic's ring (durability), while ONLY the topic's static primary
# forwards to subscribers — so delivery counts stay the static plan and
# the subscriber program is reused unchanged (minus the trailing
# barrier).  Deaths may therefore only hit brokers that are not the
# primary of any published topic: pure mirrors.  Brokers exit on
# end-of-stream credits from publishers instead of static counts, and a
# mirror broker with a planned death crash-exits at its death time.

def _ft_pubsub_windows(ctx, npubs, nsubs, msgs_per_pub, total_sub_bytes):
    """Collective window allocation for the ft path (same order on all
    ranks): pub_win, sub_win, eos_win."""
    pub_win = yield from ctx.win_allocate(
        max(npubs * msgs_per_pub * _PUB_RECORD, _PUB_RECORD))
    sub_win = yield from ctx.win_allocate(max(total_sub_bytes, 8))
    eos_win = yield from ctx.win_allocate(8)
    return pub_win, sub_win, eos_win


def _publisher_program_ft(ctx, plan, nbrokers, npubs, nsubs, msgs_per_pub,
                          replication):
    """Publisher mirroring each record to R live brokers of the ring."""
    from repro.ft.detector import FailureDetector
    p_idx = ctx.rank - nbrokers
    arrivals = plan.arrivals[p_idx]
    topics = plan.topics[p_idx]
    pub_win, _sub_win, eos_win = yield from _ft_pubsub_windows(
        ctx, npubs, nsubs, msgs_per_pub, 8)
    det = FailureDetector(ctx)
    yield from ctx.barrier()
    t0 = ctx.now
    mirrored = 0
    for i in range(len(arrivals)):
        due = t0 + arrivals[i]
        if ctx.now < due:
            yield ctx.timeout(due - ctx.now)
        topic = int(topics[i])
        ring = [(topic + j) % nbrokers for j in range(nbrokers)]
        targets = det.live(ring)[:replication]
        record = np.array([float(topic), ctx.now])
        for broker in targets:
            yield from ctx.na.put_notify(
                pub_win, record, broker,
                (p_idx * msgs_per_pub + i) * _PUB_RECORD, tag=i)
            yield from pub_win.flush_local(broker)
        mirrored += len(targets) - 1
    empty = np.empty(0, dtype=np.uint8)
    for b in det.live(range(nbrokers)):
        yield from ctx.na.put_notify(eos_win, empty, b, 0, tag=0)
        yield from eos_win.flush_local(b)
    return {"published": len(arrivals), "mirrored": mirrored}


def _broker_program_ft(ctx, plan, nbrokers, npubs, nsubs, msgs_per_pub):
    """Broker forwarding owned topics, storing mirrors, exiting on EOS
    credits (or crash-exiting at its planned death time)."""
    from repro.ft.detector import FailureDetector
    b = ctx.rank
    pub_win, sub_win, eos_win = yield from _ft_pubsub_windows(
        ctx, npubs, nsubs, msgs_per_pub, 8)
    det = FailureDetector(ctx)
    t_die = det.death_time(b)
    seg_base = [sum(plan.deliveries[bb][s] for bb in range(b))
                for s in range(nsubs)]
    cursor = [0] * nsubs
    pub_req = yield from ctx.na.notify_init(pub_win, source=ANY_SOURCE,
                                            tag=ANY_TAG)
    eos_req = yield from ctx.na.notify_init(eos_win, source=ANY_SOURCE,
                                            tag=0, expected_count=npubs)
    yield from ctx.barrier()
    if t_die is not None and ctx.now >= t_die:
        raise ReproError(
            f"broker {b} is planned dead at t={t_die:g}us, before setup "
            f"finished at t={ctx.now:g}us — raise the death time")
    order: list[tuple[int, int]] = []
    mirrored = 0
    crashed = False
    yield from ctx.na.start(pub_req)
    yield from ctx.na.start(eos_req)
    while True:
        if t_die is not None and ctx.now >= t_die:
            crashed = True
            break
        idx = yield from ctx.na.testany([pub_req, eos_req])
        if idx is None:
            if ctx.nic.notification_pending():
                continue
            waits = [ctx.nic.notification_arrival()]
            if t_die is not None:
                waits.append(ctx.timeout(t_die - ctx.now))
            yield waits[0] if len(waits) == 1 else ctx.engine.any_of(waits)
            continue
        if idx == 1:
            break
        st = pub_req.last_status
        p_idx = st.source - nbrokers
        slot = (p_idx * msgs_per_pub + st.tag) * _PUB_RECORD
        rec = pub_win.local(np.float64, offset=slot, count=2, mode="r")
        topic, pub_time = int(rec[0]), float(rec[1])
        if topic % nbrokers == b:
            order.append((st.source, st.tag))
            out = np.array([float(topic), pub_time, float(p_idx)])
            for s in plan.subs_of_topic[topic]:
                disp = (seg_base[s] + cursor[s]) * _SUB_RECORD
                cursor[s] += 1
                sub_rank = nbrokers + npubs + s
                yield from ctx.na.put_notify(sub_win, out, sub_rank, disp,
                                             tag=topic)
                yield from sub_win.flush_local(sub_rank)
        else:
            mirrored += 1
        yield from ctx.na.start(pub_req)
    return {"forwarded": sum(cursor), "order": order,
            "mirrored": mirrored, "crashed": crashed}


def _subscriber_program_ft(ctx, plan, nbrokers, npubs, nsubs, batch,
                           warmup_us, msgs_per_pub):
    """Legacy subscriber logic behind the ft window layout, no trailing
    barrier (dead mirror brokers cannot join collectives)."""
    s = ctx.rank - nbrokers - npubs
    total = sum(plan.deliveries[b][s] for b in range(nbrokers))
    seg_base = [sum(plan.deliveries[bb][s] for bb in range(b))
                for b in range(nbrokers)]
    _pub, sub_win, _eos = yield from _ft_pubsub_windows(
        ctx, npubs, nsubs, msgs_per_pub, total * _SUB_RECORD)
    yield from ctx.barrier()
    t0 = ctx.now
    matched = 0
    consumed = [0] * nbrokers
    deliveries: list[tuple[int, int]] = []
    lat: list[float] = []
    measured = 0
    last_wake = t0
    while matched < total:
        want = min(batch, total - matched)
        req = yield from ctx.na.notify_init(sub_win, source=ANY_SOURCE,
                                            tag=ANY_TAG,
                                            expected_count=want)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
        batch_log = list(req.match_log)
        yield from ctx.na.request_free(req)
        matched += want
        wake = max(t for _, _, t in batch_log)
        last_wake = max(last_wake, wake)
        for source, tag, _t in batch_log:
            slot = (seg_base[source] + consumed[source]) * _SUB_RECORD
            consumed[source] += 1
            rec = sub_win.local(np.float64, offset=slot, count=3,
                                mode="r")
            topic, pub_time = int(rec[0]), float(rec[1])
            if topic != tag:
                raise ReproError(
                    f"subscriber {s}: slot topic {topic} != "
                    f"notification tag {tag}")
            deliveries.append((topic, int(rec[2])))
            if pub_time - t0 >= warmup_us:
                lat.append(wake - pub_time)
                measured += 1
    if sum(consumed) != total:
        raise ReproError(
            f"subscriber {s}: consumed {sum(consumed)} of {total}")
    return {"delivered": total, "measured": measured, "lat": lat,
            "deliveries": deliveries, "t_last_wake": last_wake - t0}


def run_pubsub(nbrokers: int = 2, npubs: int = 4, nsubs: int = 6,
               ntopics: int = 8, fanout: int = 3, msgs_per_pub: int = 32,
               rate_rps: float = 4000.0, batch: int = 4,
               zipf_skew: float = 0.9, warmup_frac: float = 0.2,
               process: str = "poisson", replication: int = 1,
               ft: bool = False, seed: int = 42,
               config: ClusterConfig | None = None) -> dict:
    """Run the pub/sub broker service; returns delivery traces + latencies.

    ``rate_rps`` is the aggregate publish rate.  End-to-end latency is
    publish → subscriber batch wakeup, so larger ``batch`` trades wakeup
    amortization against tail latency — the counting-notification
    trade-off, measurable here.

    ``ft=True`` (implied by ``replication > 1``) switches to the
    fault-tolerant programs: publishes mirror to the first
    ``replication`` live brokers of the topic ring for durability, while
    only the static primary forwards — so deliveries stay the
    precomputed plan and deaths may only hit pure-mirror brokers (the
    plan is validated).  The legacy path is untouched and stays
    byte-identical to earlier revisions.
    """
    if min(nbrokers, npubs, nsubs) < 1:
        raise ReproError("need at least one broker/publisher/subscriber")
    if not 1 <= fanout <= nsubs:
        raise ReproError(f"fanout {fanout} outside [1, nsubs={nsubs}]")
    if not 1 <= msgs_per_pub <= 0xFFFF:
        raise ReproError("msgs_per_pub must fit the 16-bit tag space")
    if batch < 1:
        raise ReproError(f"batch must be >= 1, got {batch}")
    if not 1 <= replication <= nbrokers:
        raise ReproError(
            f"replication {replication} outside [1, nbrokers={nbrokers}]")
    ft = ft or replication > 1
    nranks = nbrokers + npubs + nsubs
    if config is None:
        config = ClusterConfig(nranks=nranks, ranks_per_node=2)
    if config.nranks != nranks:
        raise ReproError(f"config has {config.nranks} ranks, "
                         f"need {nranks}")
    plan = build_pubsub_workload(seed, npubs, nsubs, nbrokers, ntopics,
                                 fanout, msgs_per_pub, rate_rps, zipf_skew,
                                 process)
    plan_f = config.faults
    if plan_f is not None and plan_f.active:
        if not ft:
            raise ReproError(
                "run_pubsub under a fault plan needs ft=True (or "
                "replication > 1)")
        if not plan_f.shardable:
            raise ReproError(
                "run_pubsub ft mode needs a node-failure-only FaultPlan")
        primaries = {int(t) % nbrokers
                     for p in range(npubs) for t in plan.topics[p]}
        bad = [r for r in plan_f.node_failures
               if not 0 <= r < nbrokers or r in primaries]
        if bad:
            raise ReproError(
                f"only pure-mirror brokers may die (ranks < {nbrokers} "
                f"owning no published topic); plan kills {sorted(bad)}")
    expected_us = msgs_per_pub * npubs / rate_rps * 1e6
    warmup_us = warmup_frac * expected_us

    def program(ctx):
        # analyze: skip  (rank count and loop bounds come from the plan)
        if ctx.rank < nbrokers:
            if ft:
                result = yield from _broker_program_ft(
                    ctx, plan, nbrokers, npubs, nsubs, msgs_per_pub)
            else:
                result = yield from _broker_program(
                    ctx, plan, nbrokers, npubs, nsubs, msgs_per_pub)
        elif ctx.rank < nbrokers + npubs:
            if ft:
                result = yield from _publisher_program_ft(
                    ctx, plan, nbrokers, npubs, nsubs, msgs_per_pub,
                    replication)
            else:
                result = yield from _publisher_program(
                    ctx, plan, nbrokers, npubs, msgs_per_pub)
        else:
            if ft:
                result = yield from _subscriber_program_ft(
                    ctx, plan, nbrokers, npubs, nsubs, batch, warmup_us,
                    msgs_per_pub)
            else:
                result = yield from _subscriber_program(
                    ctx, plan, nbrokers, npubs, nsubs, batch, warmup_us)
        return result

    results, _cluster = run_ranks(nranks, program, config=config)
    brokers = results[:nbrokers]
    subs = results[nbrokers + npubs:]
    lat = sorted(x for r in subs for x in r["lat"])
    out = {
        "nbrokers": nbrokers,
        "npubs": npubs,
        "nsubs": nsubs,
        "published": msgs_per_pub * npubs,
        "forwarded": sum(r["forwarded"] for r in brokers),
        "delivered": sum(r["delivered"] for r in subs),
        "measured": sum(r["measured"] for r in subs),
        "broker_orders": [r["order"] for r in brokers],
        "sub_deliveries": [r["deliveries"] for r in subs],
        "lat_us": lat,
        "warmup_us": warmup_us,
        "t_end_us": max(r["t_last_wake"] for r in subs),
    }
    if ft:
        pubs = results[nbrokers:nbrokers + npubs]
        out["replication"] = replication
        out["mirrored"] = sum(r["mirrored"] for r in pubs)
        out["mirror_stored"] = sum(r["mirrored"] for r in brokers)
        out["crashed"] = sum(1 for r in brokers if r["crashed"])
    return out
