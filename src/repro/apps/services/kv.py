"""Sharded key-value store served over Notified Access.

The production-service counterpart of the paper's HPC kernels: ``nservers``
ranks each own a shard of the key space, ``nclients`` ranks issue an
**open-loop** stream of ``put``/``get`` requests against it (arrival times
come from :func:`repro.bench.load.arrival_times`, key popularity from
:class:`~repro.bench.load.ZipfKeys`) and record per-request latency.

Write path — notified puts with counting replication acks
    A ``put(key, value)`` lands the 16-byte record in the request's
    private slot on each of the ``replication`` copy servers via
    ``put_notify`` (one wire transaction per copy, Figure 2d).  Each
    server matches the notification, applies the record to its in-memory
    store, and acks with a **zero-byte** ``put_notify`` back to the
    client (the credit-message idiom of §III-B).  The client waits for
    all copies through **one counting notification request** per put
    (``expected_count = replication``, the paper's counting feature) —
    no ack aggregation code, the matching engine counts.

Read path — notified-put RPC against the primary
    A ``get(key)`` sends the 8-byte key to the key's primary server via
    ``put_notify`` and waits on a single-count notification for the
    8-byte reply the server puts back into the client's per-request
    reply slot.  Both legs are notified puts, deliberately: the sharded
    conservative-parallel core reproduces put-style operations exactly
    (every receive-side effect applies in global issue-time order at a
    window boundary), whereas a one-sided ``win.get`` reserves the
    origin's receive link and the target's injection engine *at issue
    time* in the serial fabric — a plan-ahead a conservative protocol
    cannot replay under contention.  Riding the RPC on puts is what
    makes the service byte-identical across ``--shards``, and it is the
    natural NA idiom anyway: the reply's notification is the paper's
    producer-consumer handoff, and read latency honestly includes the
    server's request-service queueing.

The client is genuinely open-loop: requests issue at their precomputed
arrival times whether or not earlier ones completed, and completion is
accounted afterwards from the deterministic event clocks — the last
matching notification's NIC **arrival** time
(:attr:`~repro.core.nrequest.NotifyRequest.match_log`) for both the
replication acks of a put and the reply of a get — so queueing delay
shows up in the measured latency instead of throttling the offered
load, and the numbers never depend on when the client process observed
an event.

Determinism: the workload is a pure function of the seed, latencies are
virtual-time differences, and every wire operation is a notified put,
so results are byte-identical across ``--jobs`` and ``--shards``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.load import ZipfKeys, arrival_times
from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.sim.rng import RngStream

#: bytes per (key, value) record in a put slot
_RECORD_BYTES = 16
#: bytes per get request / reply value
_VALUE_BYTES = 8


def seed_value(key: int) -> float:
    """Value every key holds before the first put reaches its server."""
    return key * 3.0 + 1.0


@dataclass(frozen=True)
class ClientPlan:
    """One client's precomputed open-loop request schedule."""

    arrivals: np.ndarray   # µs offsets from the post-barrier epoch start
    keys: np.ndarray       # int64 key ids
    is_get: np.ndarray     # bool per request


def build_kv_workload(seed: int, nclients: int, reqs_per_client: int,
                      rate_rps: float, get_frac: float, nkeys: int,
                      zipf_skew: float,
                      process: str = "poisson") -> list[ClientPlan]:
    """Per-client request plans — a pure function of the arguments.

    ``rate_rps`` is the *aggregate* offered load; each client runs an
    independent arrival process at ``rate_rps / nclients``.  Every rank
    recomputes the same plans from the seed, so servers know exactly how
    many records and get requests to expect without control messages.
    """
    zipf = ZipfKeys(nkeys, zipf_skew)
    plans = []
    for c in range(nclients):
        arrivals = arrival_times(seed, ("svc_kv", c), reqs_per_client,
                                 rate_rps / nclients, process)
        keys = zipf.sample(RngStream(seed, "svc_kv", "keys", c),
                           reqs_per_client)
        ops = RngStream(seed, "svc_kv", "ops", c).array(reqs_per_client)
        plans.append(ClientPlan(arrivals, keys, ops < get_frac))
    return plans


def copy_servers(key: int, nservers: int, replication: int) -> list[int]:
    """Server ranks holding ``key``: primary + chained backups."""
    primary = int(key) % nservers
    return [(primary + j) % nservers for j in range(replication)]


def _expected_records(plans: list[ClientPlan], server: int, nservers: int,
                      replication: int) -> int:
    """How many put records ``server`` will receive for these plans."""
    total = 0
    for plan in plans:
        for key, is_get in zip(plan.keys, plan.is_get):
            if not is_get and server in copy_servers(int(key), nservers,
                                                     replication):
                total += 1
    return total


def _expected_gets(plans: list[ClientPlan], server: int,
                   nservers: int) -> int:
    """How many get requests ``server`` (as primary) will serve."""
    total = 0
    for plan in plans:
        for key, is_get in zip(plan.keys, plan.is_get):
            if is_get and copy_servers(int(key), nservers, 1)[0] == server:
                total += 1
    return total


def _legal_values(plans: list[ClientPlan], reqs_per_client: int,
                  nkeys: int) -> dict[int, set[float]]:
    """Per key, the set of values a get may legally observe."""
    legal = {key: {seed_value(key)} for key in range(nkeys)}
    for c, plan in enumerate(plans):
        for i, (key, is_get) in enumerate(zip(plan.keys, plan.is_get)):
            if not is_get:
                legal[int(key)].add(float(c * reqs_per_client + i))
    return legal


def _server_program(ctx, plans, nservers, replication, reqs_per_client):
    """Own a store shard: apply put records, serve get RPCs, ack each."""
    nclients = len(plans)
    kv_win = yield from ctx.win_allocate(
        max(nclients * reqs_per_client * _RECORD_BYTES, _RECORD_BYTES))
    rpc_win = yield from ctx.win_allocate(
        max(nclients * reqs_per_client * _VALUE_BYTES, _VALUE_BYTES))
    ack_win = yield from ctx.win_allocate(_VALUE_BYTES)
    reply_win = yield from ctx.win_allocate(_VALUE_BYTES)
    puts_left = _expected_records(plans, ctx.rank, nservers, replication)
    gets_left = _expected_gets(plans, ctx.rank, nservers)
    put_req = yield from ctx.na.notify_init(kv_win, source=ANY_SOURCE,
                                            tag=ANY_TAG)
    get_req = yield from ctx.na.notify_init(rpc_win, source=ANY_SOURCE,
                                            tag=ANY_TAG)
    yield from ctx.barrier()

    store: dict[int, float] = {}
    order: list[tuple[str, int, int]] = []
    served = 0
    empty = np.empty(0, dtype=np.uint8)
    if puts_left:
        yield from ctx.na.start(put_req)
    if gets_left:
        yield from ctx.na.start(get_req)
    while puts_left or gets_left:
        active = [r for r, left in ((put_req, puts_left),
                                    (get_req, gets_left)) if left]
        idx, st = yield from ctx.na.waitany(active)
        client_idx = st.source - nservers
        if active[idx] is put_req:
            slot = (client_idx * reqs_per_client + st.tag) * _RECORD_BYTES
            rec = kv_win.local(np.float64, offset=slot, count=2, mode="r")
            store[int(rec[0])] = float(rec[1])
            order.append(("put", st.source, st.tag))
            # Replication ack: zero-byte notified put (credit message).
            yield from ctx.na.put_notify(ack_win, empty, st.source, 0,
                                         tag=st.tag)
            yield from ack_win.flush_local(st.source)
            puts_left -= 1
            if puts_left:
                yield from ctx.na.start(put_req)
        else:
            slot = (client_idx * reqs_per_client + st.tag) * _VALUE_BYTES
            req = rpc_win.local(np.float64, offset=slot, count=1, mode="r")
            key = int(req[0])
            value = store.get(key, seed_value(key))
            order.append(("get", st.source, st.tag))
            yield from ctx.na.put_notify(
                reply_win, np.array([value]), st.source,
                st.tag * _VALUE_BYTES, tag=st.tag)
            yield from reply_win.flush_local(st.source)
            served += 1
            gets_left -= 1
            if gets_left:
                yield from ctx.na.start(get_req)
    yield from ctx.na.request_free(put_req)
    yield from ctx.na.request_free(get_req)
    yield from ctx.barrier()
    return {"store": store, "order": order,
            "acked": len(order) - served, "served": served}


def _client_program(ctx, plans, nservers, replication, reqs_per_client,
                    warmup_us, legal):
    """Open-loop client: issue at scheduled arrivals, settle afterwards.

    The issue loop depends *only* on the precomputed arrival schedule —
    never on completions — so the offered load is genuinely open-loop.
    Completion times are then read off the deterministic event clocks:
    a put completes when its last replication ack **arrived** at the NIC,
    a get when its reply arrived, both via
    :attr:`~repro.core.nrequest.NotifyRequest.match_log`.  Measuring
    arrival clocks instead of observation times keeps every latency
    invariant to same-timestamp event ordering, which is exactly the
    freedom the sharded conservative-parallel core reserves for its
    tie-breaks — the bench byte-equality contract across ``--shards``
    depends on this.
    """
    me_idx = ctx.rank - nservers
    plan = plans[me_idx]
    n = len(plan.arrivals)
    nclients = len(plans)
    kv_win = yield from ctx.win_allocate(
        max(nclients * reqs_per_client * _RECORD_BYTES, _RECORD_BYTES))
    rpc_win = yield from ctx.win_allocate(
        max(nclients * reqs_per_client * _VALUE_BYTES, _VALUE_BYTES))
    ack_win = yield from ctx.win_allocate(_VALUE_BYTES)
    reply_win = yield from ctx.win_allocate(
        max(reqs_per_client * _VALUE_BYTES, _VALUE_BYTES))
    yield from ctx.barrier()
    t0 = ctx.now

    put_reqs: list[tuple[int, object]] = []   # (req_id, NotifyRequest)
    get_reqs: list[tuple[int, object]] = []   # (req_id, NotifyRequest)
    for i in range(n):
        due = t0 + plan.arrivals[i]
        if ctx.now < due:
            yield ctx.timeout(due - ctx.now)
        key = int(plan.keys[i])
        slot = me_idx * reqs_per_client + i
        if plan.is_get[i]:
            primary = copy_servers(key, nservers, 1)[0]
            req = yield from ctx.na.notify_init(
                reply_win, source=primary, tag=i)
            yield from ctx.na.start(req)
            yield from ctx.na.put_notify(
                rpc_win, np.array([float(key)]), primary,
                slot * _VALUE_BYTES, tag=i)
            get_reqs.append((i, req))
        else:
            record = np.array([float(key), float(slot)])
            req = yield from ctx.na.notify_init(
                ack_win, source=ANY_SOURCE, tag=i,
                expected_count=replication)
            yield from ctx.na.start(req)
            for server in copy_servers(key, nservers, replication):
                yield from ctx.na.put_notify(
                    kv_win, record, server, slot * _RECORD_BYTES, tag=i)
            put_reqs.append((i, req))

    # Settle: wait out every outstanding completion and account it
    # against its event clock.
    lat_put: list[float] = []
    lat_get: list[float] = []
    done = 0
    t_last = t0
    for rid, req in put_reqs:
        yield from ctx.na.wait(req)
        t_done = max(t for _, _, t in req.match_log)
        yield from ctx.na.request_free(req)
        if plan.arrivals[rid] >= warmup_us:
            lat_put.append(t_done - (t0 + plan.arrivals[rid]))
        done += 1
        t_last = max(t_last, t_done)
    for rid, req in get_reqs:
        yield from ctx.na.wait(req)
        t_done = max(t for _, _, t in req.match_log)
        yield from ctx.na.request_free(req)
        value = float(reply_win.local(np.float64,
                                      offset=rid * _VALUE_BYTES,
                                      count=1, mode="r")[0])
        key = int(plan.keys[rid])
        if legal is not None and value not in legal[key]:
            raise ReproError(
                f"client {me_idx} get({key}) read {value}, not one of "
                f"the {len(legal[key])} values ever written to it")
        if plan.arrivals[rid] >= warmup_us:
            lat_get.append(t_done - (t0 + plan.arrivals[rid]))
        done += 1
        t_last = max(t_last, t_done)
    yield from kv_win.flush_local_all()
    yield from rpc_win.flush_local_all()
    yield from ctx.barrier()
    return {"lat_put": lat_put, "lat_get": lat_get, "done": done,
            "t_end": t_last - t0}


def run_kv(nservers: int = 4, nclients: int = 8, replication: int = 2,
           reqs_per_client: int = 32, rate_rps: float = 4000.0,
           get_frac: float = 0.5, nkeys: int = 64, zipf_skew: float = 0.9,
           warmup_frac: float = 0.2, process: str = "poisson",
           verify: bool = False, ft: bool = False, seed: int = 42,
           config: ClusterConfig | None = None) -> dict:
    """Run the sharded KV service; returns stores, orders, and latencies.

    The cluster has ``nservers + nclients`` ranks (servers first).  The
    first ``warmup_frac`` of the expected run is excluded from latency
    and throughput accounting.  The returned dict is fully deterministic
    (virtual times only) — golden-trace tests compare it verbatim
    between serial and sharded runs.

    ``ft=True`` switches to the fault-tolerant programs of
    :mod:`repro.apps.services.kv_ft` (replication failover, epoch
    checkpoints, crash-exiting servers) — required whenever the cluster
    config carries a fault plan that kills server ranks.  The legacy
    ``ft=False`` path is untouched and stays byte-identical to earlier
    revisions.
    """
    if ft:
        from repro.apps.services.kv_ft import run_kv_ft
        return run_kv_ft(nservers=nservers, nclients=nclients,
                         replication=replication,
                         reqs_per_client=reqs_per_client,
                         rate_rps=rate_rps, get_frac=get_frac,
                         nkeys=nkeys, zipf_skew=zipf_skew,
                         warmup_frac=warmup_frac, process=process,
                         verify=verify, seed=seed, config=config)
    if nservers < 1 or nclients < 1:
        raise ReproError("need at least one server and one client")
    if not 1 <= replication <= nservers:
        raise ReproError(
            f"replication {replication} outside [1, nservers={nservers}]")
    if not 1 <= reqs_per_client <= 0xFFFF:
        raise ReproError("reqs_per_client must fit the 16-bit tag space")
    nranks = nservers + nclients
    if config is None:
        config = ClusterConfig(nranks=nranks, ranks_per_node=2)
    if config.nranks != nranks:
        raise ReproError(f"config has {config.nranks} ranks, "
                         f"need {nranks}")
    plans = build_kv_workload(seed, nclients, reqs_per_client, rate_rps,
                              get_frac, nkeys, zipf_skew, process)
    legal = (_legal_values(plans, reqs_per_client, nkeys)
             if verify else None)
    expected_us = reqs_per_client * nclients / rate_rps * 1e6
    warmup_us = warmup_frac * expected_us

    def program(ctx):
        # analyze: skip  (rank count and loop bounds come from the plan)
        if ctx.rank < nservers:
            result = yield from _server_program(
                ctx, plans, nservers, replication, reqs_per_client)
        else:
            result = yield from _client_program(
                ctx, plans, nservers, replication, reqs_per_client,
                warmup_us, legal)
        return result

    results, _cluster = run_ranks(nranks, program, config=config)
    servers = results[:nservers]
    clients = results[nservers:]
    lat_put = sorted(x for c in clients for x in c["lat_put"])
    lat_get = sorted(x for c in clients for x in c["lat_get"])
    t_end = max(c["t_end"] for c in clients)
    total = sum(c["done"] for c in clients)
    return {
        "nservers": nservers,
        "nclients": nclients,
        "replication": replication,
        "requests": reqs_per_client * nclients,
        "completed": total,
        "acked": sum(s["acked"] for s in servers),
        "served": sum(s["served"] for s in servers),
        "stores": [s["store"] for s in servers],
        "server_orders": [s["order"] for s in servers],
        "lat_put_us": lat_put,
        "lat_get_us": lat_get,
        "warmup_us": warmup_us,
        "t_end_us": t_end,
    }
