"""Binary-tree broadcast overlay, re-rooted per panel owner."""

from __future__ import annotations


def tree_children(rank: int, root: int, size: int) -> list[int]:
    """Children of ``rank`` in a binary tree rooted at ``root``."""
    v = (rank - root) % size
    out = []
    for c in (2 * v + 1, 2 * v + 2):
        if c < size:
            out.append((c + root) % size)
    return out


def tree_parent(rank: int, root: int, size: int) -> int | None:
    """Parent of ``rank`` in the same tree, None for the root."""
    v = (rank - root) % size
    if v == 0:
        return None
    return ((v - 1) // 2 + root) % size
