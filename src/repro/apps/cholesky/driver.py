"""The distributed Cholesky driver: one program per communication variant.

Every rank processes panels ``k = 0..T-1`` in order (the static pipelined
schedule of Kurzak et al. [14]).  The owner factors the panel and broadcasts
the tiles down a binary tree; every other rank receives tiles **in whatever
order they arrive**, forwards each to its tree children, and applies the
trailing update to its local columns once the panel is complete.
"""

from __future__ import annotations

import numpy as np

from repro.apps.cholesky.bcast_tree import tree_children
from repro.apps.cholesky.kernels import (
    flops_gemm,
    flops_potrf,
    flops_syrk,
    flops_trsm,
    gemm_update,
    potrf,
    syrk_update,
    total_flops,
    trsm,
)
from repro.apps.cholesky.matrix import TileMatrix
from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

CHOLESKY_MODES = ("mp", "onesided", "na")

#: ring-poll backoff of the One Sided consumer, µs
POLL_US = 0.3


def _tile_id(i: int, k: int, ntiles: int) -> int:
    return k * ntiles + i


def _tile_coords(tid: int, ntiles: int) -> tuple[int, int]:
    return tid % ntiles, tid // ntiles


def _cholesky_program(ctx, mode: str, ntiles: int, b: int, verify: bool,
                      seed: int, variant: str = "right"):
    rank, size = ctx.rank, ctx.size
    tm = TileMatrix(ntiles, b, rank, size, materialize=verify, seed=seed)
    tile_bytes = b * b * 8
    nslots = ntiles * ntiles
    zeros = np.zeros((b, b))
    cfg = ctx.cluster.cfg

    # --- communication state ------------------------------------------------
    win = notif_win = None
    wildcard_req = None
    ring_next = 0
    if mode in ("na", "onesided"):
        win = yield from ctx.win_allocate(nslots * tile_bytes)
        if mode == "na":
            wildcard_req = yield from ctx.na.notify_init(
                win, source=ANY_SOURCE, tag=ANY_TAG, expected_count=1)
        else:
            notif_win = yield from ctx.win_allocate(8 * (nslots + 1))
            yield from win.lock_all()
            yield from notif_win.lock_all()

    #: panel tiles visible to this rank: (i, k) -> ndarray (or True)
    panel_store: dict[tuple[int, int], object] = {}
    received_count = [0] * ntiles
    scratch = np.zeros((b, b))

    def panel_tile(i: int, k: int) -> np.ndarray:
        t = panel_store[(i, k)]
        assert isinstance(t, np.ndarray)
        return t

    # --- send/forward one tile to this rank's tree children -----------------
    def forward(i: int, k: int, data: np.ndarray):
        root = k % size
        tid = _tile_id(i, k, ntiles)
        for child in tree_children(rank, root, size):
            if mode == "mp":
                yield from ctx.comm.send(data, child, tag=tid)
            elif mode == "na":
                yield from ctx.na.put_notify(win, data, child,
                                             tid * tile_bytes, tag=tid)
                yield from win.flush_local(child)
            else:  # onesided ring-buffer protocol (the paper's excerpt)
                yield from win.put(data, child, tid * tile_bytes)
                dest = yield from notif_win.fetch_and_op(1, child, 0, "sum")
                yield from win.flush(child)
                yield from notif_win.put(
                    np.array([tid + 1], dtype=np.int64), child,
                    8 * (1 + dest))
                yield from notif_win.flush_local(child)

    # --- receive any one tile (unpredictable order), store it ---------------
    def receive_any():
        nonlocal ring_next
        if mode == "mp":
            st = yield from ctx.comm.probe(ANY_SOURCE, ANY_TAG)
            buf = np.zeros((b, b)) if verify else scratch
            st = yield from ctx.comm.recv(buf, st.source, st.tag)
            i, k = _tile_coords(st.tag, ntiles)
            data = buf
        elif mode == "na":
            yield from ctx.na.start(wildcard_req)
            st = yield from ctx.na.wait(wildcard_req)
            i, k = _tile_coords(st.tag, ntiles)
            tid = st.tag
            view = win.local(np.float64,
                             offset=tid * tile_bytes,
                             count=b * b, mode="r").reshape(b, b)
            data = view.copy() if verify else scratch
        else:  # onesided: poll the notification ring
            # The ring is polled by design (the paper's excerpt); the view
            # is unrecorded ("raw") and the ordering edge is declared to
            # the sanitizer once the poll observes the producer's value.
            ring = notif_win.local(np.int64, mode="raw")
            while ring[1 + ring_next] == 0:
                yield ctx.timeout(POLL_US)
            ctx.san_acquire_at(notif_win, 8 * (1 + ring_next))
            tid = int(ring[1 + ring_next]) - 1
            ring_next += 1
            i, k = _tile_coords(tid, ntiles)
            view = win.local(np.float64,
                             offset=tid * tile_bytes,
                             count=b * b, mode="r").reshape(b, b)
            data = view.copy() if verify else scratch
        panel_store[(i, k)] = data if verify else zeros
        received_count[k] += 1
        yield from forward(i, k, data if verify else zeros)

    # --- main factorization loop ---------------------------------------------
    yield from ctx.barrier()
    t0 = ctx.now

    for k in range(ntiles):
        owner = k % size
        if owner == rank:
            if variant == "left":
                # Left-looking (Kurzak et al. [14], as the paper uses):
                # all updates from earlier panels are applied to column k
                # now, just before its factorization.
                for j in range(k):
                    ljk_ = panel_store[(k, j)]
                    yield from ctx.compute_flops(flops_syrk(b))
                    if verify:
                        syrk_update(tm.get(k, k),
                                    ljk_)  # type: ignore[arg-type]
                    for i in range(k + 1, ntiles):
                        yield from ctx.compute_flops(flops_gemm(b))
                        if verify:
                            gemm_update(
                                tm.get(i, k),
                                panel_store[(i, j)],  # type: ignore[arg-type]
                                        ljk_)  # type: ignore[arg-type]
            # Factor the panel: POTRF then TRSMs.
            yield from ctx.compute_flops(flops_potrf(b))
            if verify:
                potrf(tm.get(k, k))
            panel_store[(k, k)] = tm.get(k, k) if verify else zeros
            for i in range(k + 1, ntiles):
                yield from ctx.compute_flops(flops_trsm(b))
                if verify:
                    trsm(tm.get(k, k), tm.get(i, k))
                panel_store[(i, k)] = tm.get(i, k) if verify else zeros
            # Broadcast every panel tile down the tree.
            if size > 1:
                for i in range(k, ntiles):
                    data = panel_tile(i, k) if verify else zeros
                    yield from forward(i, k, data)
        else:
            while received_count[k] < ntiles - k:
                yield from receive_any()
        if variant == "right":
            # Right-looking: apply panel k eagerly to local columns j > k.
            for j in tm.local_columns():
                if j <= k:
                    continue
                ljk = panel_store[(j, k)]
                yield from ctx.compute_flops(flops_syrk(b))
                if verify:
                    syrk_update(tm.get(j, j), ljk)  # type: ignore[arg-type]
                for i in range(j + 1, ntiles):
                    yield from ctx.compute_flops(flops_gemm(b))
                    if verify:
                        gemm_update(
                            tm.get(i, j),
                            panel_store[(i, k)],  # type: ignore[arg-type]
                            ljk)  # type: ignore[arg-type]

    elapsed = ctx.now - t0
    if mode == "onesided":
        yield from win.unlock_all()
        yield from notif_win.unlock_all()
    if mode == "na":
        yield from ctx.na.request_free(wildcard_req)
    yield from ctx.barrier()

    ok = True
    if verify:
        ok = tm.check_against(tm.reference_lower(seed=seed))
    return (elapsed, ok)


def run_cholesky(mode: str, nranks: int, ntiles: int, b: int = 32,
                 verify: bool = False, seed: int = 7,
                 variant: str = "right",
                 config: ClusterConfig | None = None) -> dict:
    """Run the tiled Cholesky; returns timing and GFlop/s metrics.

    ``variant`` selects the update schedule: ``"right"`` (eager trailing
    updates) or ``"left"`` (the deferred schedule of Kurzak et al. that the
    paper names).  Both exchange the identical panel broadcasts.
    """
    if mode not in CHOLESKY_MODES:
        raise ReproError(f"unknown cholesky mode {mode!r}; "
                         f"choose from {CHOLESKY_MODES}")
    if variant not in ("right", "left"):
        raise ReproError(f"unknown variant {variant!r}")
    if ntiles < 1 or ntiles > 255:
        raise ReproError("ntiles must be in [1, 255] (tag encoding)")
    if config is None:
        config = ClusterConfig(nranks=nranks)
    results, cluster = run_ranks(
        nranks,
        lambda ctx: _cholesky_program(ctx, mode, ntiles, b, verify, seed,
                                      variant),
        config=config)
    elapsed = max(r[0] for r in results)
    ok = all(r[1] for r in results)
    if verify and not ok:
        raise ReproError("factorization does not match the serial reference")
    flops = total_flops(ntiles, b)
    return {
        "mode": mode,
        "variant": variant,
        "nranks": nranks,
        "ntiles": ntiles,
        "tile_b": b,
        "tile_bytes": b * b * 8,
        "time_us": elapsed,
        "gflops": flops / (elapsed * 1000.0) if elapsed else 0.0,
        "verified": ok if verify else None,
    }
