"""Deterministic SPD test matrices, tiled, with a serial reference."""

from __future__ import annotations


import numpy as np


def make_spd(n: int, seed: int = 7) -> np.ndarray:
    """A reproducible symmetric positive-definite matrix."""
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, n))
    return b @ b.T + n * np.eye(n)


class TileMatrix:
    """The lower-triangular tiles of one rank's columns.

    ``owner(j) = j % nranks`` (1D block-cyclic).  With ``materialize=False``
    only the tile *shapes* exist — the timing-model path, where no numerics
    run.
    """

    def __init__(self, ntiles: int, b: int, rank: int, nranks: int,
                 materialize: bool = True, seed: int = 7):
        self.ntiles = ntiles
        self.b = b
        self.rank = rank
        self.nranks = nranks
        self.materialized = materialize
        self.tiles: dict[tuple[int, int], np.ndarray | None] = {}
        full = make_spd(ntiles * b, seed=seed) if materialize else None
        for j in range(ntiles):
            if j % nranks != rank:
                continue
            for i in range(j, ntiles):
                if materialize:
                    self.tiles[(i, j)] = np.ascontiguousarray(
                        full[i * b:(i + 1) * b, j * b:(j + 1) * b])
                else:
                    self.tiles[(i, j)] = None

    def owner(self, j: int) -> int:
        return j % self.nranks

    def mine(self, j: int) -> bool:
        return j % self.nranks == self.rank

    def local_columns(self) -> list[int]:
        return [j for j in range(self.ntiles) if self.mine(j)]

    def get(self, i: int, j: int) -> np.ndarray:
        tile = self.tiles[(i, j)]
        assert tile is not None, "tile access in non-materialized mode"
        return tile

    def reference_lower(self, seed: int = 7) -> np.ndarray:
        """Serial Cholesky factor of the same matrix."""
        return np.linalg.cholesky(make_spd(self.ntiles * self.b, seed=seed))

    def check_against(self, ref_l: np.ndarray, atol: float = 1e-8) -> bool:
        """Compare this rank's factored tiles against the reference."""
        if not self.materialized:
            return True
        b = self.b
        for (i, j), tile in self.tiles.items():
            want = ref_l[i * b:(i + 1) * b, j * b:(j + 1) * b]
            if not np.allclose(tile, want, atol=atol):
                return False
        return True
