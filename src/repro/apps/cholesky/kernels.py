"""Tile kernels (DPOTRF, DTRSM, DGEMM, DSYRK) and their flop counts.

The numeric kernels run on real NumPy tiles when verification is on; the
flop counts drive the simulated compute time either way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def flops_potrf(b: int) -> float:
    return b ** 3 / 3.0


def flops_trsm(b: int) -> float:
    return b ** 3


def flops_gemm(b: int) -> float:
    return 2.0 * b ** 3


def flops_syrk(b: int) -> float:
    return float(b ** 3)


FLOPS = {
    "potrf": flops_potrf,
    "trsm": flops_trsm,
    "gemm": flops_gemm,
    "syrk": flops_syrk,
}


def potrf(tile: np.ndarray) -> np.ndarray:
    """In-place lower Cholesky of a diagonal tile."""
    try:
        tile[:] = np.linalg.cholesky(tile)
    except np.linalg.LinAlgError as exc:
        raise ReproError(f"diagonal tile not positive definite: {exc}")
    return tile


def trsm(lkk: np.ndarray, tile: np.ndarray) -> np.ndarray:
    """In-place ``tile <- tile @ inv(L_kk)^T`` (right-side TRSM)."""
    # Solve X L^T = A  =>  L X^T = A^T.
    tile[:] = np.linalg.solve(lkk, tile.T).T
    return tile


def gemm_update(aij: np.ndarray, lik: np.ndarray,
                ljk: np.ndarray) -> np.ndarray:
    """``A_ij -= L_ik @ L_jk^T`` (off-diagonal trailing update)."""
    aij -= lik @ ljk.T
    return aij


def syrk_update(ajj: np.ndarray, ljk: np.ndarray) -> np.ndarray:
    """``A_jj -= L_jk @ L_jk^T`` (diagonal trailing update)."""
    ajj -= ljk @ ljk.T
    return ajj


def total_flops(ntiles: int, b: int) -> float:
    """Total factorization flops of a ``ntiles × ntiles`` tile matrix."""
    total = 0.0
    for k in range(ntiles):
        total += flops_potrf(b)
        total += (ntiles - k - 1) * flops_trsm(b)
        for j in range(k + 1, ntiles):
            total += flops_syrk(b)
            total += (ntiles - j - 1) * flops_gemm(b)
    return total
