"""Task-based tiled Cholesky factorization — Figure 5 of the paper (§VI-C).

A right-looking tiled Cholesky on a 1D block-cyclic column distribution.
After the owner of column ``k`` factors the panel (POTRF + TRSMs), every
panel tile is broadcast along a **binary tree overlay** rooted at the owner;
"as soon as a node receives an update, it forwards the update to its
children".  Consumers cannot predict which tile arrives next — the matching
problem the three variants solve differently:

* ``mp`` — MPI_Probe + MPI_Recv, the tile index coded in the tag,
* ``onesided`` — put of the tile, fetch&op on a remote ring-buffer counter,
  flush, then a put of the tile coordinate (the paper's excerpt), with the
  consumer polling the ring,
* ``na`` — a single ``put_notify`` with the tile index in the tag; the
  consumer waits on one wildcard (ANY_SOURCE, ANY_TAG) request and reads
  the index from the returned status.
"""

from repro.apps.cholesky.bcast_tree import tree_children, tree_parent
from repro.apps.cholesky.driver import CHOLESKY_MODES, run_cholesky
from repro.apps.cholesky.kernels import (
    FLOPS,
    gemm_update,
    potrf,
    syrk_update,
    trsm,
)
from repro.apps.cholesky.matrix import TileMatrix

__all__ = [
    "run_cholesky",
    "CHOLESKY_MODES",
    "potrf",
    "trsm",
    "gemm_update",
    "syrk_update",
    "FLOPS",
    "TileMatrix",
    "tree_children",
    "tree_parent",
]
