"""Computation/communication overlap benchmark — Figure 4a.

For each payload size the benchmark

1. measures the pure communication time ``t_comm`` (init + completion with
   no intervening computation),
2. calibrates a computation block to ``overwork × t_comm`` (slightly more
   than the communication, as the paper does),
3. re-measures with the computation placed between initiation
   (``MPI_Isend`` / ``MPI_Put`` / ``MPI_Put_notify``) and completion
   (``MPI_Wait`` / fence / flush),

and reports ``overlap = (t_comm + t_comp - t_total) / t_comm`` clamped to
[0, 1]: the share of the communication hidden behind the computation.

Modes: ``mp`` (Isend/Wait), ``onesided_fence`` (Put/fence),
``onesided_flush`` (Put/flush), ``na`` (Put_notify/flush).
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterConfig, run_ranks
from repro.errors import ReproError

OVERLAP_MODES = ("mp", "onesided_fence", "onesided_flush", "na")

_TAG = 17


def _overlap_program(ctx, mode: str, size_bytes: int, iters: int,
                     overwork: float):
    """Rank 0 initiates and computes; rank 1 sinks the transfers."""
    n = size_bytes // 8
    data = np.arange(n, dtype=np.float64)
    win = yield from ctx.win_allocate(size_bytes)
    if mode == "onesided_fence":
        yield from win.fence()
    else:
        yield from win.lock_all()

    def one_round(compute_us: float):
        """One initiate→[compute]→complete round at the origin."""
        if mode == "mp":
            req = yield from ctx.comm.isend(data, 1, _TAG)
            if compute_us:
                yield from ctx.compute(compute_us)
            yield from ctx.comm.wait(req)
        elif mode == "onesided_fence":
            yield from win.put(data, 1, 0)
            if compute_us:
                yield from ctx.compute(compute_us)
            yield from win.fence()
        elif mode == "onesided_flush":
            yield from win.put(data, 1, 0)
            if compute_us:
                yield from ctx.compute(compute_us)
            yield from win.flush(1)
        elif mode == "na":
            yield from ctx.na.put_notify(win, data, 1, 0, tag=_TAG)
            if compute_us:
                yield from ctx.compute(compute_us)
            yield from win.flush(1)
        else:  # pragma: no cover - guarded by run_overlap
            raise ReproError(f"unknown overlap mode {mode!r}")

    def sink_round():
        """The target side of one round."""
        if mode == "mp":
            buf = np.zeros(n, dtype=np.float64)
            yield from ctx.comm.recv(buf, 0, _TAG)
        elif mode == "onesided_fence":
            yield from win.fence()
        # flush/na modes are fully passive at the target.

    # Phase 1: pure communication time.
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == 0:
            yield from one_round(0.0)
        else:
            yield from sink_round()
    yield from ctx.barrier()
    t_comm = (ctx.now - t0) / iters

    # Phase 2: the same with calibrated computation in between.
    t_comp = overwork * t_comm
    yield from ctx.barrier()
    t0 = ctx.now
    for _ in range(iters):
        if ctx.rank == 0:
            yield from one_round(t_comp)
        else:
            yield from sink_round()
    yield from ctx.barrier()
    t_total = (ctx.now - t0) / iters

    if mode == "onesided_fence":
        yield from win.fence_end()
    else:
        yield from win.unlock_all()
    return (t_comm, t_comp, t_total)


def run_overlap(mode: str, size_bytes: int, iters: int = 20,
                overwork: float = 1.1,
                config: ClusterConfig | None = None) -> dict:
    """Measure the overlappable share of communication for one mode/size."""
    if mode not in OVERLAP_MODES:
        raise ReproError(f"unknown overlap mode {mode!r}; "
                         f"choose from {OVERLAP_MODES}")
    if size_bytes % 8 or size_bytes <= 0:
        raise ReproError("size_bytes must be a positive multiple of 8")
    if config is None:
        config = ClusterConfig(nranks=2)
    results, _cluster = run_ranks(
        2, lambda ctx: _overlap_program(ctx, mode, size_bytes, iters,
                                        overwork),
        config=config)
    t_comm, t_comp, t_total = results[0]
    overlap = (t_comm + t_comp - t_total) / t_comm if t_comm > 0 else 0.0
    return {
        "mode": mode,
        "size_bytes": size_bytes,
        "t_comm_us": t_comm,
        "t_comp_us": t_comp,
        "t_total_us": t_total,
        "overlap_ratio": max(0.0, min(1.0, overlap)),
    }
