"""Request-based RMA operations (MPI_Rput / MPI_Rget analogues).

The paper notes its notified variants extend naturally to MPI's
request-based operations; these wrappers give every one-sided access an
explicit request handle whose ``wait`` covers *local* completion (origin
buffer reuse for puts, data arrival for gets), independent of window-level
flushes.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.memory.address import Region
from repro.network.fabric import OpHandle
from repro.rma.window import Window


class RmaRequest:
    """Handle on one request-based RMA operation."""

    __slots__ = ("handle", "ctx", "kind")

    def __init__(self, ctx, handle: OpHandle, kind: str):
        self.ctx = ctx
        self.handle = handle
        self.kind = kind

    @property
    def done(self) -> bool:
        return self.handle.local_done.processed

    def test(self) -> bool:
        """Nonblocking local-completion check."""
        return self.done

    def _san_acquire(self, clock_attr: str) -> None:
        san = getattr(self.ctx.cluster, "sanitizer", None)
        if san is not None:
            san.acquire_op(self.ctx.rank,
                           getattr(self.handle, clock_attr))

    def wait(self) -> Generator[object, object, None]:
        """Block until local completion (use with ``yield from``)."""
        if not self.handle.local_done.processed:
            yield self.handle.local_done
        # Local completion of a get means the data landed in the buffer.
        self._san_acquire("san_local")

    def wait_remote(self) -> Generator[object, object, None]:
        """Block until remote completion (flush semantics for one op)."""
        if not self.handle.remote_done.processed:
            yield self.handle.remote_done
        self._san_acquire("san_remote")


def rput(win: Window, data: np.ndarray, target: int,
         target_disp: int = 0) -> Generator[object, object, RmaRequest]:
    """Request-based put: like ``win.put`` but returns a waitable request."""
    h = yield from win.put(data, target, target_disp)
    return RmaRequest(win.ctx, h, "rput")


def rget(win: Window, buf_region: Region, target: int, target_disp: int = 0,
         nbytes: int | None = None,
         local_offset: int = 0) -> Generator[object, object, RmaRequest]:
    """Request-based get: ``wait`` returns once the data has arrived."""
    h = yield from win.get(buf_region, target, target_disp, nbytes=nbytes,
                           local_offset=local_offset)
    return RmaRequest(win.ctx, h, "rget")


def rput_notify(ctx, win: Window, data: np.ndarray, target: int,
                target_disp: int = 0,
                tag: int = 0) -> Generator[object, object, RmaRequest]:
    """Request-based *notified* put — the combination the paper sketches
    for request-based operations: local completion at the origin via the
    request, remote synchronization at the target via the notification."""
    h = yield from ctx.na.put_notify(win, data, target, target_disp, tag=tag)
    return RmaRequest(ctx, h, "rput_notify")
