"""Typed (derived-datatype) RMA and Notified Access operations.

These mirror the full signatures of the paper's interface —
``MPI_Put_notify(origin_addr, origin_count, origin_type, target_rank,
target_disp, target_count, target_type, win, tag)`` — for non-contiguous
layouts.  The origin packs (CPU pack cost charged unless the type is
contiguous); the wire moves the packed bytes in one transaction; the target
side is scattered by the NIC via the fabric's scatter-gather list.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.errors import RmaEpochError
from repro.memory.address import Region
from repro.mpi.datatypes import Datatype
from repro.network.cq import encode_immediate
from repro.network.fabric import OpHandle
from repro.rma.window import Window


def _target_blocks(win: Window, target: int, target_disp: int,
                   ttype: Datatype, count: int) -> list[tuple[int, int]]:
    """Absolute (addr, nbytes) blocks of ``count`` x ``ttype`` at target."""
    span = (count - 1) * ttype.extent + ttype.extent if count else 0
    base = win.shared.target_addr(target, target_disp, span)
    blocks = []
    for c in range(count):
        for off, n in ttype.blocks:
            blocks.append((base + c * ttype.extent + off, n))
    return blocks


def put_typed(win: Window, buf: np.ndarray, origin_type: Datatype,
              target: int, target_disp: int = 0,
              target_type: Datatype | None = None, count: int = 1
              ) -> Generator[object, object, OpHandle]:
    """Typed one-sided write: pack ``count`` x ``origin_type`` from ``buf``
    and scatter into ``count`` x ``target_type`` at the target."""
    win._check_access(target)
    ttype = target_type or origin_type
    if origin_type.size != ttype.size:
        raise RmaEpochError(
            f"origin type packs {origin_type.size} B/element but target "
            f"type holds {ttype.size}")
    ctx = win.ctx
    packed = origin_type.pack(buf, count)
    cost = origin_type.pack_cost(ctx.params, count)
    if cost:
        yield ctx.engine.timeout(cost)
    scatter = _target_blocks(win, target, target_disp, ttype, count)
    h = yield from win._issue(ctx.fabric.put, ctx.rank, target, 0, packed,
                              win_id=win.id, scatter=scatter)
    win.record_pending(target, h)
    return h


def get_typed(win: Window, buf: np.ndarray, origin_type: Datatype,
              origin_region: Region, target: int, target_disp: int = 0,
              target_type: Datatype | None = None, count: int = 1
              ) -> Generator[object, object, OpHandle]:
    """Typed one-sided read: gather ``count`` x ``target_type`` remotely
    and scatter into ``origin_region`` with ``origin_type``'s layout.

    ``buf`` must be the NumPy view of ``origin_region`` (layout reference);
    the data lands in the region's memory.
    """
    win._check_access(target)
    ttype = target_type or origin_type
    if origin_type.size != ttype.size:
        raise RmaEpochError("origin/target type sizes differ")
    ctx = win.ctx
    gather = _target_blocks(win, target, target_disp, ttype, count)
    nbytes = ttype.size * count
    scatter = [(origin_region.addr + c * origin_type.extent + off, n)
               for c in range(count) for off, n in origin_type.blocks]
    h = yield from win._issue(ctx.fabric.get, ctx.rank, target, 0, nbytes,
                              0, win_id=win.id, gather=gather,
                              scatter=scatter)
    win.record_pending(target, h)
    cost = origin_type.pack_cost(ctx.params, count)
    if cost:
        yield ctx.engine.timeout(cost)
    return h


def put_notify_typed(ctx, win: Window, buf: np.ndarray,
                     origin_type: Datatype, target: int,
                     target_disp: int = 0,
                     target_type: Datatype | None = None,
                     count: int = 1,
                     tag: int = 0) -> Generator[object, object, OpHandle]:
    """The paper's full ``MPI_Put_notify`` signature with derived types."""
    ttype = target_type or origin_type
    if origin_type.size != ttype.size:
        raise RmaEpochError("origin/target type sizes differ")
    packed = origin_type.pack(buf, count)
    cost = origin_type.pack_cost(ctx.params, count)
    if cost:
        yield ctx.engine.timeout(cost)
    scatter = _target_blocks(win, target, target_disp, ttype, count)
    imm = encode_immediate(ctx.rank, tag)
    yield ctx.engine.timeout(ctx.params.o_send)
    h = ctx.fabric.put(ctx.rank, target, 0, packed, win_id=win.id,
                       immediate=imm, scatter=scatter)
    win.record_pending(target, h)
    ctx.na.notified_ops += 1
    if h.cpu_busy:
        yield ctx.engine.timeout(h.cpu_busy)
    return h
