"""RMA windows: allocation, accesses, and synchronization epochs.

A window is created collectively (every rank calls :func:`win_allocate` in
the same order).  Each rank's window memory is a region of its address
space, preceded by a 64-byte header holding the passive-target lock word.

Epoch rules follow MPI-3 semantics: accesses are legal only inside a fence
epoch, a PSCW access epoch (towards the ranks in the started group), or a
held lock.  Notified accesses are exempt — per §III of the paper they "form
their own epoch and do not interact with normal remote accesses" — but they
still count as pending operations for ``flush``.
"""

from __future__ import annotations

import itertools
from collections.abc import Generator

import numpy as np

from repro.errors import RmaEpochError
from repro.memory.address import Region
from repro.network.fabric import OpHandle

#: window header bytes (lock word and padding) before the user data
WIN_HEADER = 64
#: ctrl-message sizes for PSCW (bytes)
PSCW_MSG_BYTES = 16

_EPOCH_NONE = "none"
_EPOCH_FENCE = "fence"
_EPOCH_PSCW = "pscw"
_EPOCH_LOCK = "lock"
_EPOCH_LOCK_ALL = "lock_all"


class WindowRegistry:
    """Cluster-level coordination of collective window allocation.

    Window identity is positional: every rank's *n*-th ``win_allocate`` call
    names the same window, exactly like the matching requirement on MPI
    collectives.
    """

    def __init__(self, nranks: int):
        self.nranks = nranks
        self._call_idx = [0] * nranks
        self._shared: dict[int, "_SharedWin"] = {}
        self._ids = itertools.count(1)

    def attach(self, rank: int) -> "_SharedWin":
        idx = self._call_idx[rank]
        self._call_idx[rank] += 1
        shared = self._shared.get(idx)
        if shared is None:
            shared = _SharedWin(win_id=next(self._ids), nranks=self.nranks)
            self._shared[idx] = shared
        return shared


class _SharedWin:
    """State shared by all ranks of one window."""

    def __init__(self, win_id: int, nranks: int):
        self.win_id = win_id
        self.nranks = nranks
        self.bases: dict[int, int] = {}     # rank -> user-data base address
        self.header: dict[int, int] = {}    # rank -> header (lock word) addr
        self.sizes: dict[int, int] = {}
        self.disp_units: dict[int, int] = {}

    def register(self, rank: int, region: Region, disp_unit: int) -> None:
        self.header[rank] = region.addr
        self.bases[rank] = region.addr + WIN_HEADER
        self.sizes[rank] = region.nbytes - WIN_HEADER
        self.disp_units[rank] = disp_unit

    def target_addr(self, target: int, disp: int, nbytes: int) -> int:
        base = self.bases[target]
        off = disp * self.disp_units[target]
        if off < 0 or off + nbytes > self.sizes[target]:
            raise RmaEpochError(
                f"access [{off}, {off + nbytes}) outside window of "
                f"{self.sizes[target]} bytes at rank {target}")
        return base + off


def win_allocate(ctx, nbytes: int,
                 disp_unit: int = 1) -> Generator[object, object, "Window"]:
    """Collectively allocate a window of ``nbytes`` local bytes per rank."""
    shared = ctx.cluster.win_registry.attach(ctx.rank)
    region = ctx.space.alloc(nbytes + WIN_HEADER)
    region.ndarray()[:] = 0
    shared.register(ctx.rank, region, disp_unit)
    win = Window(ctx, shared, region)
    # Window creation is collective: synchronize like MPI_Win_allocate.
    yield from ctx.comm.barrier()
    return win


class Window:
    """One rank's handle on a collectively allocated window."""

    def __init__(self, ctx, shared: _SharedWin, region: Region):
        self.ctx = ctx
        self.shared = shared
        self.region = region
        self.id = shared.win_id
        self.rank = ctx.rank
        self._pending: dict[int, list[OpHandle]] = {}
        self._epoch = _EPOCH_NONE
        self._access_group: set[int] | None = None
        self._locked: set[int] = set()
        self.freed = False

    # -- local memory --------------------------------------------------
    def local(self, dtype=np.uint8, offset: int = 0,
              count: int | None = None,
              mode: str = "rw") -> np.ndarray:
        """NumPy view of this rank's window memory.

        ``mode`` ("rw", "r", or "raw") is the sanitizer access annotation,
        see :meth:`repro.memory.address.Region.ndarray`.
        """
        return self.region.ndarray(dtype, offset=WIN_HEADER + offset,
                                   count=count, mode=mode)

    @property
    def _san(self):
        return getattr(self.ctx.cluster, "sanitizer", None)

    @property
    def local_size(self) -> int:
        return self.shared.sizes[self.rank]

    # -- epoch bookkeeping ----------------------------------------------
    def _check_access(self, target: int) -> None:
        if self.freed:
            raise RmaEpochError("access on a freed window")
        if self._epoch == _EPOCH_FENCE:
            return
        if self._epoch == _EPOCH_PSCW:
            if self._access_group is not None and target in self._access_group:
                return
            raise RmaEpochError(
                f"PSCW access epoch does not include target {target}")
        if self._epoch in (_EPOCH_LOCK, _EPOCH_LOCK_ALL):
            if self._epoch == _EPOCH_LOCK and target not in self._locked:
                raise RmaEpochError(f"no lock held on target {target}")
            return
        raise RmaEpochError(
            "RMA access outside an epoch (call fence, start, lock, or "
            "lock_all first)")

    def record_pending(self, target: int, handle: OpHandle) -> None:
        self._pending.setdefault(target, []).append(handle)

    def _issue(self, fn, *args, **kw):
        """Charge o_send (the software call cost, before injection), run the
        fabric operation, then charge the engine's CPU occupancy."""
        yield self.ctx.engine.timeout(self.ctx.params.o_send)
        h = fn(*args, **kw)
        if h.cpu_busy:
            yield self.ctx.engine.timeout(h.cpu_busy)
        return h

    # -- data movement ----------------------------------------------------
    def put(self, data: np.ndarray, target: int,
            target_disp: int = 0) -> Generator[object, object, OpHandle]:
        """One-sided write of ``data`` to ``target`` at ``target_disp``."""
        self._check_access(target)
        nbytes = int(np.ascontiguousarray(data).nbytes)
        addr = self.shared.target_addr(target, target_disp, nbytes)
        h = yield from self._issue(self.ctx.fabric.put, self.rank, target,
                                   addr, data, win_id=self.id)
        self.record_pending(target, h)
        return h

    def get(self, buf_region: Region, target: int, target_disp: int = 0,
            nbytes: int | None = None,
            local_offset: int = 0) -> Generator[object, object, OpHandle]:
        """One-sided read from ``target`` into ``buf_region``."""
        self._check_access(target)
        if nbytes is None:
            nbytes = buf_region.nbytes - local_offset
        addr = self.shared.target_addr(target, target_disp, nbytes)
        h = yield from self._issue(self.ctx.fabric.get, self.rank, target,
                                   addr, nbytes,
                                   buf_region.addr + local_offset,
                                   win_id=self.id)
        self.record_pending(target, h)
        return h

    def accumulate(self, data: np.ndarray, target: int,
                   target_disp: int = 0, op: str = "sum",
                   dtype=np.float64) -> Generator[object, object, OpHandle]:
        """MPI_Accumulate: element-wise remote update."""
        self._check_access(target)
        nbytes = int(np.ascontiguousarray(data).nbytes)
        addr = self.shared.target_addr(target, target_disp, nbytes)
        h = yield from self._issue(self.ctx.fabric.put, self.rank, target,
                                   addr, data, win_id=self.id,
                                   accumulate=op, acc_dtype=dtype)
        self.record_pending(target, h)
        return h

    def fetch_and_op(self, operand: int, target: int, target_disp: int = 0,
                     op: str = "sum",
                     dtype=np.int64) -> Generator[object, object, int]:
        """Atomic fetch-and-op on one element; returns the old value."""
        self._check_access(target)
        itemsize = np.dtype(dtype).itemsize
        addr = self.shared.target_addr(target, target_disp, itemsize)
        h = yield from self._issue(self.ctx.fabric.amo, self.rank, target,
                                   addr, op, operand, dtype=dtype,
                                   win_id=self.id)
        old = yield h.remote_done
        if self._san is not None:
            # The fetched value orders this rank after the atomic (and,
            # through the location clock, after whoever stored the value).
            self._san.acquire_op(self.rank, h.san_remote)
        return old

    def compare_and_swap(self, operand: int, compare: int, target: int,
                         target_disp: int = 0,
                         dtype=np.int64) -> Generator[object, object, int]:
        """Atomic CAS on one element; returns the old value."""
        self._check_access(target)
        itemsize = np.dtype(dtype).itemsize
        addr = self.shared.target_addr(target, target_disp, itemsize)
        h = yield from self._issue(self.ctx.fabric.amo, self.rank, target,
                                   addr, "cas", operand, compare=compare,
                                   dtype=dtype, win_id=self.id)
        old = yield h.remote_done
        if self._san is not None:
            self._san.acquire_op(self.rank, h.san_remote)
        return old

    # -- completion --------------------------------------------------------
    def flush(self, target: int) -> Generator[object, object, None]:
        """Wait for remote completion of all pending ops to ``target``."""
        handles = self._pending.pop(target, [])
        if handles:
            yield self.ctx.engine.all_of([h.remote_done for h in handles])
            san = self._san
            if san is not None:
                # Remote completion acknowledged: this rank is ordered
                # after every flushed op's commit.
                for h in handles:
                    san.acquire_op(self.rank, h.san_remote)

    def flush_local(self, target: int) -> Generator[object, object, None]:
        """Wait for local completion only (origin buffers reusable).

        Handles whose remote completion already arrived are pruned so that
        per-message flush_local loops (e.g. the stencil) stay O(1).
        """
        handles = self._pending.get(target, [])
        if handles:
            yield self.ctx.engine.all_of([h.local_done for h in handles])
            san = self._san
            if san is not None:
                # Only the *local* legs (a get's delivery into origin
                # memory).  A put's remote commit is deliberately NOT
                # acquired: flush_local does not order it.
                for h in handles:
                    san.acquire_op(self.rank, h.san_local)
            handles[:] = [h for h in handles
                          if not h.remote_done.processed]
            if not handles:
                self._pending.pop(target, None)

    def flush_all(self) -> Generator[object, object, None]:
        targets = list(self._pending)
        for t in targets:
            yield from self.flush(t)

    def flush_local_all(self) -> Generator[object, object, None]:
        for t in list(self._pending):
            yield from self.flush_local(t)

    # -- active target: fence -----------------------------------------------
    def fence(self) -> Generator[object, object, None]:
        """Collective fence: completes pending ops and synchronizes all."""
        if self.freed:
            raise RmaEpochError("fence on a freed window")
        yield from self.flush_all()
        yield from self.ctx.comm.barrier()
        self._epoch = _EPOCH_FENCE
        self._access_group = None

    def fence_end(self) -> Generator[object, object, None]:
        """Close the fence epoch (MPI_Win_fence with MPI_MODE_NOSUCCEED)."""
        yield from self.flush_all()
        yield from self.ctx.comm.barrier()
        self._epoch = _EPOCH_NONE

    # -- active target: PSCW ---------------------------------------------
    def post(self, origins: list[int]) -> Generator[object, object, None]:
        """Expose this window to ``origins`` (MPI_Win_post)."""
        for o in origins:
            if o == self.rank:
                continue
            h = self.ctx.fabric.send_sys(
                self.rank, o, f"pscw-post-{self.id}", PSCW_MSG_BYTES)
            if h.cpu_busy:
                yield self.ctx.engine.timeout(h.cpu_busy)

    def start(self, targets: list[int]) -> Generator[object, object, None]:
        """Open an access epoch towards ``targets`` (MPI_Win_start)."""
        if self._epoch not in (_EPOCH_NONE,):
            raise RmaEpochError(f"start inside epoch {self._epoch!r}")
        yield from self.ctx.endpoint.ctrl_wait(
            f"pscw-post-{self.id}", [t for t in targets if t != self.rank])
        self._epoch = _EPOCH_PSCW
        self._access_group = set(targets)

    def complete(self) -> Generator[object, object, None]:
        """Close the access epoch (MPI_Win_complete)."""
        if self._epoch != _EPOCH_PSCW:
            raise RmaEpochError("complete without a started access epoch")
        yield from self.flush_all()
        for t in sorted(self._access_group or ()):
            if t == self.rank:
                continue
            h = self.ctx.fabric.send_sys(
                self.rank, t, f"pscw-complete-{self.id}", PSCW_MSG_BYTES)
            if h.cpu_busy:
                yield self.ctx.engine.timeout(h.cpu_busy)
        self._epoch = _EPOCH_NONE
        self._access_group = None

    def wait(self, origins: list[int]) -> Generator[object, object, None]:
        """Close the exposure epoch (MPI_Win_wait)."""
        yield from self.ctx.endpoint.ctrl_wait(
            f"pscw-complete-{self.id}",
            [o for o in origins if o != self.rank])

    # -- passive target ------------------------------------------------------
    def lock(self, target: int,
             exclusive: bool = False) -> Generator[object, object, None]:
        """Open a passive-target epoch; exclusive locks spin on a CAS."""
        if self._epoch not in (_EPOCH_NONE, _EPOCH_LOCK):
            raise RmaEpochError(f"lock inside epoch {self._epoch!r}")
        if exclusive:
            lock_addr = self.shared.header[target]
            while True:
                h = yield from self._issue(
                    self.ctx.fabric.amo, self.rank, target, lock_addr,
                    "cas", self.rank + 1, compare=0, win_id=self.id)
                old = yield h.remote_done
                if old == 0:
                    if self._san is not None:
                        # Lock acquired: ordered after the unlock whose 0
                        # this CAS observed (via the lock-word clock).
                        self._san.acquire_op(self.rank, h.san_remote)
                    break
        self._locked.add(target)
        self._epoch = _EPOCH_LOCK

    def unlock(self, target: int,
               exclusive: bool = False) -> Generator[object, object, None]:
        if target not in self._locked:
            raise RmaEpochError(f"unlock without lock on target {target}")
        yield from self.flush(target)
        if exclusive:
            lock_addr = self.shared.header[target]
            h = yield from self._issue(self.ctx.fabric.amo, self.rank,
                                       target, lock_addr, "replace", 0,
                                       win_id=self.id)
            yield h.remote_done
            if self._san is not None:
                self._san.acquire_op(self.rank, h.san_remote)
        self._locked.discard(target)
        if not self._locked:
            self._epoch = _EPOCH_NONE

    def lock_all(self) -> Generator[object, object, None]:
        """Shared lock on every target (the foMPI passive-target mode)."""
        if self._epoch != _EPOCH_NONE:
            raise RmaEpochError(f"lock_all inside epoch {self._epoch!r}")
        self._epoch = _EPOCH_LOCK_ALL
        return
        yield  # pragma: no cover - generator marker

    def unlock_all(self) -> Generator[object, object, None]:
        if self._epoch != _EPOCH_LOCK_ALL:
            raise RmaEpochError("unlock_all without lock_all")
        yield from self.flush_all()
        self._epoch = _EPOCH_NONE

    # -- teardown ------------------------------------------------------------
    def free(self) -> Generator[object, object, None]:
        """Collective window free."""
        if self._epoch not in (_EPOCH_NONE, _EPOCH_FENCE):
            raise RmaEpochError(f"free inside epoch {self._epoch!r}")
        yield from self.flush_all()
        yield from self.ctx.comm.barrier()
        self.region.free()
        self.freed = True


def win_create(ctx, region: Region,
               disp_unit: int = 1) -> Generator[object, object, "Window"]:
    """Collectively create a window over an **existing** region
    (MPI_Win_create semantics, vs ``win_allocate``'s fresh memory).

    The first ``WIN_HEADER`` bytes of the region are reserved for the
    window header (lock word); user data starts after it, so the region
    must be at least ``WIN_HEADER`` bytes larger than the exposed memory.
    """
    if region.nbytes <= WIN_HEADER:
        raise RmaEpochError(
            f"region of {region.nbytes} B too small for a window "
            f"(needs > {WIN_HEADER} B of header)")
    shared = ctx.cluster.win_registry.attach(ctx.rank)
    region.ndarray()[:WIN_HEADER] = 0
    shared.register(ctx.rank, region, disp_unit)
    win = Window(ctx, shared, region)
    yield from ctx.comm.barrier()
    return win
