"""MPI-3 One Sided: windows, data movement, and synchronization.

This is the foMPI-equivalent substrate the paper extends.  It provides every
synchronization mode the paper benchmarks against:

* **fence** — bulk active-target (a barrier plus remote completion),
* **PSCW** — general active target (post/start/complete/wait),
* **passive target** — lock/lock_all with ``flush``,

plus put/get/accumulate/fetch&op/compare&swap, all with epoch checking (an
access outside a legal epoch raises :class:`~repro.errors.RmaEpochError`).
"""

from repro.rma.request import RmaRequest, rget, rput, rput_notify
from repro.rma.window import Window, WindowRegistry, win_allocate, win_create

__all__ = [
    "Window",
    "WindowRegistry",
    "win_allocate",
    "win_create",
    "RmaRequest",
    "rput",
    "rget",
    "rput_notify",
]
