"""Failure detection oracle over the fault injector's node-death plan.

A real RMA fault-tolerance layer learns about dead peers from a failure
detector (timeouts, OS notifications, out-of-band heartbeats).  Here the
ground truth is the :class:`~repro.faults.FaultPlan`'s ``node_failures``
table, and the detector exposes it with the same visibility latency the
transport uses to fail in-flight operations: a death at virtual time
``t`` becomes *detectable* at ``t + detect_us``.  All recovery decisions
(replica selection, failover, crash-exit deadlines) consult this oracle,
so they are pure functions of (plan, virtual time) — deterministic, and
byte-identical between serial and sharded runs.
"""

from __future__ import annotations

from collections.abc import Iterable


class FailureDetector:
    """Per-rank view of planned node deaths and their detection times."""

    def __init__(self, ctx):
        self.ctx = ctx
        faults = ctx.fabric.faults
        self.plan = faults.plan if faults is not None else None

    @property
    def detect_us(self) -> float:
        """Failure-detection latency (0 when no plan is active)."""
        return 0.0 if self.plan is None else self.plan.detect_us

    def death_time(self, rank: int) -> float | None:
        """When ``rank`` dies (µs), or None if it never does."""
        if self.plan is None:
            return None
        return self.plan.node_failures.get(rank)

    def detection_time(self, rank: int) -> float | None:
        """When ``rank``'s death becomes visible (µs), or None."""
        when = self.death_time(rank)
        return None if when is None else when + self.plan.detect_us

    def is_down(self, rank: int, now: float | None = None) -> bool:
        """Has ``rank`` actually died by ``now`` (ground truth)?"""
        when = self.death_time(rank)
        if when is None:
            return False
        return (self.ctx.now if now is None else now) >= when

    def detected(self, rank: int, now: float | None = None) -> bool:
        """Has ``rank``'s death been *detected* by ``now``?

        This is what recovery code must use: between death and
        detection the failure is invisible, exactly like the window in
        which the transport still accepts (and loses) operations to the
        dead node.
        """
        at = self.detection_time(rank)
        if at is None:
            return False
        return (self.ctx.now if now is None else now) >= at

    def live(self, ranks: Iterable[int],
             now: float | None = None) -> list[int]:
        """The ranks not yet detected dead, in the given order."""
        t = self.ctx.now if now is None else now
        return [r for r in ranks if not self.detected(r, t)]

    def next_detection(self, now: float | None = None) -> float | None:
        """The earliest future detection instant, or None."""
        if self.plan is None or not self.plan.node_failures:
            return None
        t = self.ctx.now if now is None else now
        times = [when + self.plan.detect_us
                 for when in self.plan.node_failures.values()
                 if when + self.plan.detect_us > t]
        return min(times, default=None)

    def timer(self):
        """An engine timeout to the next detection instant, or None.

        Blocking recovery loops race their wakeup event against this
        timer so they re-examine the failure picture as soon as it can
        have changed — never earlier (no spurious wakeups on fault-free
        runs) and never later (no stall to deadlock detection).
        """
        nxt = self.next_detection()
        if nxt is None:
            return None
        return self.ctx.engine.timeout(nxt - self.ctx.now)
