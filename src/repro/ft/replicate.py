"""Replicated windows: mirrored notified puts with notification failover.

The write path of Besta & Hoefler's RMA fault-tolerance scheme: every
update is mirrored to R replica ranks as a notified put, and the writer
waits for R zero-byte credit acks (one counting
:class:`~repro.core.nrequest.NotifyRequest` with ``expected_count=R``)
before considering the write durable.  When the fault injector kills a
replica before it acked, :meth:`ReplicatedWindow.wait_acks` re-points
the outstanding credit at the next live rank of the replica chain — the
waiter never sees the failover unless the chain runs dry, in which case
it fails fast with :class:`~repro.errors.FaultError` naming the dead
rank instead of hanging.

Everything is put-class-only (mirrored notified puts out, zero-byte
credit acks back), so replicated workloads keep the sharded core's
byte-identical guarantee under node-failure-only fault plans.

Tag discipline: a credit request's tag must be unique among the writer's
outstanding replicated puts.  After a failover both the original (dead)
replica's ack and the replacement's ack can arrive for the same tag when
the original acked right before dying; the extra credit lands in the
unexpected queue and must not alias a *future* request — unique tags
(e.g. a per-writer request counter) guarantee that.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Sequence

import numpy as np

from repro.errors import FaultError
from repro.ft.detector import FailureDetector
from repro.rma.window import Window


class ReplicatedPut:
    """One mirrored write: its replica set and failover bookkeeping."""

    __slots__ = ("primary", "targets", "data", "disp", "tag", "failovers",
                 "issued_at")

    def __init__(self, primary: int, targets: list[int], data: np.ndarray,
                 disp: int, tag: int, issued_at: float):
        self.primary = primary
        #: current replica set; failover replaces dead members in place
        self.targets = targets
        self.data = data
        self.disp = disp
        self.tag = tag
        self.failovers = 0
        self.issued_at = issued_at


class ReplicatedWindow:
    """Facade mirroring every put/put_notify to R replica ranks.

    ``chain(primary)`` gives the full replica preference order for a
    primary rank (primary first); the facade writes to the first R ranks
    of the chain not yet detected dead, and failover walks further down
    the same chain.  The chain must be a pure function of its argument
    (no RNG, no wall-clock state) so replica choice is deterministic.
    """

    def __init__(self, ctx, win: Window,
                 chain: Callable[[int], Sequence[int]],
                 replication: int,
                 detector: FailureDetector | None = None):
        if replication < 1:
            raise FaultError(f"replication must be >= 1, got {replication}")
        self.ctx = ctx
        self.win = win
        self.chain = chain
        self.replication = replication
        self.det = detector if detector is not None else FailureDetector(ctx)

    # ------------------------------------------------------------------
    def targets(self, primary: int) -> list[int]:
        """The replica set for ``primary`` as of now: first R live ranks
        of the chain.  Raises :class:`FaultError` when the whole chain is
        detected dead (replication exhausted before issue)."""
        live = self.det.live(self.chain(primary))
        if not live:
            raise FaultError(
                f"replication exhausted: every replica in rank "
                f"{primary}'s chain is detected dead")
        return list(live[:self.replication])

    def put_notify(self, data: np.ndarray, primary: int, disp: int,
                   tag: int, targets: Sequence[int] | None = None
                   ) -> Generator[object, object, ReplicatedPut]:
        """Mirror one notified put to the primary's live replica set.

        Returns the :class:`ReplicatedPut` to later pass to
        :meth:`wait_acks` together with the writer's credit request
        (``expected_count`` must equal ``len(put.targets)``).  Pass
        ``targets`` to pin a replica set computed earlier (e.g. before
        sizing the credit request) — time passes between the two steps,
        and a detection landing in between must not skew the set.
        """
        targets = (list(targets) if targets is not None
                   else self.targets(primary))
        raw = np.ascontiguousarray(data).copy()
        for t in targets:
            yield from self.ctx.na.put_notify(self.win, raw, t, disp,
                                              tag=tag)
        return ReplicatedPut(primary, targets, raw, disp, tag,
                             self.ctx.now)

    def put(self, data: np.ndarray, primary: int,
            disp: int = 0) -> Generator[object, object, list]:
        """Mirror one plain (un-notified) put; returns the op handles.

        Durability of plain puts is the caller's ``flush`` problem; the
        notified path above is what gets failover.
        """
        targets = self.targets(primary)
        handles = []
        for t in targets:
            h = yield from self.win.put(data, t, disp)
            handles.append(h)
        return handles

    # ------------------------------------------------------------------
    def _replacement(self, put: ReplicatedPut, now: float) -> int | None:
        """Next live chain member not already in the replica set."""
        for r in self.chain(put.primary):
            if r not in put.targets and not self.det.detected(r, now):
                return r
        return None

    def wait_acks(self, req, put: ReplicatedPut
                  ) -> Generator[object, object, object]:
        """Wait for the put's credit acks, failing over dead replicas.

        ``req`` is the writer's counting credit request
        (``expected_count == len(put.targets)``, wildcard source).  The
        loop blocks like ``na.wait`` but races arrivals against the
        failure detector: when a replica that has not acked is detected
        dead, the mirrored put is re-issued to the next live chain
        member (which acks the same tag), keeping the expected credit
        count reachable.  When no live replacement exists the wait
        raises :class:`FaultError` naming the dead rank — fail fast, not
        a hang.  Returns the status of the count-crossing ack.
        """
        na = self.ctx.na
        while True:
            done = yield from na.test(req)
            if done:
                return req.last_status
            now = self.ctx.now
            acked = {s for s, _, _ in req.match_log}
            dead = [t for t in put.targets
                    if t not in acked and self.det.detected(t, now)]
            if dead:
                for t in dead:
                    repl = self._replacement(put, now)
                    if repl is None:
                        when = self.det.death_time(t)
                        raise FaultError(
                            f"replication exhausted for tag {put.tag} on "
                            f"rank {self.ctx.rank}: replica rank {t} is "
                            f"down since t={when:g}us and no live "
                            f"replacement remains in the chain")
                    put.targets[put.targets.index(t)] = repl
                    put.failovers += 1
                    yield from na.put_notify(self.win, put.data, repl,
                                             put.disp, tag=put.tag)
                continue
            if self.ctx.nic.notification_pending():
                continue
            arrival = self.ctx.nic.notification_arrival()
            timer = self.det.timer()
            yield (arrival if timer is None
                   else self.ctx.engine.any_of([arrival, timer]))
