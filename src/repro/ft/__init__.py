"""Fault-tolerant RMA: replication, checkpoints, and failover.

The paper's notified-access protocols assume a reliable fabric; this
package layers the recovery patterns of Besta & Hoefler's "Fault
Tolerance for RMA" on top of the existing core, using only the paper's
own primitives:

* :class:`~repro.ft.replicate.ReplicatedWindow` mirrors every
  ``put``/``put_notify`` to R replica ranks and transparently re-points
  waiters at a live replica when the fault injector kills a node
  (notification failover), failing fast with
  :class:`~repro.errors.FaultError` when replication is exhausted;
* :func:`~repro.ft.checkpoint.checkpoint` /
  :func:`~repro.ft.checkpoint.restore` snapshot window bytes plus
  outstanding :class:`~repro.core.nrequest.NotifyRequest` match state at
  epoch boundaries, with deterministic restore;
* :class:`~repro.ft.detector.FailureDetector` exposes the injector's
  node-death plan as the failure-detection oracle every recovery
  decision consults (deaths become visible ``detect_us`` after they
  happen, matching when the transport fails in-flight operations).

Everything here is put-class-only (mirrored notified puts + zero-byte
credit acks), the same discipline as ``repro.apps.services`` — so
replicated workloads stay byte-identical between the serial core and
the sharded conservative-parallel core under node-failure-only fault
plans (``FaultPlan.shardable``).
"""

from repro.ft.checkpoint import (
    Checkpoint,
    RequestState,
    checkpoint,
    pack,
    restore,
    unpack_windows,
)
from repro.ft.detector import FailureDetector
from repro.ft.replicate import ReplicatedPut, ReplicatedWindow

__all__ = [
    "Checkpoint",
    "FailureDetector",
    "ReplicatedPut",
    "ReplicatedWindow",
    "RequestState",
    "checkpoint",
    "pack",
    "restore",
    "unpack_windows",
]
