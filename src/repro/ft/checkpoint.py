"""Epoch checkpoints: window bytes + notification match state.

A checkpoint captures, per rank, (1) the raw bytes of a set of windows
and (2) the match state of outstanding
:class:`~repro.core.nrequest.NotifyRequest` objects — matched count,
activity, last status, and the match log.  Restoring writes both back,
so a rank resumes matching exactly where the epoch boundary left it:
the same waits complete on the same future notifications, deterministic
by construction (the snapshot is plain data, no RNG, no wall clock).

:func:`checkpoint` is a *collective*: it brackets the snapshot in
barriers so every rank captures the same epoch cut.  The caller must
quiesce its own traffic first (flush outstanding puts, match or drain
in-flight notifications) — a snapshot taken under unsynchronized remote
writes is a data race, and the synchronization sanitizer reports it as
such (the whole-window read carries a ``mode="r"`` annotation).

Checkpoints are charged like a local memcpy of the captured bytes
(``shm`` gap per byte plus a fixed base), so checkpoint frequency is a
measurable cost, not a free action.

For shipping a checkpoint to a buddy rank over the fabric, :func:`pack`
serializes the window bytes into one ``uint8`` payload suitable for a
single notified put, and :func:`unpack_windows` splits it back given
the (globally known) window sizes.  The kv service's ft mode uses this
to mirror each server's applied state to a buddy (see
``repro.apps.services.kv``).
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.rma.window import Window

#: fixed software cost of cutting one checkpoint, µs
T_CKPT_BASE = 0.5


@dataclass
class RequestState:
    """Snapshot of one NotifyRequest's match state."""

    matched: int
    expected: int
    active: bool
    starts: int
    completions: int
    last_status: object
    match_log: tuple


@dataclass
class Checkpoint:
    """One rank's epoch snapshot (windows by id + request states)."""

    epoch: int
    rank: int
    taken_at: float
    windows: dict[int, np.ndarray] = field(default_factory=dict)
    requests: list[tuple[object, RequestState]] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(int(a.nbytes) for a in self.windows.values())


def _snapshot_request(req) -> RequestState:
    return RequestState(matched=req.matched, expected=req.expected,
                        active=req.active, starts=req.starts,
                        completions=req.completions,
                        last_status=req.last_status,
                        match_log=tuple(req.match_log))


def _copy_cost(ctx, nbytes: int) -> float:
    return T_CKPT_BASE + nbytes * ctx.params.shm.G


def checkpoint(ctx, windows: Sequence[Window], requests: Sequence = (),
               epoch: int = 0, collective: bool = True
               ) -> Generator[object, object, Checkpoint]:
    """Cut an epoch checkpoint of ``windows`` and ``requests``.

    With ``collective=True`` (the default) the snapshot is bracketed in
    barriers: the entry barrier makes every rank's pre-epoch traffic
    visible before anyone snapshots, the exit barrier keeps post-epoch
    traffic out of everyone's snapshot.  Set ``collective=False`` for a
    local snapshot inside an already-synchronized protocol (e.g. the kv
    server's buddy shipping, which quiesces per-request instead).
    """
    if collective:
        yield from ctx.barrier()
    snap = Checkpoint(epoch=epoch, rank=ctx.rank, taken_at=ctx.now)
    total = 0
    for win in windows:
        data = win.local(np.uint8, 0, win.local_size, mode="r").copy()
        snap.windows[win.id] = data
        total += int(data.nbytes)
    for req in requests:
        snap.requests.append((req, _snapshot_request(req)))
    yield ctx.timeout(_copy_cost(ctx, total))
    snap.taken_at = ctx.now
    if collective:
        yield from ctx.barrier()
    return snap


def restore(ctx, snap: Checkpoint, windows: Sequence[Window],
            collective: bool = True) -> Generator[object, object, None]:
    """Deterministically restore a checkpoint cut by :func:`checkpoint`.

    ``windows`` must be the same windows (by id) the snapshot captured;
    request references travel inside the snapshot.  Restoring rewrites
    window bytes (a tracked ``rw`` access) and resets each request's
    match state — matched count, activity, last status, match log — to
    the epoch boundary.
    """
    if collective:
        yield from ctx.barrier()
    total = 0
    by_id = {w.id: w for w in windows}
    for win_id, data in snap.windows.items():
        win = by_id.get(win_id)
        if win is None:
            raise ReproError(
                f"restore: window id {win_id} not among the given windows")
        if win.local_size != data.nbytes:
            raise ReproError(
                f"restore: window {win_id} is {win.local_size} bytes, "
                f"snapshot has {data.nbytes}")
        win.local(np.uint8, 0, win.local_size, mode="rw")[:] = data
        total += int(data.nbytes)
    for req, st in snap.requests:
        req.matched = st.matched
        req.expected = st.expected
        req.active = st.active
        req.starts = st.starts
        req.completions = st.completions
        req.last_status = st.last_status
        req.match_log[:] = list(st.match_log)
    yield ctx.timeout(_copy_cost(ctx, total))
    if collective:
        yield from ctx.barrier()


def pack(snap: Checkpoint) -> np.ndarray:
    """Window bytes of a checkpoint as one contiguous uint8 payload.

    Windows concatenate in ascending window-id order; the layout is a
    pure function of the (globally known) window registry, so no header
    is needed on the wire.
    """
    parts = [snap.windows[i] for i in sorted(snap.windows)]
    if not parts:
        return np.empty(0, np.uint8)
    return np.concatenate(parts).astype(np.uint8, copy=False)


def unpack_windows(raw: np.ndarray, sizes: Sequence[int]) -> list[np.ndarray]:
    """Split a :func:`pack` payload back into per-window byte arrays."""
    raw = np.ascontiguousarray(raw).view(np.uint8).ravel()
    if int(raw.nbytes) != int(sum(sizes)):
        raise ReproError(
            f"packed checkpoint is {raw.nbytes} bytes, expected "
            f"{sum(sizes)}")
    out, pos = [], 0
    for s in sizes:
        out.append(raw[pos:pos + s].copy())
        pos += s
    return out
