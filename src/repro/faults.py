"""Deterministic fault injection for the simulated fabric.

The paper's single-transaction handoff argument (§III) assumes puts and
notifications arrive; this layer lets experiments ask what Notified Access
costs when they do not.  A :class:`FaultPlan` describes *what* can go wrong
— packet drop, duplication, delayed (hence reordered) delivery, transient
NIC stalls, and whole-node failure — and a :class:`FaultInjector` turns the
plan into per-operation :class:`TransferFate` decisions drawn from one
labelled :class:`~repro.sim.rng.RngStream`, so a fixed seed reproduces the
exact same fault schedule bit-for-bit.

Recovery is modelled the way a reliable transport layers it over a lossy
link:

* every dropped attempt costs one retransmission timeout, growing by an
  exponential ``backoff`` factor per retry (``rto``, ``rto*b``, ``rto*b²``,
  ...);
* a delivery may be *duplicated*; the receiving NIC deduplicates by
  transfer sequence number, so payload commit, accumulate updates, and
  notification posts stay exactly-once (idempotent completion path);
* after ``max_retries`` consecutive drops — or when either endpoint's node
  has failed — the operation is abandoned and its ``remote_done`` event
  fails with :class:`~repro.errors.FaultError` after ``detect_us``.

Only inter-node (uGNI) paths see drop/duplication/delay: the shared-memory
path is a CPU memcpy with no packets to lose.  Transient NIC stalls apply
to every engine (FMA, BTE, and the shm ring), and node failure applies to
both media.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import FaultError
from repro.sim.rng import RngStream
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven description of the faults a run should inject.

    All probabilities are per *decision*: ``drop_prob`` per delivery
    attempt, ``dup_prob``/``delay_prob`` per transfer, ``stall_prob`` per
    engine reservation.  ``node_failures`` maps a rank to the virtual time
    (µs) its node dies; operations touching a dead rank fail after
    ``detect_us``.  ``seed=None`` derives the fault stream from the fabric
    seed (see docs/calibration.md for the seeding rules).
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_max: float = 5.0          # µs, uniform extra delivery delay
    stall_prob: float = 0.0
    stall_us: float = 2.0           # µs, transient NIC stall duration
    node_failures: Mapping[int, float] = field(default_factory=dict)
    max_retries: int = 8
    rto: float = 10.0               # µs, base retransmission timeout
    backoff: float = 2.0            # exponential backoff factor
    dup_lag: float = 1.0            # µs, lag of the duplicate delivery
    detect_us: float = 50.0         # µs until an abandoned op is failed
    seed: int | None = None

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "delay_prob", "stall_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultError(f"{name}={p} outside [0, 1]")
        if self.max_retries < 0:
            raise FaultError(f"max_retries must be >= 0, got "
                             f"{self.max_retries}")
        if self.rto <= 0 or self.backoff < 1.0:
            raise FaultError("rto must be > 0 and backoff >= 1")
        for knob in ("delay_max", "stall_us", "dup_lag", "detect_us"):
            if getattr(self, knob) < 0:
                raise FaultError(f"{knob} must be >= 0")
        for rank, when in self.node_failures.items():
            if when < 0:
                raise FaultError(
                    f"node failure time for rank {rank} is negative")

    @property
    def active(self) -> bool:
        """True if the plan can inject anything at all."""
        return bool(self.drop_prob or self.dup_prob or self.delay_prob
                    or self.stall_prob or self.node_failures)

    @property
    def shardable(self) -> bool:
        """True if the plan's schedule is independent of operation order.

        Probabilistic fault classes draw from one stream in operation
        *issue* order, which differs between the serial core and the
        sharded core's per-worker issue streams — so they are serial-only.
        A plan that injects nothing but node failures makes no draws at
        all (the node-down check is a pure table lookup), so its fault
        schedule is a function of (rank, time) alone and sharded runs
        stay byte-identical with serial ones.
        """
        return not (self.drop_prob or self.dup_prob or self.delay_prob
                    or self.stall_prob)


@dataclass
class TransferFate:
    """The injector's verdict for one transfer."""

    retries: int = 0          # retransmissions before success
    retry_delay: float = 0.0  # summed backoff delay of those retries, µs
    jitter: float = 0.0       # extra delivery delay (reordering), µs
    duplicate: bool = False   # delivery arrives twice
    dup_lag: float = 0.0      # lag of the duplicate, µs
    lost: bool = False        # abandoned (retry exhaustion / dead node)
    fail_after: float = 0.0   # when to fail the op, µs from issue

    @property
    def extra_delay(self) -> float:
        """Total successful-path delay the fate adds to the transfer."""
        return self.retry_delay + self.jitter


#: fates never touched by the injector (fault-free fast path)
CLEAN_FATE = TransferFate()


class FaultInjector:
    """Draws per-operation fates from a plan; keeps recovery counters.

    One injector serves a whole fabric.  Decisions are drawn in operation
    issue order from a single stream seeded by ``plan.seed`` (or, when that
    is ``None``, derived from the fabric root seed under the ``"faults"``
    label) — the schedule is a pure function of (plan, seed, program).
    """

    def __init__(self, plan: FaultPlan, root_seed: int,
                 tracer: Tracer | None = None):
        self.plan = plan
        seed = plan.seed if plan.seed is not None else root_seed
        self.rng = RngStream(seed, "faults")
        self.tracer = tracer or Tracer(enabled=False)
        self.drops = 0            # dropped delivery attempts
        self.retries = 0          # retransmissions performed
        self.duplicates = 0       # duplicated deliveries injected
        self.dup_suppressed = 0   # duplicates filtered by the dedup path
        self.delays = 0           # delayed (reorderable) deliveries
        self.stalls = 0           # transient NIC stalls
        self.lost_ops = 0         # ops abandoned after retry exhaustion
        self.node_drops = 0       # ops refused because a node is down

    # ------------------------------------------------------------------
    def rank_down(self, rank: int, now: float) -> bool:
        """Has ``rank``'s node failed at virtual time ``now``?"""
        when = self.plan.node_failures.get(rank)
        return when is not None and now >= when

    def death_time(self, rank: int) -> float | None:
        """When ``rank``'s node dies (µs), or None if it never does."""
        return self.plan.node_failures.get(rank)

    def detection_time(self, rank: int) -> float | None:
        """When ``rank``'s failure becomes *visible* to waiters (µs).

        Failure detection is not instantaneous: a death at ``t`` is only
        reported at ``t + detect_us`` — the same latency after which an
        in-flight operation against the dead node is failed.
        """
        when = self.plan.node_failures.get(rank)
        return None if when is None else when + self.plan.detect_us

    def detected(self, rank: int, now: float) -> bool:
        """Has ``rank``'s failure been detected by virtual time ``now``?"""
        at = self.detection_time(rank)
        return at is not None and now >= at

    def next_detection(self, now: float) -> float | None:
        """The earliest future failure-detection instant after ``now``.

        Blocking wait primitives race their wakeup event against a timer
        to this instant so a wait on a dying peer fails promptly at
        ``detect_us`` instead of stalling to deadlock detection.
        """
        times = [when + self.plan.detect_us
                 for when in self.plan.node_failures.values()
                 if when + self.plan.detect_us > now]
        return min(times, default=None)

    def transfer_fate(self, origin: int, target: int, nbytes: int,
                      medium: str, now: float) -> TransferFate:
        """Decide the fate of one transfer issued at ``now``.

        Draws happen in a fixed order (attempts, delay, duplication) and
        only for knobs that are enabled, so disabling one fault class does
        not perturb another's schedule.
        """
        plan = self.plan
        if self.rank_down(origin, now) or self.rank_down(target, now):
            self.node_drops += 1
            self.tracer.emit(now, "fault", origin, target, nbytes,
                             fault="node-down", medium=medium)
            return TransferFate(lost=True, fail_after=plan.detect_us)
        if medium == "shm":
            # Intra-node data moves by memcpy: nothing on the wire to
            # drop or duplicate (stalls are charged by the transport).
            return CLEAN_FATE
        fate = TransferFate()
        if plan.drop_prob > 0.0:
            for attempt in range(plan.max_retries + 1):
                if self.rng.random() >= plan.drop_prob:
                    break
                self.drops += 1
                fate.retries += 1
                fate.retry_delay += plan.rto * plan.backoff ** attempt
                self.tracer.emit(now, "fault", origin, target, nbytes,
                                 fault="drop", attempt=attempt,
                                 medium=medium)
            else:
                self.lost_ops += 1
                # The max_retries retransmissions were still performed
                # (and charged) before the op was abandoned, so they
                # count toward the retries ledger like successful ones.
                self.retries += plan.max_retries
                self.tracer.emit(now, "fault", origin, target, nbytes,
                                 fault="lost", medium=medium)
                return TransferFate(retries=plan.max_retries,
                                    lost=True,
                                    fail_after=plan.detect_us)
            self.retries += fate.retries
            if fate.retries:
                self.tracer.emit(now, "fault", origin, target, nbytes,
                                 fault="retry-ok", retries=fate.retries,
                                 medium=medium)
        if plan.delay_prob > 0.0 and self.rng.random() < plan.delay_prob:
            fate.jitter = self.rng.uniform(0.0, plan.delay_max)
            self.delays += 1
            self.tracer.emit(now, "fault", origin, target, nbytes,
                             fault="delay", extra=fate.jitter,
                             medium=medium)
        if plan.dup_prob > 0.0 and self.rng.random() < plan.dup_prob:
            fate.duplicate = True
            fate.dup_lag = plan.dup_lag
            self.duplicates += 1
            self.tracer.emit(now, "fault", origin, target, nbytes,
                             fault="dup", medium=medium)
        return fate

    def nic_stall(self, engine_kind: str, now: float) -> float:
        """Extra delay from a transient stall of one NIC engine."""
        if self.plan.stall_prob <= 0.0:
            return 0.0
        if self.rng.random() >= self.plan.stall_prob:
            return 0.0
        self.stalls += 1
        self.tracer.emit(now, "fault", -1, -1, 0, fault="stall",
                         engine=engine_kind, extra=self.plan.stall_us)
        return self.plan.stall_us

    def suppressed(self, origin: int, target: int, kind: str,
                   now: float) -> None:
        """Record a duplicate delivery filtered by the dedup path."""
        self.dup_suppressed += 1
        self.tracer.emit(now, "fault", origin, target, 0,
                         fault="dup-suppressed", op=kind)

    def lost_error(self, kind: str, origin: int, target: int,
                   now: float | None = None) -> FaultError:
        """The exception an abandoned operation fails with.

        Names the dead endpoint (and its death time) when the loss is a
        node failure, so a waiter's traceback identifies *which* rank to
        fail over from; plain retry exhaustion keeps the generic message.
        """
        dead = [r for r in (origin, target)
                if (self.rank_down(r, now) if now is not None
                    else r in self.plan.node_failures)]
        if dead:
            causes = ", ".join(
                f"rank {r} down since t={self.plan.node_failures[r]:g}us"
                for r in dead)
            return FaultError(
                f"{kind} {origin}->{target} abandoned: {causes} "
                f"(detected after {self.plan.detect_us:g}us)")
        return FaultError(
            f"{kind} {origin}->{target} abandoned: "
            f"retries exhausted or node down")

    def dead_wait_error(self, kind: str, waiter: int,
                        source: int) -> FaultError:
        """The exception a wait against a detected-dead peer fails with."""
        when = self.plan.node_failures.get(source)
        since = f" since t={when:g}us" if when is not None else ""
        return FaultError(
            f"{kind} wait on rank {waiter}: peer rank {source} is "
            f"down{since} (detected after {self.plan.detect_us:g}us)")

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Recovery counters (surfaced through ``Cluster.stats()``)."""
        return {
            "drops": self.drops,
            "retries": self.retries,
            "duplicates": self.duplicates,
            "dup_suppressed": self.dup_suppressed,
            "delays": self.delays,
            "stalls": self.stalls,
            "lost_ops": self.lost_ops,
            "node_drops": self.node_drops,
        }
