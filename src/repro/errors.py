"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel detected an illegal state.

    Examples: running a finished engine, deadlock (no runnable events while
    processes are still blocked), or interrupting a dead process.
    """


class DeadlockError(SimulationError):
    """All processes are blocked and the event queue is empty."""

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        names = ", ".join(blocked) if blocked else "<unknown>"
        super().__init__(f"simulation deadlock; blocked processes: {names}")


class AllocationError(ReproError):
    """An address-space or window allocation could not be satisfied."""


class RmaEpochError(ReproError):
    """An RMA call was made outside a legal synchronization epoch.

    MPI-3 requires e.g. that ``put`` only happens inside an access epoch
    (after ``fence``, ``start``, or ``lock``); violations raise this error
    instead of silently corrupting memory, mirroring a debug MPI build.
    """


class MatchingError(ReproError):
    """Illegal use of the notification/message matching engine.

    Examples: starting an already-started persistent request, waiting on an
    inactive request, or freeing an active one.
    """


class NetworkError(ReproError):
    """Transport-level failure (e.g. undeliverable packet, bad route)."""


class FaultError(NetworkError):
    """An injected fault the transport could not recover from.

    Raised by the fault-injection layer: retry exhaustion on a lossy link,
    an operation addressed to a failed node, or an invalid
    :class:`~repro.faults.FaultPlan`.  Waiters on the affected operation's
    events get this thrown in, so an unsurvivable fault crashes the rank
    program loudly instead of hanging it.
    """


class BufferError_(ReproError):
    """A user buffer does not fit the described transfer."""


class RaceError(ReproError):
    """The synchronization sanitizer found two conflicting accesses.

    Two accesses conflict when they touch overlapping bytes of the same
    address space, at least one writes, and no happens-before path (a chain
    of notification matches, counter waits, flushes, fences, or message
    matches) orders one before the other.  ``prev`` and ``cur`` are
    :class:`repro.sanitizer.shadow.Access` records; the message names both
    source sites so the missing synchronization edge can be added.
    """

    def __init__(self, prev=None, cur=None, msg: str = ""):
        super().__init__(msg)
        self.prev = prev
        self.cur = cur

    def sites(self) -> tuple[str, ...]:
        """The two conflicting source sites, sorted.

        This is the comparable key the differential tests use to line a
        dynamic race up against the static checker's findings (whose
        messages name the same ``path:line`` pair).
        """
        return tuple(sorted(
            site for site in (getattr(self.prev, "site", None),
                              getattr(self.cur, "site", None))
            if site))
