"""Cluster topology: nodes, cores, and rank placement.

Ranks are placed block-wise onto nodes (rank ``r`` lives on node
``r // ranks_per_node``), matching the default placement of ``aprun`` on the
Cray system the paper used.  Intra-node pairs use the shared-memory
transport; inter-node pairs use the uGNI-like transport.

Optionally, nodes are arranged into *dragonfly groups*
(``nodes_per_group``): the Aries network the paper ran on routes
inter-group traffic through global links with higher latency, which the
fabric prices via ``TransportParams.inter_group_L_extra``.
"""

from __future__ import annotations

from repro.errors import NetworkError


class Machine:
    """The physical layout of the simulated cluster."""

    def __init__(self, nranks: int, ranks_per_node: int = 1,
                 nodes_per_group: int | None = None):
        if nranks < 1:
            raise NetworkError(f"need at least one rank, got {nranks}")
        if ranks_per_node < 1:
            raise NetworkError(
                f"ranks_per_node must be >=1, got {ranks_per_node}")
        if nodes_per_group is not None and nodes_per_group < 1:
            raise NetworkError(
                f"nodes_per_group must be >=1, got {nodes_per_group}")
        self.nranks = nranks
        self.ranks_per_node = ranks_per_node
        self.nnodes = (nranks + ranks_per_node - 1) // ranks_per_node
        self.nodes_per_group = nodes_per_group

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise NetworkError(f"rank {rank} out of range [0, {self.nranks})")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def group_of(self, rank: int) -> int:
        """Dragonfly group of ``rank`` (0 if grouping is disabled)."""
        if self.nodes_per_group is None:
            return 0
        return self.node_of(rank) // self.nodes_per_group

    def same_group(self, a: int, b: int) -> bool:
        return self.group_of(a) == self.group_of(b)

    def ranks_on_node(self, node: int) -> range:
        lo = node * self.ranks_per_node
        hi = min(lo + self.ranks_per_node, self.nranks)
        return range(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Machine(nranks={self.nranks}, "
                f"ranks_per_node={self.ranks_per_node})")
