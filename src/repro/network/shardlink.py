"""Inter-shard routing and the serializable cross-shard packet type.

The sharded DES core (:mod:`repro.sim.shard`) partitions ranks across
worker processes, each owning a shard-local engine + fabric slice.  This
module holds the pieces both sides of that boundary agree on:

* :class:`ShardRouting` — the node-aligned rank→shard partition and the
  conservative *lookahead* derived from the LogGP transport parameters;
* :class:`ShardPacket` — the one serializable message type that crosses
  shard boundaries (picklable: plain ints/floats/strs/dicts plus numpy
  byte payloads);
* :class:`RankTable` — a sparse stand-in for the per-rank lists (spaces,
  NICs, ranks, endpoints) that keeps ``len()`` equal to the global rank
  count while holding only the shard's local entries, and raises a clear
  error on any cross-shard direct object access.

Shards are split on *node* boundaries, so the shared-memory transport
never crosses a shard: every cross-shard transfer rides uGNI (FMA/BTE),
whose minimum wire latency is the safe lookahead window.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import NetworkError
from repro.network.loggp import TransportParams
from repro.network.topology import Machine


class RankTable:
    """Sparse per-rank table: local entries only, global ``len()``.

    Indexing a rank outside the shard raises :class:`NetworkError` naming
    the table — the diagnostic for simulator code that reaches across the
    shard boundary through direct object access (e.g. the counter engine's
    ``ctx.cluster.ranks[source]``) instead of the fabric.
    """

    __slots__ = ("_items", "_nranks", "_kind")

    def __init__(self, items: dict[int, Any], nranks: int, kind: str):
        self._items = items
        self._nranks = nranks
        self._kind = kind

    def __len__(self) -> int:
        return self._nranks

    def __getitem__(self, rank: int) -> Any:
        try:
            return self._items[rank]
        except (KeyError, TypeError):
            raise NetworkError(
                f"{self._kind}[{rank!r}] is not in this shard: direct "
                f"cross-shard object access is not supported under "
                f"sharded execution (local ranks: "
                f"{sorted(self._items)[:8]}...)") from None

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items.values())

    def local_ranks(self) -> list[int]:
        return sorted(self._items)


class ShardRouting:
    """Node-aligned rank→shard partition plus the lookahead window.

    Nodes are split into ``shards`` contiguous blocks (block ``s`` holds
    nodes ``[s*nnodes//shards, (s+1)*nnodes//shards)``), so intra-node
    (shared-memory) traffic never crosses a shard boundary and every
    cross-shard transfer pays at least the minimum uGNI wire latency —
    which is exactly the conservative synchronization window.
    """

    def __init__(self, machine: Machine, shards: int):
        if shards < 1:
            raise NetworkError(f"need at least one shard, got {shards}")
        if shards > machine.nnodes:
            raise NetworkError(
                f"{shards} shards for {machine.nnodes} nodes: shards are "
                f"node-aligned, use at most one shard per node")
        self.machine = machine
        self.shards = shards
        nnodes = machine.nnodes
        #: node -> shard (contiguous blocks, balanced within one node)
        self._node_shard = [min(n * shards // nnodes, shards - 1)
                            for n in range(nnodes)]

    def shard_of(self, rank: int) -> int:
        return self._node_shard[self.machine.node_of(rank)]

    def ranks_of(self, shard: int) -> list[int]:
        return [r for r in range(self.machine.nranks)
                if self._node_shard[self.machine.node_of(r)] == shard]

    def lookahead(self, params: TransportParams) -> float:
        """The conservative window width W (µs).

        Any cross-shard effect is carried by a uGNI transfer whose effect
        time is at least its issue time plus the engine's wire latency
        ``L``; since shards only advance ``W = min(L_fma, L_bte)`` past
        the global minimum next-event time per window, every packet
        generated inside a window takes effect at or after the boundary
        where it is delivered (see docs/architecture.md §11).
        """
        return min(params.fma.L, params.bte.L)


@dataclass(slots=True)
class ShardPacket:
    """One cross-shard message (request, response, or control).

    ``ptype`` selects the handler at the receiving shard:

    ======== ============================================================
    put      RDMA write: reserve the rx link, commit payload, notify, ack
    get      read request: plan the response at the target NIC engine
    amo      atomic request: execute at ``t_exec``, return the old value
    sys      software protocol message (MP eager/rendezvous, PSCW ctrl)
    ack      completion response: fire the origin's pending events
    get-resp data response: reserve the origin rx link, deliver, complete
    amo-resp fetched-value response
    win-reg  window-registration broadcast (collective win_allocate)
    ======== ============================================================

    ``sort_time``/``origin``/``op_id`` define the deterministic boundary
    processing order; ``op_id`` keys the origin fabric's pending-op table
    for responses.  Only picklable fields, so packets cross process
    boundaries (numpy payloads are views-free copies).
    """

    ptype: str
    origin: int
    target: int
    op_id: int
    sort_time: float
    #: explicit destination shard (win-reg broadcasts); None = shard of
    #: ``target``
    shard: int | None = None
    nbytes: int = 0
    #: origin-computed ideal commit time (pre rx-reservation)
    t_commit: float = 0.0
    #: response-engine floor (get) or execute time (amo)
    t_exec: float = 0.0
    #: per-byte gap and wire latency of the engine that priced the leg
    G: float = 0.0
    L: float = 0.0
    hop: float = 0.0
    target_addr: int = 0
    local_addr: int = 0
    immediate: int | None = None
    win_id: int | None = None
    accumulate: str | None = None
    acc_dtype: str | None = None
    amo_op: str | None = None
    sys_ptype: str | None = None
    operand: int = 0
    compare: int | None = None
    value: Any = None
    scatter: list[tuple[int, int]] | None = None
    gather: list[tuple[int, int]] | None = None
    data: np.ndarray | None = None
    payload: dict = field(default_factory=dict)

    def __reduce__(self):
        # positional-tuple pickling: boundary batches are the hot pipe
        # path, and the default dataclass __dict__ form ships every
        # field name alongside every value
        return (ShardPacket,
                tuple(getattr(self, f) for f in _PACKET_FIELDS))


_PACKET_FIELDS = tuple(f.name for f in dataclasses.fields(ShardPacket))


def partition_summary(routing: ShardRouting) -> str:
    """Human-readable shard layout (for logs and error messages)."""
    sizes = [len(routing.ranks_of(s)) for s in range(routing.shards)]
    return (f"{routing.shards} shards over {routing.machine.nnodes} nodes "
            f"({routing.machine.nranks} ranks; shard sizes {sizes})")
