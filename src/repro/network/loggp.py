"""LogGP cost parameters.

The LogGP model (L, o, g, G, P) prices a message of ``s`` bytes at
``o_send + L + (s-1)*G + o_recv`` on the critical path, with ``g`` bounding
the per-message injection rate.  The paper reports (Table I):

===============  ========  =========
transport        L (µs)    G (ns/B)
===============  ========  =========
shared memory    0.25      0.080
uGNI FMA         1.02      0.105
uGNI BTE         1.32      0.101
===============  ========  =========

plus software overheads: ``o_s = t_na = 0.29 µs`` (issuing a notified
access), ``o_r = 0.07 µs`` (receive-side matching with a single queued
request), ``t_init = 0.07``, ``t_free = 0.04``, ``t_start = 0.008 µs``.
These are the library defaults, so the simulator's absolute microbenchmark
numbers land in the paper's regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: one nanosecond in engine units (microseconds)
NS = 1e-3
#: one microsecond in engine units
US = 1.0


@dataclass(frozen=True)
class LogGPParams:
    """Parameters of a single transport path."""

    L: float            # wire latency, µs
    G: float            # per-byte gap, µs/byte
    g: float = 0.04     # per-message gap at the injecting engine, µs
    o_post: float = 0.0  # CPU time to post a descriptor to this engine, µs

    def transfer_time(self, nbytes: int) -> float:
        """Pure wire time of an ``nbytes`` transfer: L + (s-1)G (s>=1)."""
        return self.L + max(nbytes - 1, 0) * self.G

    def serialization(self, nbytes: int) -> float:
        """Engine occupancy per message: g + s*G."""
        return self.g + nbytes * self.G


@dataclass(frozen=True)
class TransportParams:
    """All tunables of the simulated fabric.

    The thresholds are the design knobs DESIGN.md calls out for ablation:
    ``fma_max`` (FMA↔BTE crossover), ``eager_max`` (MP eager↔rendezvous),
    ``inline_max`` (shared-memory inline-transfer cutoff).
    """

    fma: LogGPParams = field(
        default_factory=lambda: LogGPParams(L=1.02, G=0.105 * NS, g=0.04,
                                            o_post=0.0))
    bte: LogGPParams = field(
        default_factory=lambda: LogGPParams(L=1.32, G=0.101 * NS, g=0.06,
                                            o_post=0.30))
    shm: LogGPParams = field(
        default_factory=lambda: LogGPParams(L=0.25, G=0.080 * NS, g=0.02,
                                            o_post=0.0))

    #: CPU overhead of issuing one RMA/NA operation (t_na in the paper)
    o_send: float = 0.29
    #: receive-side matching overhead with one queued request (o_r)
    o_recv: float = 0.07
    #: memcpy cost per byte at the CPU (eager copy, shm data path), µs/B
    copy_G: float = 0.10 * NS
    #: fixed memcpy startup, µs
    copy_o: float = 0.05
    #: MPI send/recv software overhead beyond the bare injection (tag
    #: matching, request bookkeeping), charged at the sender per send and at
    #: the receiver per match — the generic message-passing path the paper's
    #: eager-copy argument targets
    mpi_overhead: float = 0.30
    #: time for the async-progress agent to react to a rendezvous control
    #: message (Cray-like helper thread), µs
    async_progress_delay: float = 0.20

    #: largest transfer the FMA engine handles; larger go to BTE
    fma_max: int = 4096
    #: largest MP message sent eagerly; larger use rendezvous
    eager_max: int = 8192
    #: largest shm put carried inline inside the notification line
    inline_max: int = 48
    #: capacity of the per-process shm notification ring (entries)
    shm_ring_entries: int = 4096

    #: notification request structure size (bytes) — §IV-B of the paper
    request_bytes: int = 32

    #: API call costs measured in §V-A of the paper (µs)
    t_init: float = 0.07
    t_free: float = 0.04
    t_start: float = 0.008

    #: extra one-way latency for traffic crossing dragonfly groups, µs
    #: (Aries routes inter-group packets over global links)
    inter_group_L_extra: float = 0.0

    #: network reliability mode (§VIII): if False, a notified get needs an
    #: extra round trip before the target-side notification may fire
    reliable: bool = True
    #: probability that an inter-node packet needs one retransmission
    drop_rate: float = 0.0
    #: retransmission timeout, µs
    rto: float = 10.0

    def engine_for(self, nbytes: int, same_node: bool) -> LogGPParams:
        if same_node:
            return self.shm
        return self.fma if nbytes <= self.fma_max else self.bte

    def with_(self, **kw) -> "TransportParams":
        """Return a copy with fields replaced (ablation helper)."""
        return replace(self, **kw)


def default_params() -> TransportParams:
    """The paper-calibrated default fabric parameters."""
    return TransportParams()


def noc_params() -> TransportParams:
    """Parameters for a future large-scale **on-chip** network (§III-A).

    The paper argues Notified Access is also a viable interface for on-chip
    networks, where transfer pipelining is mandatory and synchronization has
    a higher *relative* cost: latencies are nanoseconds, so software
    overheads dominate even more than across a datacenter.  These values
    model a mesh NoC: ~50 ns hop-to-hop latency, ~50 GB/s per link, and
    software costs scaled down (on-chip runtimes are leaner) but much less
    than the 20x latency reduction.
    """
    return TransportParams(
        fma=LogGPParams(L=0.05, G=0.02 * NS, g=0.002, o_post=0.0),
        bte=LogGPParams(L=0.06, G=0.018 * NS, g=0.003, o_post=0.02),
        shm=LogGPParams(L=0.01, G=0.01 * NS, g=0.001, o_post=0.0),
        o_send=0.03, o_recv=0.01, copy_G=0.02 * NS, copy_o=0.005,
        mpi_overhead=0.03, async_progress_delay=0.02,
        t_init=0.01, t_free=0.005, t_start=0.001,
    )
