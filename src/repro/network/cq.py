"""Completion queues and 32-bit immediate-value encoding.

uGNI lets an access carry a 4-byte immediate that is returned in a completion
queue at the destination.  Like foMPI-NA we pack the source rank in the high
16 bits and the tag in the low 16 bits — this is where the paper's limit on
significant tag bits comes from, and the library enforces it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import NetworkError
from repro.sim.engine import Engine
from repro.sim.resources import Signal

#: Maximum encodable rank / tag (16 bits each inside the 32-bit immediate).
MAX_IMM_RANK = 0xFFFF
MAX_IMM_TAG = 0xFFFF


def encode_immediate(source: int, tag: int) -> int:
    """Pack (source, tag) into a 32-bit immediate, like foMPI-NA on uGNI."""
    if not 0 <= source <= MAX_IMM_RANK:
        raise NetworkError(f"source rank {source} exceeds 16-bit immediate")
    if not 0 <= tag <= MAX_IMM_TAG:
        raise NetworkError(
            f"tag {tag} exceeds the {MAX_IMM_TAG:#x} significant tag bits "
            "supported by the 32-bit immediate")
    return (source << 16) | tag


def decode_immediate(imm: int) -> tuple[int, int]:
    """Unpack a 32-bit immediate into (source, tag)."""
    return (imm >> 16) & 0xFFFF, imm & 0xFFFF


@dataclass(slots=True)
class CqEntry:
    """One completion-queue entry.

    ``kind`` is ``"put"``, ``"get"``, ``"amo"``, or ``"ctrl"``.  For
    destination-CQ entries, ``immediate`` carries the packed (source, tag)
    and ``win_id`` names the exposed window the access targeted.  ``inline``
    carries the payload for shared-memory inline transfers.
    """

    kind: str
    source: int
    target: int
    nbytes: int
    time: float
    immediate: int | None = None
    win_id: int | None = None
    target_addr: int | None = None
    local_id: int | None = None   # matches a pending handle at the origin
    inline: Any | None = None     # numpy payload for shm inline transfer
    seq: int | None = None        # transfer sequence number (fault dedup)
    san: Any | None = None        # originating op's sanitizer clock
    meta: dict = field(default_factory=dict)


class CompletionQueue:
    """A FIFO of :class:`CqEntry` with an arrival signal.

    Bounded if ``capacity`` is given — posting to a full bounded CQ raises,
    modelling the overrun failure mode of real hardware CQs (the paper's
    shared-memory ring is bounded; §IV-C).
    """

    def __init__(self, engine: Engine, name: str = "",
                 capacity: int | None = None):
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._entries: deque[CqEntry] = deque()
        self.arrival = Signal(engine, name=f"cq:{name}")
        self.posted = 0
        self.polled = 0

    def __len__(self) -> int:
        return len(self._entries)

    def post(self, entry: CqEntry) -> None:
        if self.capacity is not None and len(self._entries) >= self.capacity:
            raise NetworkError(
                f"completion queue {self.name!r} overrun "
                f"(capacity {self.capacity})")
        self._entries.append(entry)
        self.posted += 1
        self.arrival.fire(entry)

    def poll(self) -> CqEntry | None:
        """Pop the oldest entry, or None if empty (non-blocking)."""
        if self._entries:
            self.polled += 1
            return self._entries.popleft()
        return None

    def wait_arrival(self):
        """Event that fires at the next post (yield it from a process)."""
        return self.arrival.wait()

    def drain(self) -> list[CqEntry]:
        out = list(self._entries)
        self.polled += len(out)
        self._entries.clear()
        return out
