"""The fabric: per-rank NICs and the RDMA operations they execute.

Every remote operation moves real bytes between per-rank
:class:`~repro.memory.address.AddressSpace` objects, priced by the transport
engines.  An operation returns an :class:`OpHandle` whose events fire at

* ``local_done`` — the origin buffer is reusable (put) or the data has
  arrived (get),
* ``remote_done`` — the remote commit has been acknowledged at the origin
  (what ``MPI_Win_flush`` waits for; carries the fetched value for AMOs).

Notified operations additionally post a :class:`~repro.network.cq.CqEntry`
carrying the 32-bit immediate to the **destination completion queue** of the
process whose memory was accessed — for a put that is the target, and for a
get it is *also* the target (the owner of the data that was read), per the
paper's notified-read semantics (§VIII).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetworkError
from repro.faults import FaultInjector, FaultPlan, TransferFate
from repro.network.cq import CompletionQueue, CqEntry
from repro.network.loggp import TransportParams
from repro.network.topology import Machine
from repro.network.transports.base import TransferPlan
from repro.network.transports.shm import ShmTransport
from repro.network.transports.ugni import BteEngine, FmaEngine
from repro.sanitizer.shadow import ATOMIC, READ, WRITE
from repro.sim.engine import Engine, Event
from repro.sim.resources import Signal, Store
from repro.sim.rng import RngStream
from repro.sim.trace import Tracer

#: header sizes charged for control-only wire messages (bytes)
GET_REQUEST_BYTES = 16
AMO_REQUEST_BYTES = 24
AMO_RESPONSE_BYTES = 16


@dataclass(slots=True)
class OpHandle:
    """Events and cost of one issued RDMA operation."""

    kind: str
    cpu_busy: float
    local_done: Event
    remote_done: Event
    nbytes: int = 0
    target: int = -1
    commit_at: float = 0.0    # absolute time the data commits remotely
    failed: bool = False      # abandoned by the fault layer (never commits)
    #: sanitizer clocks (None unless sanitizing): the remote leg (commit /
    #: serve) and, for gets, the local delivery leg
    san_remote: object = None
    san_local: object = None


@dataclass(slots=True)
class SysPacket:
    """A software-handled protocol message (MP eager/rendezvous, RMA ctrl)."""

    ptype: str
    source: int
    target: int
    nbytes: int
    payload: dict = field(default_factory=dict)
    data: np.ndarray | None = None
    time: float = 0.0
    #: sender's released vector clock (sanitizer runs only)
    san_clock: dict | None = None


class Nic:
    """One rank's network interface."""

    def __init__(self, fabric: "Fabric", rank: int):
        self.fabric = fabric
        self.rank = rank
        params = fabric.params
        eng = fabric.engine
        self.fma = FmaEngine(eng, params.fma, name=str(rank))
        self.bte = BteEngine(eng, params.bte, name=str(rank))
        self.shm = ShmTransport(eng, params, name=str(rank))
        #: notifications for Notified Access land here
        self.dest_cq = CompletionQueue(eng, name=f"dest:{rank}")
        #: shared-memory notification ring (bounded, §IV-C)
        self.shm_ring = CompletionQueue(eng, name=f"ring:{rank}",
                                        capacity=params.shm_ring_entries)
        #: software protocol messages (MP, PSCW control)
        self.sys_inbox: Store = Store(eng, name=f"sys:{rank}")
        self.sys_arrival = Signal(eng, name=f"sysarr:{rank}")
        self.ops_issued = 0
        #: receive-side link occupancy horizon (incast serialization)
        self.rx_next_free = 0.0
        self.rx_bytes = 0
        #: transfer sequence numbers already delivered (fault dedup) and
        #: how many duplicate deliveries the NIC filtered out
        self._delivered_seqs: set[int] = set()
        self.dup_suppressed = 0
        if fabric.faults is not None:
            self.fma.faults = fabric.faults
            self.bte.faults = fabric.faults
            self.shm.faults = fabric.faults

    def first_delivery(self, seq: int | None) -> bool:
        """True exactly once per transfer sequence number.

        The completion path calls this before committing payload bytes or
        posting a notification: a retransmitted-then-also-delivered (or
        outright duplicated) transfer must have its side effects applied
        exactly once — accumulates and notification counters are not
        idempotent.
        """
        if seq is None:
            return True
        if seq in self._delivered_seqs:
            self.dup_suppressed += 1
            return False
        self._delivered_seqs.add(seq)
        return True

    def poll_notification(self) -> CqEntry | None:
        """Pop the oldest notification across uGNI CQ and shm ring.

        The foMPI-NA target checks the uGNI destination CQ and the XPMEM
        ring; we merge them oldest-first for deterministic matching order.
        """
        a, b = self.dest_cq, self.shm_ring
        if len(a) and len(b):
            # Compare head timestamps without popping.
            ta = a._entries[0].time
            tb = b._entries[0].time
            return a.poll() if ta <= tb else b.poll()
        if len(a):
            return a.poll()
        if len(b):
            return b.poll()
        return None

    def notification_pending(self) -> bool:
        return len(self.dest_cq) > 0 or len(self.shm_ring) > 0

    def notification_arrival(self) -> Event:
        """Event firing on the next notification post to either queue."""
        return self.fabric.engine.any_of(
            [self.dest_cq.wait_arrival(), self.shm_ring.wait_arrival()])


class Fabric:
    """All NICs plus the machinery to execute operations between them."""

    def __init__(self, engine: Engine, machine: Machine,
                 spaces,
                 params: TransportParams | None = None,
                 tracer: Tracer | None = None, seed: int = 42,
                 fault_plan: FaultPlan | None = None,
                 sanitizer=None,
                 local_ranks: list[int] | None = None):
        if len(spaces) != machine.nranks:
            raise NetworkError("one address space per rank required")
        self.engine = engine
        self._at = engine.call_at
        self._at_batch = engine.call_at_batch
        #: happens-before tracker (None = sanitizer off, zero overhead)
        self.san = sanitizer
        self.machine = machine
        self.spaces = spaces
        self.params = params or TransportParams()
        self.tracer = tracer or Tracer(enabled=False)
        self.rng = RngStream(seed, "fabric")
        #: fault injection (None on a fault-free fabric — the fast path)
        self.faults: FaultInjector | None = None
        if fault_plan is not None and fault_plan.active:
            self.faults = FaultInjector(fault_plan, seed,
                                        tracer=self.tracer)
        self._op_seq = itertools.count(1)
        if local_ranks is None:
            # Serial fabric: a dense NIC list, exactly as before.
            self.nics = [Nic(self, r) for r in range(machine.nranks)]
        else:
            # Shard-local fabric slice: NIC state exists only for the
            # shard's own ranks; any other index is a protocol bug and
            # fails loudly instead of silently simulating remote state.
            from repro.network.shardlink import RankTable
            self.nics = RankTable({r: Nic(self, r) for r in local_ranks},
                                  machine.nranks, "nic")
        #: optional hook invoked at sys-packet arrival (async progress)
        self.on_sys_arrival: Callable[[int, SysPacket], None] | None = None

    # ------------------------------------------------------------------
    def nic(self, rank: int) -> Nic:
        return self.nics[rank]

    # _at is bound directly to Engine.call_at in __init__ ("run fn at
    # absolute time t"): the alias keeps ~100k calls/run frame-free.

    def _hop_extra(self, origin: int, target: int) -> float:
        """Extra latency for inter-group (dragonfly global-link) paths."""
        if (self.params.inter_group_L_extra
                and not self.machine.same_group(origin, target)):
            return self.params.inter_group_L_extra
        return 0.0

    def _rx_reserve(self, target: int, ideal_commit: float, nbytes: int,
                    G: float) -> float:
        """Serialize arrivals at the target NIC's ingest link.

        The byte stream occupies the receive link for ``nbytes * G`` ending
        at the commit: a lone flow commits exactly at ``ideal_commit``
        (LogGP charges G once along the path), while concurrent flows into
        one NIC queue behind each other — the incast behaviour a real
        Aries NIC exhibits.
        """
        nic = self.nics[target]
        occupancy = nbytes * G
        start = max(ideal_commit - occupancy, nic.rx_next_free)
        end = start + occupancy
        nic.rx_next_free = end
        nic.rx_bytes += nbytes
        return end

    def _drop_penalty(self) -> float:
        """Extra delay from retransmissions on a lossy network."""
        p = self.params.drop_rate
        if p <= 0.0:
            return 0.0
        extra = 0.0
        tries = 0
        while tries < 5 and self.rng.random() < p:
            extra += self.params.rto
            tries += 1
        return extra

    def _fate(self, origin: int, target: int, nbytes: int,
              same_node: bool) -> TransferFate | None:
        """Ask the injector (if any) what happens to this transfer."""
        if self.faults is None:
            return None
        return self.faults.transfer_fate(
            origin, target, nbytes, "shm" if same_node else "ugni",
            self.engine.now)

    def _next_seq(self) -> int | None:
        """Sequence number for delivery dedup (None on fault-free runs)."""
        if self.faults is None:
            return None
        return next(self._op_seq)

    def _fail_lost(self, kind: str, origin: int, target: int,
                   fate: TransferFate, *events: Event) -> None:
        """Fail ``events`` once the transport gives up on a lost op."""
        assert self.faults is not None
        err = self.faults.lost_error(kind, origin, target,
                                     now=self.engine.now)
        when = self.engine.now + fate.fail_after
        for ev in events:
            # A lost op's completion events may legitimately never be waited
            # on (e.g. a put whose remote_done the program never flushes);
            # defuse so the engine's unobserved-failure report stays quiet.
            ev.defuse()
            self._at(when, lambda ev=ev: ev.fail(err))

    def _post_notification(self, origin: int, accessed: int, kind: str,
                           nbytes: int, immediate: int, win_id: int | None,
                           target_addr: int | None, when: float,
                           same_node: bool,
                           inline: np.ndarray | None = None,
                           seq: int | None = None,
                           san_op=None) -> None:
        """Post a dest-CQ/ring entry at ``accessed`` rank at time ``when``.

        With ``seq`` set, the post goes through the NIC's exactly-once
        filter — a duplicated delivery of the same transfer is suppressed
        and counted instead of double-notifying.
        """
        nic = self.nics[accessed]
        queue = nic.shm_ring if same_node else nic.dest_cq

        def deliver() -> None:
            if not nic.first_delivery(seq):
                self.faults.suppressed(origin, accessed, kind,
                                       self.engine.now)
                return
            queue.post(CqEntry(kind=kind, source=origin, target=accessed,
                               nbytes=nbytes, time=self.engine.now,
                               immediate=immediate, win_id=win_id,
                               target_addr=target_addr, inline=inline,
                               seq=seq, san=san_op))

        self._at(when, deliver)

    # ------------------------------------------------------------------
    # RDMA put
    # ------------------------------------------------------------------
    def put(self, origin: int, target: int, target_addr: int,
            data: np.ndarray, *, win_id: int | None = None,
            immediate: int | None = None,
            accumulate: str | None = None,
            acc_dtype=np.float64,
            scatter: list[tuple[int, int]] | None = None,
            san_track: bool = True) -> OpHandle:
        """RDMA write of ``data`` into ``target``'s memory.

        If ``immediate`` is set this is a *notified* put: a CQ entry carrying
        the immediate is posted at the target when (and only when) the data
        is committed — the single-transaction guarantee of Figure 2d.

        ``accumulate`` turns the commit into an element-wise update
        (``"sum"``, ``"max"``, ``"min"``, ``"replace"``) on ``acc_dtype``
        elements, the MPI_Accumulate semantics.

        ``scatter`` is an optional list of absolute ``(addr, nbytes)``
        target blocks (an RDMA scatter-gather list): the packed ``data`` is
        split across them in order within the same single transaction.
        ``target_addr`` is ignored when it is given.
        """
        raw = np.ascontiguousarray(data).view(np.uint8).ravel().copy()
        nbytes = raw.nbytes
        if scatter is not None:
            if sum(b for _, b in scatter) != nbytes:
                raise NetworkError(
                    "scatter-gather list does not cover the payload")
            target_addr = scatter[0][0] if scatter else target_addr
        same = self.machine.same_node(origin, target)
        nic = self.nics[origin]
        nic.ops_issued += 1
        fate = (None if self.faults is None
                else self._fate(origin, target, nbytes, same))

        local_done = Event(self.engine, "put.local")
        remote_done = Event(self.engine, "put.remote")

        if fate is not None and fate.lost:
            # Retries exhausted or a dead endpoint: the payload never
            # commits and no notification is posted.  The origin buffer is
            # still snapshotted (local_done fires), but completion waiters
            # get a FaultError once the transport gives up.
            if same:
                plan = nic.shm.plan_put(nbytes)
            else:
                eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
                plan = eng.plan(nbytes)
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             nbytes, op="put",
                             medium="shm" if same else "ugni",
                             notified=immediate is not None, lost=True)
            self._at(plan.inject_end, lambda: local_done.succeed(None))
            self._fail_lost("put", origin, target, fate, remote_done)
            return OpHandle("put", plan.cpu_busy, local_done, remote_done,
                            nbytes=nbytes, target=target,
                            commit_at=self.engine.now + fate.fail_after,
                            failed=True)

        if same:
            inline = (immediate is not None
                      and nic.shm.is_inline(nbytes))
            plan = nic.shm.plan_put(nbytes)
        else:
            inline = False
            eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
            extra = fate.extra_delay if fate is not None else 0.0
            plan = eng.plan(nbytes, extra_delay=self._drop_penalty()
                            + self._hop_extra(origin, target) + extra)
            commit = self._rx_reserve(target, plan.commit_at, nbytes,
                                      eng.params.G)
            plan = TransferPlan(cpu_busy=plan.cpu_busy,
                                inject_end=plan.inject_end,
                                commit_at=commit,
                                ack_at=commit + eng.params.L)

        self.tracer.emit(self.engine.now, "wire", origin, target, nbytes,
                         op="put", medium="shm" if same else "ugni",
                         notified=immediate is not None)

        space = self.spaces[target]

        san_op = None
        if self.san is not None:
            san_op = self.san.op_begin(origin)
            eng_used = (nic.shm if same
                        else nic.fma if nbytes <= self.params.fma_max
                        else nic.bte)
            san_chan = eng_used.san_channel
            san_blocks = (scatter if scatter is not None
                          else [(target_addr, nbytes)])
            san_kind = WRITE if accumulate is None else ATOMIC

        def commit() -> None:
            if san_op is not None:
                # Runs before the zero-byte early-out: a zero-byte notified
                # put (the flush+notify credit) still carries the in-order
                # channel's clock to its consumer.
                self.san.op_commit(san_op, origin, target, san_blocks,
                                   kind=san_kind, chan=san_chan,
                                   record=san_track)
            if not nbytes:
                return
            if scatter is not None:
                pos = 0
                for addr, blen in scatter:
                    space.copy_in(addr, raw[pos:pos + blen])
                    pos += blen
                return
            if accumulate is None or accumulate == "replace":
                space.copy_in(target_addr, raw)
                return
            ufunc = {"sum": np.add, "max": np.maximum,
                     "min": np.minimum}.get(accumulate)
            if ufunc is None:
                raise NetworkError(f"unknown accumulate op {accumulate!r}")
            dst = space.mem[target_addr:target_addr + nbytes].view(acc_dtype)
            ufunc(dst, raw.view(acc_dtype), out=dst)

        seq = None if self.faults is None else next(self._op_seq)
        if seq is None:
            # Fault-free fast path: scheduling identical to the original
            # implementation (commit and notification as separate events).
            self._at(plan.commit_at, commit)
            if immediate is not None:
                self._post_notification(
                    origin, target, "put", nbytes, immediate, win_id,
                    target_addr, plan.commit_at, same,
                    inline=(raw if inline else None), san_op=san_op)
        else:
            # Completion path with exactly-once dedup: payload commit and
            # notification post travel together under one sequence number,
            # so a duplicated delivery re-applies neither (accumulates and
            # notification counters are not idempotent).
            tnic = self.nics[target]
            queue = tnic.shm_ring if same else tnic.dest_cq

            def deliver() -> None:
                if not tnic.first_delivery(seq):
                    self.faults.suppressed(origin, target, "put",
                                           self.engine.now)
                    return
                commit()
                if immediate is not None:
                    queue.post(CqEntry(
                        kind="put", source=origin, target=target,
                        nbytes=nbytes, time=self.engine.now,
                        immediate=immediate, win_id=win_id,
                        target_addr=target_addr,
                        inline=(raw if inline else None), seq=seq,
                        san=san_op))

            self._at(plan.commit_at, deliver)
            if fate is not None and fate.duplicate:
                self._at(plan.commit_at + fate.dup_lag, deliver)
        # Origin buffer reuse: data was snapshotted at injection.
        self._at(plan.inject_end, lambda: local_done.succeed(None))
        self._at(plan.ack_at, lambda: remote_done.succeed(None))
        return OpHandle("put", plan.cpu_busy, local_done, remote_done,
                        nbytes=nbytes, target=target,
                        commit_at=plan.commit_at, san_remote=san_op)

    # ------------------------------------------------------------------
    # RDMA get
    # ------------------------------------------------------------------
    def get(self, origin: int, target: int, target_addr: int, nbytes: int,
            local_addr: int, *, win_id: int | None = None,
            immediate: int | None = None,
            gather: list[tuple[int, int]] | None = None,
            scatter: list[tuple[int, int]] | None = None) -> OpHandle:
        """RDMA read of ``nbytes`` from ``target`` into origin memory.

        A *notified* get (``immediate`` set) notifies the **target** — the
        owner of the read buffer — that its data has been read and the buffer
        may be reused.  On a reliable fabric the notification fires when the
        read is served at the target (§VIII case 1); with ``reliable=False``
        it fires only after the data reached the origin plus a return ack
        (§VIII case 2), one extra round trip later.
        """
        same = self.machine.same_node(origin, target)
        nic = self.nics[origin]
        nic.ops_issued += 1
        p = self.params
        for name, sg in (("gather", gather), ("scatter", scatter)):
            if sg is not None and sum(b for _, b in sg) != nbytes:
                raise NetworkError(
                    f"{name} list does not cover the {nbytes}-byte payload")
        if gather is not None and gather:
            target_addr = gather[0][0]

        local_done = Event(self.engine, "get.local")
        remote_done = Event(self.engine, "get.remote")
        tspace = self.spaces[target]
        ospace = self.spaces[origin]
        fate = (None if self.faults is None
                else self._fate(origin, target, nbytes, same))

        if fate is not None and fate.lost:
            # The read never completes: no data arrives at the origin and
            # the target is never notified.
            cpu_busy = (0.0 if same
                        else nic.fma.plan(GET_REQUEST_BYTES).cpu_busy)
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             GET_REQUEST_BYTES, op="get-req",
                             medium="shm" if same else "ugni", lost=True)
            self._fail_lost("get", origin, target, fate,
                            local_done, remote_done)
            return OpHandle("get", cpu_busy, local_done, remote_done,
                            nbytes=nbytes, target=target,
                            commit_at=self.engine.now + fate.fail_after,
                            failed=True)

        if same:
            plan = nic.shm.plan_get(nbytes)
            serve_at = plan.commit_at
            data_at = plan.commit_at
            notify_at = plan.commit_at
            cpu_busy = plan.cpu_busy
            self.tracer.emit(self.engine.now, "wire", origin, target, nbytes,
                             op="get", medium="shm",
                             notified=immediate is not None)
        else:
            # Request leg: small header through the origin FMA engine.
            hop = self._hop_extra(origin, target)
            req = nic.fma.plan(GET_REQUEST_BYTES,
                               extra_delay=self._drop_penalty() + hop)
            cpu_busy = req.cpu_busy
            # Response leg: served by the target NIC's engine of proper
            # size; injected retry/jitter delay rides on this leg.
            extra = fate.extra_delay if fate is not None else 0.0
            tnic = self.nics[target]
            teng = tnic.fma if nbytes <= p.fma_max else tnic.bte
            resp = teng.plan(nbytes,
                             extra_delay=self._drop_penalty() + hop + extra,
                             not_before=req.commit_at)
            serve_at = resp.inject_end
            data_at = self._rx_reserve(origin, resp.commit_at, nbytes,
                                       teng.params.G)
            if p.reliable:
                notify_at = serve_at
            else:
                # Data must reach the origin, then an ack returns (§VIII).
                notify_at = data_at + p.fma.L
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             GET_REQUEST_BYTES, op="get-req", medium="ugni")
            self.tracer.emit(self.engine.now, "wire", target, origin, nbytes,
                             op="get-resp", medium="ugni",
                             notified=immediate is not None)

        # Snapshot at serve time (the value read is the value at serve).
        snapshot: list[np.ndarray | None] = [None]

        san_op = san_del = None
        if self.san is not None:
            # Two legs, two actors: the remote read (serves at the target)
            # and the dependent local delivery (commits at the origin).
            san_op = self.san.op_begin(origin)
            san_del = self.san.op_child(san_op)

        def serve() -> None:
            if san_op is not None:
                blocks = (gather if gather is not None
                          else [(target_addr, nbytes)])
                self.san.op_commit(san_op, origin, target, blocks,
                                   kind=READ)
            if not nbytes:
                return
            if gather is not None:
                parts = [tspace.copy_out(a, b) for a, b in gather]
                snapshot[0] = np.concatenate(parts)
            else:
                snapshot[0] = tspace.copy_out(target_addr, nbytes)

        def deliver() -> None:
            if san_del is not None:
                blocks = (scatter if scatter is not None
                          else [(local_addr, nbytes)])
                self.san.op_commit(san_del, target, origin, blocks,
                                   kind=WRITE)
            if not nbytes:
                return
            if scatter is not None:
                pos = 0
                for addr, blen in scatter:
                    ospace.copy_in(addr, snapshot[0][pos:pos + blen])
                    pos += blen
            else:
                ospace.copy_in(local_addr, snapshot[0])

        self._at(serve_at, serve)
        # One scheduler transaction for the whole same-tick completion
        # burst (same seq consumption and dispatch order as three call_at).
        self._at_batch(data_at, (
            deliver,
            lambda: local_done.succeed(None),
            lambda: remote_done.succeed(None),
        ))
        if immediate is not None:
            # The data legs are idempotent copies; only the notification
            # needs the exactly-once filter under duplication.
            seq = None if self.faults is None else next(self._op_seq)
            self._post_notification(origin, target, "get", nbytes, immediate,
                                    win_id, target_addr, notify_at, same,
                                    seq=seq, san_op=san_op)
            if fate is not None and fate.duplicate:
                self._post_notification(origin, target, "get", nbytes,
                                        immediate, win_id, target_addr,
                                        notify_at + fate.dup_lag, same,
                                        seq=seq, san_op=san_op)
        return OpHandle("get", cpu_busy, local_done, remote_done,
                        nbytes=nbytes, target=target, commit_at=data_at,
                        san_remote=san_del, san_local=san_del)

    # ------------------------------------------------------------------
    # Atomic memory operations
    # ------------------------------------------------------------------
    def amo(self, origin: int, target: int, target_addr: int, op: str,
            operand: int, compare: int | None = None, *,
            dtype=np.int64, win_id: int | None = None,
            immediate: int | None = None) -> OpHandle:
        """Remote atomic: ``op`` in {"sum", "replace", "cas", "no_op"}.

        ``remote_done`` fires at the origin carrying the *old* value
        (fetch-and-op / compare-and-swap semantics).
        """
        if op not in ("sum", "replace", "cas", "no_op"):
            raise NetworkError(f"unknown atomic op {op!r}")
        same = self.machine.same_node(origin, target)
        nic = self.nics[origin]
        nic.ops_issued += 1
        itemsize = np.dtype(dtype).itemsize
        fate = (None if self.faults is None
                else self._fate(origin, target, itemsize, same))

        local_done = Event(self.engine, "amo.local")
        remote_done = Event(self.engine, "amo.remote")

        if fate is not None and fate.lost:
            cpu_busy = (0.0 if same
                        else nic.fma.plan(AMO_REQUEST_BYTES).cpu_busy)
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             AMO_REQUEST_BYTES, op=f"amo-{op}",
                             medium="shm" if same else "ugni", lost=True)
            self._fail_lost("amo", origin, target, fate,
                            local_done, remote_done)
            return OpHandle("amo", cpu_busy, local_done, remote_done,
                            nbytes=itemsize, target=target,
                            commit_at=self.engine.now + fate.fail_after,
                            failed=True)

        if same:
            plan = nic.shm.plan_amo()
            exec_at = self.engine.now + self.params.shm.L
            done_at = plan.commit_at
            cpu_busy = plan.cpu_busy
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             itemsize, op=f"amo-{op}", medium="shm")
        else:
            hop = self._hop_extra(origin, target)
            extra = fate.extra_delay if fate is not None else 0.0
            req = nic.fma.plan(AMO_REQUEST_BYTES,
                               extra_delay=self._drop_penalty() + hop
                               + extra)
            cpu_busy = req.cpu_busy
            exec_at = req.commit_at
            done_at = exec_at + self.params.fma.L + hop
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             AMO_REQUEST_BYTES, op=f"amo-{op}", medium="ugni")
            self.tracer.emit(self.engine.now, "wire", target, origin,
                             AMO_RESPONSE_BYTES, op="amo-resp", medium="ugni")

        tspace = self.spaces[target]
        result: list[int] = [0]

        san_op = (self.san.op_begin(origin)
                  if self.san is not None else None)

        def execute() -> None:
            if san_op is not None:
                self.san.amo_commit(san_op, origin, target, target_addr,
                                    itemsize)
            view = tspace.mem[target_addr:target_addr + itemsize].view(dtype)
            old = view[0].item()
            result[0] = old
            if op == "sum":
                view[0] = old + operand
            elif op == "replace":
                view[0] = operand
            elif op == "cas":
                if old == compare:
                    view[0] = operand
            # "no_op" fetches without modifying.

        seq = None if self.faults is None else next(self._op_seq)
        if seq is None:
            self._at(exec_at, execute)
            if immediate is not None:
                self._post_notification(origin, target, "amo", itemsize,
                                        immediate, win_id, target_addr,
                                        exec_at, same, san_op=san_op)
        else:
            # Atomics are the least idempotent op of all: execute and
            # notification share one sequence number so a duplicated
            # delivery applies neither twice.
            tnic = self.nics[target]
            queue = tnic.shm_ring if same else tnic.dest_cq

            def deliver() -> None:
                if not tnic.first_delivery(seq):
                    self.faults.suppressed(origin, target, "amo",
                                           self.engine.now)
                    return
                execute()
                if immediate is not None:
                    queue.post(CqEntry(kind="amo", source=origin,
                                       target=target, nbytes=itemsize,
                                       time=self.engine.now,
                                       immediate=immediate, win_id=win_id,
                                       target_addr=target_addr, seq=seq,
                                       san=san_op))

            self._at(exec_at, deliver)
            if fate is not None and fate.duplicate:
                self._at(exec_at + fate.dup_lag, deliver)
        self._at_batch(done_at, (
            lambda: local_done.succeed(None),
            lambda: remote_done.succeed(result[0]),
        ))
        return OpHandle("amo", cpu_busy, local_done, remote_done,
                        nbytes=itemsize, target=target, commit_at=exec_at,
                        san_remote=san_op)

    # ------------------------------------------------------------------
    # Software protocol messages (message passing, RMA control)
    # ------------------------------------------------------------------
    def send_sys(self, origin: int, target: int, ptype: str, nbytes: int,
                 payload: dict | None = None,
                 data: np.ndarray | None = None) -> OpHandle:
        """Send a protocol message handled in software at the target.

        Carries an optional python ``payload`` (headers) and an optional
        ``data`` snapshot (the eager-protocol bounce-buffer copy).  The wire
        cost is priced like a put of ``nbytes``.
        """
        same = self.machine.same_node(origin, target)
        nic = self.nics[origin]
        fate = (None if self.faults is None
                else self._fate(origin, target, nbytes, same))
        local_done = Event(self.engine, "sys.local")
        remote_done = Event(self.engine, "sys.remote")

        if fate is not None and fate.lost:
            # The protocol message vanishes; the peer that was waiting on
            # it will sit in its blocking call until deadlock detection
            # fires — exactly how a lost control message kills an MPI job.
            if same:
                plan = nic.shm.plan_put(nbytes)
            else:
                eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
                plan = eng.plan(nbytes)
            self.tracer.emit(self.engine.now, "wire", origin, target,
                             nbytes, op=f"sys-{ptype}",
                             medium="shm" if same else "ugni", lost=True)
            self._at(plan.inject_end, lambda: local_done.succeed(None))
            self._fail_lost(f"sys-{ptype}", origin, target, fate,
                            remote_done)
            return OpHandle(f"sys-{ptype}", plan.cpu_busy, local_done,
                            remote_done, nbytes=nbytes, target=target,
                            failed=True)

        if same:
            plan = nic.shm.plan_put(nbytes)
        else:
            eng = nic.fma if nbytes <= self.params.fma_max else nic.bte
            extra = fate.extra_delay if fate is not None else 0.0
            plan = eng.plan(nbytes, extra_delay=self._drop_penalty()
                            + self._hop_extra(origin, target) + extra)
            commit = self._rx_reserve(target, plan.commit_at, nbytes,
                                      eng.params.G)
            plan = TransferPlan(cpu_busy=plan.cpu_busy,
                                inject_end=plan.inject_end,
                                commit_at=commit,
                                ack_at=commit + eng.params.L)
        self.tracer.emit(self.engine.now, "wire", origin, target, nbytes,
                         op=f"sys-{ptype}", medium="shm" if same else "ugni")
        snapshot = None if data is None else np.ascontiguousarray(
            data).view(np.uint8).ravel().copy()
        seq = None if self.faults is None else next(self._op_seq)
        san_clock = (self.san.release(origin)
                     if self.san is not None else None)

        def deliver() -> None:
            tnic = self.nics[target]
            if not tnic.first_delivery(seq):
                self.faults.suppressed(origin, target, f"sys-{ptype}",
                                       self.engine.now)
                return
            pkt = SysPacket(ptype=ptype, source=origin, target=target,
                            nbytes=nbytes, payload=dict(payload or {}),
                            data=snapshot, time=self.engine.now,
                            san_clock=san_clock)
            tnic.sys_inbox.put(pkt)
            tnic.sys_arrival.fire(pkt)
            if self.on_sys_arrival is not None:
                self.on_sys_arrival(target, pkt)

        self._at(plan.commit_at, deliver)
        if fate is not None and fate.duplicate:
            self._at(plan.commit_at + fate.dup_lag, deliver)
        self._at(plan.inject_end, lambda: local_done.succeed(None))
        self._at(plan.ack_at, lambda: remote_done.succeed(None))
        return OpHandle(f"sys-{ptype}", plan.cpu_busy, local_done,
                        remote_done, nbytes=nbytes, target=target)
