"""Network substrate: LogGP-parameterized RDMA fabric.

The fabric models exactly the mechanisms the paper's implementation uses:

* **uGNI-like inter-node transport** (:mod:`repro.network.transports.ugni`)
  with an *FMA* engine (CPU-driven injection of small transfers) and a *BTE*
  engine (offloaded block transfers), both able to attach a 32-bit immediate
  value that is delivered to the target's *destination completion queue*.
* **XPMEM-like intra-node transport** (:mod:`repro.network.transports.shm`)
  with a bounded, cache-line-entry notification ring per process and the
  paper's *inline transfer* protocol for small puts.
* **Completion queues** (:mod:`repro.network.cq`) at source (local/remote
  completion, used by ``flush``) and destination (notifications).

Timing follows the LogGP model (Alexandrov et al.); default parameters are
the paper's Table I values.
"""

from repro.network.cq import (
    CompletionQueue,
    CqEntry,
    decode_immediate,
    encode_immediate,
)
from repro.network.fabric import Fabric, Nic, SysPacket
from repro.network.loggp import (
    LogGPParams,
    TransportParams,
    default_params,
    noc_params,
)
from repro.network.topology import Machine

__all__ = [
    "LogGPParams",
    "TransportParams",
    "default_params",
    "noc_params",
    "Machine",
    "CompletionQueue",
    "CqEntry",
    "encode_immediate",
    "decode_immediate",
    "Fabric",
    "Nic",
    "SysPacket",
]
