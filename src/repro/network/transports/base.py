"""Shared transport machinery: FIFO injection engines and transfer plans."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.loggp import LogGPParams
from repro.sim.engine import Engine


@dataclass(slots=True)
class TransferPlan:
    """The priced timeline of one transfer, in absolute engine time (µs).

    ``cpu_busy`` is the CPU time the *caller* must charge (the origin process
    yields a timeout of this length); the remaining fields are absolute times
    at which the fabric schedules commit/ack callbacks.
    """

    cpu_busy: float        # origin CPU occupancy starting now
    inject_end: float      # when the injecting engine frees up
    commit_at: float       # data committed at the destination memory
    ack_at: float          # remote-completion ack visible at the origin


class InjectEngine:
    """A FIFO-serialized injection resource (an FMA window or a BTE queue).

    No simulation processes are spawned per message: the engine tracks its
    ``next_free`` time and each injection is priced as
    ``start = max(now, next_free)``, ``busy = g + nbytes * G``.
    """

    def __init__(self, engine: Engine, params: LogGPParams, name: str = ""):
        self.engine = engine
        self.params = params
        self.name = name
        self.next_free = 0.0
        self.injected = 0
        self.bytes_injected = 0

    def inject(self, nbytes: int,
               not_before: float | None = None) -> tuple[float, float]:
        """Reserve the engine for one message; returns (start, end).

        ``not_before`` floors the start time — used when pricing a future
        injection, e.g. the response leg of a get served at the target.
        """
        floor = self.engine.now if not_before is None else not_before
        start = max(floor, self.next_free)
        end = start + self.params.serialization(nbytes)
        self.next_free = end
        self.injected += 1
        self.bytes_injected += nbytes
        return start, end
