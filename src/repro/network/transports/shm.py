"""XPMEM-like intra-node transport with the paper's notification ring.

Per §IV-C, each process owns a bounded ring buffer of cache-line-sized
notification entries in a shared segment.  A small put's payload rides
*inside* the notification line (*inline transfer*, one cache-line move);
larger accesses are an optimized memcpy + memory fence followed by the
notification.  All of it is CPU work at the origin — there is no offload
engine intra-node, which is why shared-memory puts cannot be overlapped
with computation the way BTE transfers can.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.loggp import LogGPParams, TransportParams
from repro.network.transports.base import TransferPlan
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector


class ShmTransport:
    """Prices intra-node copies performed by the origin CPU."""

    offloaded = False
    #: deliveries into one segment commit in ring order; the sanitizer
    #: chains commit clocks along this channel (per origin/target pair)
    san_channel: str | None = "shm"

    def __init__(self, engine: Engine, params: TransportParams,
                 name: str = ""):
        self.engine = engine
        self.params = params
        self.shm: LogGPParams = params.shm
        self.name = name
        self.inline_puts = 0
        self.copy_puts = 0
        #: optional fault injector.  Intra-node data never rides packets,
        #: so only transient stalls (a busy ring / contended segment)
        #: apply on this path.
        self.faults: "FaultInjector" | None = None

    def is_inline(self, nbytes: int) -> bool:
        return nbytes <= self.params.inline_max

    def _stall(self) -> float:
        if self.faults is not None:
            return self.faults.nic_stall("shm", self.engine.now)
        return 0.0

    def plan_put(self, nbytes: int) -> TransferPlan:
        """Price a put; the CPU is busy for the whole copy."""
        now = self.engine.now
        if self.is_inline(nbytes):
            # Payload travels inside the notification cache line: one line
            # write plus the fixed segment-access latency.
            self.inline_puts += 1
            busy = self.shm.L
        else:
            # memcpy into the target segment, then an sfence, then the
            # notification line write.
            self.copy_puts += 1
            busy = self.shm.L + nbytes * self.shm.G
        busy += self._stall()
        end = now + busy
        return TransferPlan(cpu_busy=busy, inject_end=end, commit_at=end,
                            ack_at=end)

    def plan_get(self, nbytes: int) -> TransferPlan:
        """Price a get: the origin CPU copies out of the remote segment."""
        now = self.engine.now
        busy = self.shm.L + nbytes * self.shm.G + self._stall()
        end = now + busy
        return TransferPlan(cpu_busy=busy, inject_end=end, commit_at=end,
                            ack_at=end)

    def plan_amo(self) -> TransferPlan:
        """Price an atomic op on the remote segment (one line round trip)."""
        now = self.engine.now
        busy = 2 * self.shm.L + self._stall()
        end = now + busy
        return TransferPlan(cpu_busy=busy, inject_end=end, commit_at=end,
                            ack_at=end)
