"""Transport engines: uGNI-like FMA/BTE and XPMEM-like shared memory."""

from repro.network.transports.base import InjectEngine, TransferPlan
from repro.network.transports.shm import ShmTransport
from repro.network.transports.ugni import BteEngine, FmaEngine

__all__ = [
    "InjectEngine",
    "TransferPlan",
    "FmaEngine",
    "BteEngine",
    "ShmTransport",
]
