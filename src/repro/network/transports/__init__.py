"""Transport engines: uGNI-like FMA/BTE and XPMEM-like shared memory."""

from repro.network.transports.base import InjectEngine, TransferPlan
from repro.network.transports.ugni import FmaEngine, BteEngine
from repro.network.transports.shm import ShmTransport

__all__ = [
    "InjectEngine",
    "TransferPlan",
    "FmaEngine",
    "BteEngine",
    "ShmTransport",
]
