"""uGNI-like inter-node engines: FMA and BTE.

*FMA* (Fast Memory Access) is CPU-driven: the origin CPU writes the payload
through the FMA window, so the injection time is charged to the CPU.  It is
the fast path for small transfers.

*BTE* (Block Transfer Engine) is offloaded: the CPU only posts a descriptor
(``o_post``); the NIC DMA engine streams the data.  It wins for large
transfers and is what gives One Sided / Notified Access their near-perfect
computation/communication overlap in Figure 4a.

Both engines can attach a 32-bit immediate delivered to the destination
completion queue — the mechanism Notified Access is built on (§IV-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.loggp import LogGPParams
from repro.network.transports.base import InjectEngine, TransferPlan
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector


class FmaEngine:
    """CPU-driven small-transfer engine."""

    offloaded = False
    #: FMA transfers between one pair commit in issue order (uGNI FMA
    #: ordering); the sanitizer chains commit clocks along this channel
    san_channel: str | None = "fma"

    def __init__(self, engine: Engine, params: LogGPParams, name: str = ""):
        self.params = params
        self._inject = InjectEngine(engine, params, name=f"fma:{name}")
        self.engine = engine
        #: optional fault injector (transient engine stalls)
        self.faults: "FaultInjector" | None = None

    def plan(self, nbytes: int, extra_delay: float = 0.0,
             not_before: float | None = None) -> TransferPlan:
        if self.faults is not None:
            extra_delay += self.faults.nic_stall("fma", self.engine.now)
        start, end = self._inject.inject(nbytes, not_before=not_before)
        # The CPU drives the injection: busy from now until injection ends.
        cpu_busy = max(end - self.engine.now, 0.0)
        commit = end + self.params.L + extra_delay
        ack = commit + self.params.L
        return TransferPlan(cpu_busy=cpu_busy, inject_end=end,
                            commit_at=commit, ack_at=ack)

    @property
    def stats(self) -> tuple[int, int]:
        return self._inject.injected, self._inject.bytes_injected


class BteEngine:
    """Offloaded block-transfer engine."""

    offloaded = True
    #: BTE DMA completions are unordered with respect to other transfers;
    #: no channel clock — only flush/notification edges order them
    san_channel: str | None = None

    def __init__(self, engine: Engine, params: LogGPParams, name: str = ""):
        self.params = params
        self._inject = InjectEngine(engine, params, name=f"bte:{name}")
        self.engine = engine
        #: optional fault injector (transient engine stalls)
        self.faults: "FaultInjector" | None = None

    def plan(self, nbytes: int, extra_delay: float = 0.0,
             not_before: float | None = None) -> TransferPlan:
        if self.faults is not None:
            extra_delay += self.faults.nic_stall("bte", self.engine.now)
        # CPU posts a descriptor and is immediately free again.
        start, end = self._inject.inject(nbytes, not_before=not_before)
        commit = end + self.params.L + extra_delay
        ack = commit + self.params.L
        return TransferPlan(cpu_busy=self.params.o_post, inject_end=end,
                            commit_at=commit, ack_at=ack)

    @property
    def stats(self) -> tuple[int, int]:
        return self._inject.injected, self._inject.bytes_injected
