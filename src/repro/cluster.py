"""Cluster assembly: ranks, programs, and the top-level run loop.

A :class:`Cluster` wires together the DES engine, the machine topology, one
address space + NIC + cache model + MPI endpoint + Notified Access engine
per rank, and runs *rank programs* — generator functions of one
:class:`Rank` argument that use the blocking-style APIs::

    def program(ctx):
        win = yield from ctx.win_allocate(4096)
        if ctx.rank == 0:
            yield from ctx.na.put_notify(win, data, target=1, tag=7)
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=7)
            yield from ctx.na.start(req)
            status = yield from ctx.na.wait(req)
        return ctx.now

    results, cluster = run_ranks(2, program)
"""

from __future__ import annotations

import os
from collections.abc import Callable, Generator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.counters import CounterEngine
from repro.core.engine import NotifyEngine
from repro.core.overwriting import OverwriteEngine
from repro.errors import RaceError, SimulationError
from repro.faults import FaultPlan
from repro.memory.address import DEFAULT_SPACE, AddressSpace
from repro.memory.cache import CacheModel
from repro.mpi.comm import Communicator
from repro.mpi.endpoint import MpiEndpoint
from repro.network.fabric import Fabric, SysPacket
from repro.network.loggp import TransportParams
from repro.network.topology import Machine
from repro.rma.window import WindowRegistry, win_allocate
from repro.sim.engine import Engine
from repro.sim.rng import RngStream
from repro.sim.trace import Tracer


@dataclass
class ClusterConfig:
    """Tunables of a simulated cluster run."""

    nranks: int = 2
    ranks_per_node: int = 1
    #: dragonfly grouping of nodes (None = flat network)
    nodes_per_group: int | None = None
    params: TransportParams = field(default_factory=TransportParams)
    seed: int = 42
    trace: bool = False
    space_bytes: int = DEFAULT_SPACE
    #: Cray-like helper agent answering rendezvous CTS without the sender CPU
    async_progress: bool = True
    #: CPU compute throughput used by ``Rank.compute_flops`` (flops per µs)
    flops_per_us: float = 8000.0
    detect_deadlock: bool = True
    #: optional fault-injection plan (None = perfectly reliable fabric)
    faults: FaultPlan | None = None
    #: happens-before race detection (see ``repro.sanitizer``).  Off by
    #: default: the tracker adds no events, so schedules and golden values
    #: are identical either way, but shadow bookkeeping costs CPU time.
    #: The ``REPRO_SANITIZE=1`` environment variable (set by
    #: ``pytest --sanitize``) force-enables it.
    sanitize: bool = False
    #: sharded conservative-parallel execution (see ``repro.sim.shard``):
    #: ``N > 1`` partitions the ranks node-aligned over N worker processes,
    #: ``1`` pins the serial core, and ``0`` (the default) resolves from
    #: the ``REPRO_SHARDS`` environment variable (falling back to serial).
    #: Only :func:`run_ranks` dispatches to the sharded core; driving a
    #: :class:`Cluster` directly always runs serial.
    shards: int = 0


class Rank:
    """Everything one simulated process can see."""

    def __init__(self, cluster: "Cluster", rank: int):
        self.cluster = cluster
        self.rank = rank
        self.engine = cluster.engine
        self.machine = cluster.machine
        self.fabric = cluster.fabric
        self.params = cluster.cfg.params
        self.space: AddressSpace = cluster.spaces[rank]
        self.cache = CacheModel()
        self.nic = cluster.fabric.nic(rank)
        self.rng = RngStream(cluster.cfg.seed, "rank", rank)
        # Wired in a second phase (endpoint needs this context object):
        self.endpoint: MpiEndpoint = None  # type: ignore[assignment]
        self.comm: Communicator = None     # type: ignore[assignment]
        self.na: NotifyEngine = None       # type: ignore[assignment]
        self.counters: CounterEngine = None  # type: ignore[assignment]
        self.gaspi: OverwriteEngine = None   # type: ignore[assignment]

    @property
    def size(self) -> int:
        return self.cluster.cfg.nranks

    @property
    def now(self) -> float:
        return self.engine.now

    def timeout(self, dt: float):
        return self.engine.timeout(dt)

    def compute(self, dt_us: float) -> Generator[object, object, None]:
        """Occupy this rank's CPU for ``dt_us`` microseconds."""
        if dt_us > 0:
            yield self.engine.timeout(dt_us)

    def compute_flops(self, flops: float) -> Generator[object, object, None]:
        """Occupy the CPU for the time ``flops`` take at the modeled rate."""
        yield from self.compute(flops / self.cluster.cfg.flops_per_us)

    def alloc(self, nbytes: int, align: int = 64):
        return self.space.alloc(nbytes, align=align)

    def win_allocate(self, nbytes: int, disp_unit: int = 1):
        """Collective window allocation (:func:`repro.rma.win_allocate`)."""
        win = yield from win_allocate(self, nbytes, disp_unit)
        return win

    def barrier(self):
        yield from self.comm.barrier()

    # -- sanitizer annotations (no-ops when sanitize is off) ------------
    def san_acquire(self, handle) -> None:
        """Declare this rank ordered after ``handle``'s completed op.

        For code that synchronizes out-of-band (e.g. the raw ping-pong
        that sleeps until a put's known commit time) where no
        notification/flush edge exists for the sanitizer to see.
        """
        san = self.cluster.sanitizer
        if san is not None:
            san.acquire_op(self.rank, getattr(handle, "san_remote", None))
            san.acquire_op(self.rank, getattr(handle, "san_local", None))

    def san_acquire_at(self, win, offset: int = 0) -> None:
        """Declare this rank ordered after the last op committed at a
        polled local address (ring/flag protocols: call right after the
        poll observes the value).  ``win`` is a Window (``offset`` is then
        window-relative, past the header) or a raw Region."""
        san = self.cluster.sanitizer
        if san is not None:
            shared = getattr(win, "shared", None)
            if shared is not None:
                addr = shared.bases[self.rank] + offset
            else:
                addr = win.addr + offset
            san.acquire_loc(self.rank, self.rank, addr)


class Cluster:
    """A simulated machine plus the full communication stack."""

    def __init__(self, config: ClusterConfig | None = None, **kw):
        if config is None:
            config = ClusterConfig(**kw)
        elif kw:
            raise SimulationError("pass either a config or kwargs, not both")
        self.cfg = config
        self.engine = Engine()
        self.machine = Machine(config.nranks, config.ranks_per_node,
                               nodes_per_group=config.nodes_per_group)
        self.tracer = Tracer(enabled=config.trace)
        self.sanitizer = self._build_sanitizer()
        self.spaces = self._build_spaces()
        if self.sanitizer is not None:
            for sp in self.spaces:
                sp.san = self.sanitizer
                sp.poison_on_free = True
        self.fabric = self._build_fabric()
        self.win_registry = self._build_win_registry()
        self.ranks = self._build_ranks()
        self._wire_ranks()
        if config.async_progress:
            self.fabric.on_sys_arrival = self._async_progress_hook
        self._ran = False

    # -- build hooks (overridden by the sharded core) -------------------
    def _build_sanitizer(self):
        if self.cfg.sanitize or os.environ.get("REPRO_SANITIZE") == "1":
            from repro.sanitizer import Sanitizer
            return Sanitizer(self.engine, self.cfg.nranks,
                             tracer=self.tracer)
        return None

    def _build_spaces(self):
        return [AddressSpace(r, self.cfg.space_bytes)
                for r in range(self.cfg.nranks)]

    def _build_fabric(self) -> Fabric:
        return Fabric(self.engine, self.machine, self.spaces,
                      params=self.cfg.params, tracer=self.tracer,
                      seed=self.cfg.seed, fault_plan=self.cfg.faults,
                      sanitizer=self.sanitizer)

    def _build_win_registry(self) -> WindowRegistry:
        return WindowRegistry(self.cfg.nranks)

    def _build_ranks(self):
        return [Rank(self, r) for r in range(self.cfg.nranks)]

    def _endpoint_table(self):
        return [ctx.endpoint for ctx in self.ranks]

    def _wire_ranks(self) -> None:
        for ctx in self.ranks:
            ctx.endpoint = MpiEndpoint(ctx)
        endpoints = self._endpoint_table()
        for ctx in self.ranks:
            ctx.comm = Communicator(ctx.endpoint, endpoints)
            ctx.na = NotifyEngine(ctx)
            ctx.counters = CounterEngine(ctx)
            ctx.gaspi = OverwriteEngine(ctx)

    # ------------------------------------------------------------------
    def _async_progress_hook(self, target: int, pkt: SysPacket) -> None:
        """Answer rendezvous CTS messages like Cray's helper agent: off the
        main CPU, after a small reaction delay."""
        if pkt.ptype != "cts":
            return
        pkt.payload["async_handled"] = True
        endpoint = self.ranks[target].endpoint
        self.fabric._at(
            self.engine.now + self.cfg.params.async_progress_delay,
            lambda: endpoint._on_cts(pkt))

    # ------------------------------------------------------------------
    def run(self,
            program: Callable[[Rank], Generator] | Sequence[Callable],
            args: Sequence[Any] = (),
            until: float | None = None) -> list[Any]:
        """Run one program on every rank (or one program per rank).

        Returns the per-rank return values.  A cluster is single-use: build
        a fresh one per experiment so engines and statistics stay clean.
        """
        if self._ran:
            raise SimulationError("cluster already ran; build a new one")
        self._ran = True
        if callable(program):
            programs = [program] * self.cfg.nranks
        else:
            programs = list(program)
            if len(programs) != self.cfg.nranks:
                raise SimulationError(
                    f"{len(programs)} programs for {self.cfg.nranks} ranks")
        procs = []
        for ctx, prog in zip(self.ranks, programs):
            procs.append(self.engine.process(prog(ctx, *args),
                                             name=f"rank{ctx.rank}"))
        try:
            self.engine.run(until=until,
                            detect_deadlock=self.cfg.detect_deadlock)
        except SimulationError as exc:
            # A race detected inside a rank program surfaces as a process
            # crash; re-raise the RaceError itself so callers (and pytest
            # ``raises`` blocks) see the diagnosis, not the wrapper.
            if isinstance(exc.__cause__, RaceError):
                raise exc.__cause__
            raise
        return [p.value if p.triggered else None for p in procs]

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        """Final virtual time (µs)."""
        return self.engine.now

    def stats(self) -> dict[str, Any]:
        """Summary counters for tests and reports."""
        out: dict[str, Any] = {
            "time_us": self.engine.now,
            "wire_transactions": self.tracer.wire_transactions(),
            "bytes_on_wire": self.tracer.bytes_by_kind.get("wire", 0),
            "eager_copies": sum(c.endpoint.eager_copies for c in self.ranks),
            "bounce_copies": sum(c.endpoint.bounce_copies
                                 for c in self.ranks),
            "rndv_sends": sum(c.endpoint.rndv_sends for c in self.ranks),
            "notified_ops": sum(c.na.notified_ops for c in self.ranks),
            "cache_misses": {c.rank: c.cache.stats.misses
                             for c in self.ranks},
            "rx_bytes": {c.rank: c.nic.rx_bytes for c in self.ranks},
            "shm_inline_puts": sum(c.nic.shm.inline_puts
                                   for c in self.ranks),
            "live_na_requests": sum(c.na.live_requests
                                    for c in self.ranks),
        }
        if self.fabric.faults is not None:
            out["faults"] = self.fabric.faults.stats()
            out["faults"]["dup_suppressed_nic"] = sum(
                c.nic.dup_suppressed for c in self.ranks)
        if self.sanitizer is not None:
            out["sanitizer"] = {"races": self.sanitizer.races}
        return out


def effective_shards(config: ClusterConfig) -> int:
    """Resolve the shard count for one run (1 = serial).

    ``config.shards`` wins when set (>= 1); ``0`` consults the
    ``REPRO_SHARDS`` environment variable.  Features the sharded core
    does not model (probabilistic fault injection, lossy fabrics,
    ``reliable=False``) raise when sharding was requested explicitly and
    quietly fall back to serial when it came from the environment — so
    exporting ``REPRO_SHARDS`` never changes what an incompatible run
    computes.  Node-failure-only plans (``FaultPlan.shardable``) make no
    RNG draws, so they shard exactly and are admitted.  The count is
    clamped to the node count (shards are node-aligned).
    """
    n = config.shards
    explicit = n > 1
    if n == 0:
        try:
            n = int(os.environ.get("REPRO_SHARDS", "1"))
        except ValueError:
            n = 1
    if n <= 1:
        return 1
    reasons = []
    if (config.faults is not None and config.faults.active
            and not config.faults.shardable):
        reasons.append("probabilistic fault injection")
    if config.params.drop_rate > 0:
        reasons.append("drop_rate > 0")
    if not config.params.reliable:
        reasons.append("reliable=False")
    if reasons:
        if explicit:
            raise SimulationError(
                f"shards={config.shards} is incompatible with "
                f"{', '.join(reasons)} (the sharded core models a "
                f"reliable, fault-free fabric)")
        return 1
    nnodes = (config.nranks + config.ranks_per_node - 1) \
        // config.ranks_per_node
    return max(1, min(n, nnodes))


def run_ranks(nranks: int,
              program: Callable[[Rank], Generator] | Sequence[Callable],
              args: Sequence[Any] = (),
              config: ClusterConfig | None = None,
              **kw) -> tuple[list[Any], Any]:
    """Convenience: build a cluster, run ``program`` on ``nranks`` ranks.

    Returns ``(per_rank_results, cluster)``.  With sharding in effect
    (``config.shards > 1`` or ``REPRO_SHARDS``, see
    :func:`effective_shards`) the run is executed by the conservative-
    parallel core in :mod:`repro.sim.shard` and the second element is a
    :class:`~repro.sim.shard.ShardedRun` summary instead of a
    :class:`Cluster` (same ``.time`` / ``.stats()`` / ``.cfg`` surface).
    """
    if config is None:
        config = ClusterConfig(nranks=nranks, **kw)
    shards = effective_shards(config)
    if shards > 1:
        from repro.sim.shard import run_sharded
        return run_sharded(program, args, config, shards)
    cluster = Cluster(config)
    results = cluster.run(program, args=args)
    return results, cluster
