"""Figure 4b: pipelined stencil, weak scaling."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.stencil import run_stencil


@pytest.mark.parametrize("mode", ("mp", "na"))
def test_fig4b_point(benchmark, mode):
    r = run_once(benchmark, run_stencil, mode, 4, rows=320, cols=1280 * 4)
    assert r["gmops"] > 0


def test_fig4b_table(benchmark):
    from repro.bench.figures import fig4b_stencil_weak
    table = run_once(benchmark, fig4b_stencil_weak,
                     nranks_list=(2, 4, 8), scale=0.15)
    print()
    print(table)
    # Paper shape: NA beats MP at every weak-scaling point, and both beat
    # the One Sided modes by a wide margin.
    for row in table.rows:
        assert row[5] > 1.0
        assert row[4] > 2 * max(row[2], row[3])
