"""§VI-B motif: dynamic producer sets and termination cost scaling."""

from benchmarks.conftest import run_once
from repro.apps.particles import run_particles


def test_particles_termination_scaling(benchmark):
    def sweep():
        out = {}
        for p in (2, 4, 8, 16):
            out[p] = {
                "mp": run_particles("mp", p, per_rank=40,
                                    steps=6)["time_us"],
                "na": run_particles("na", p, per_rank=40,
                                    steps=6)["time_us"],
            }
        return out

    times = run_once(benchmark, sweep)
    print()
    print("dynamic particle exchange, 6 steps (us):")
    for p, v in times.items():
        print(f"  P={p:3d}  MP(allreduce termination)={v['mp']:7.1f}  "
              f"NA(p2p notifications)={v['na']:7.1f}")
    # NA stays flat; MP's global termination grows with P.
    assert times[16]["na"] < times[2]["na"] * 1.5
    assert times[16]["mp"] > times[2]["mp"] * 1.5
    assert times[16]["na"] < times[16]["mp"]
