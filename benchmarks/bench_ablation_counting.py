"""Ablation: counting notifications vs per-message requests (§III).

The tree app gathers all children of a node with a single counting request;
this benchmark quantifies the saving against one request per child.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.cluster import run_ranks

NCHILDREN = 15


def _gather(counting: bool) -> float:
    def prog(ctx):
        win = yield from ctx.win_allocate(NCHILDREN * 8)
        if ctx.rank == 0:
            if counting:
                reqs = [(yield from ctx.na.notify_init(
                    win, expected_count=NCHILDREN))]
            else:
                reqs = []
                for c in range(1, ctx.size):
                    reqs.append((yield from ctx.na.notify_init(
                        win, source=c)))
            yield from ctx.barrier()
            t0 = ctx.now
            for r in reqs:
                yield from ctx.na.start(r)
            for r in reqs:
                yield from ctx.na.wait(r)
            return ctx.now - t0
        yield from ctx.barrier()
        yield from ctx.na.put_notify(win, np.zeros(1), 0,
                                     (ctx.rank - 1) * 8, tag=ctx.rank)
        return None

    results, _ = run_ranks(NCHILDREN + 1, prog)
    return results[0]


def test_counting_beats_per_child_requests(benchmark):
    def sweep():
        return _gather(True), _gather(False)

    t_counting, t_per_child = run_once(benchmark, sweep)
    print()
    print(f"gather of {NCHILDREN} children: counting={t_counting:.2f}us "
          f"per-child={t_per_child:.2f}us")
    assert t_counting <= t_per_child
