"""Ablation: the shared-memory inline-transfer cutoff (§IV-C).

Payloads at or below ``inline_max`` ride inside the notification cache
line — one line transfer instead of a separate copy.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong
from repro.cluster import ClusterConfig
from repro.network.loggp import TransportParams


def _latency(size, inline_max):
    cfg = ClusterConfig(nranks=2, ranks_per_node=2,
                        params=TransportParams(inline_max=inline_max))
    return run_pingpong("na", size, iters=15, same_node=True,
                        config=cfg)["half_rtt_us"]


def test_inline_transfer_saves_a_copy(benchmark):
    def sweep():
        return {
            "inline_on": _latency(40, inline_max=48),
            "inline_off": _latency(40, inline_max=0),
        }

    res = run_once(benchmark, sweep)
    print()
    print(f"40B shm notified put: inline={res['inline_on']:.3f}us "
          f"copy-path={res['inline_off']:.3f}us")
    assert res["inline_on"] < res["inline_off"]


def test_inline_irrelevant_above_cutoff(benchmark):
    def sweep():
        return (_latency(4096, inline_max=48),
                _latency(4096, inline_max=0))

    a, b = run_once(benchmark, sweep)
    assert a == pytest.approx(b, rel=1e-9)
