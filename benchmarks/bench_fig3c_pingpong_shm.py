"""Figure 3c: intra-node (XPMEM) ping-pong latency."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong


@pytest.mark.parametrize("mode", ("mp", "na", "onesided_pscw"))
def test_fig3c_point(benchmark, mode):
    r = run_once(benchmark, run_pingpong, mode, 64, iters=20,
                 same_node=True)
    assert r["half_rtt_us"] > 0


def test_fig3c_table(benchmark):
    from repro.bench.figures import fig3c_pingpong_shm
    table = run_once(benchmark, fig3c_pingpong_shm, sizes=(8, 512, 8192),
                     iters=10)
    print()
    print(table)
    # Paper shape: NA in the same latency class as MP intra-node (the
    # notification overhead dominates) and clearly below One Sided.
    for row in table.rows:
        mp, onesided, na = row[1], row[2], row[3]
        assert na < onesided
        assert na < 1.2 * mp
