"""Figure 2: wire-transaction audit per protocol."""

from benchmarks.conftest import run_once


def test_fig2_transactions(benchmark):
    from repro.bench.figures import fig2_transactions
    table = run_once(benchmark, fig2_transactions)
    print()
    print(table)
    counts = {row[0]: row[1] for row in table.rows}
    assert counts["na_put"] == 1
    assert counts["mp_eager"] == 1
    assert counts["mp_rndv"] == 3
    assert counts["onesided_put_flag"] >= 3
