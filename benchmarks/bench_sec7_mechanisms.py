"""§VII: the three notification mechanisms head to head.

The paper's related-work taxonomy: *counting* identifiers scale but carry
no value; *overwriting* identifiers carry a value but need one register per
expected notification and lose updates; the paper's *queueing* design
carries values, preserves arrival order, and needs no per-producer slots.

Workload: P producers each deliver M notifications with unpredictable
delays; the consumer must identify every one.  Queueing uses a single
wildcard request; overwriting needs P*M registers (one per expected
notification, to be collision-free); counting needs one counter per
producer and still cannot say *which* message arrived.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.cluster import run_ranks

NPRODUCERS = 4
MSGS_EACH = 8


def _producer_delay(ctx, i):
    return (ctx.rank * 7 + i * 13) % 20 + 1.0


#: time by which every notification has surely landed (µs)
SETTLE = 200.0


def _queueing() -> float:
    """Consumer CPU time per identified notification, queueing (NA)."""
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win)
            yield from ctx.barrier()
            yield ctx.timeout(SETTLE)        # everything has arrived
            seen = []
            t0 = ctx.now
            for _ in range(NPRODUCERS * MSGS_EACH):
                yield from ctx.na.start(req)
                st = yield from ctx.na.wait(req)
                seen.append((st.source, st.tag))
            t_cpu = ctx.now - t0
            assert len(set(seen)) == NPRODUCERS * MSGS_EACH
            return t_cpu / len(seen)
        yield from ctx.barrier()
        for i in range(MSGS_EACH):
            yield ctx.timeout(_producer_delay(ctx, i))
            disp = ((ctx.rank - 1) * MSGS_EACH + i) * 8   # disjoint slots
            yield from ctx.na.put_notify(win, np.zeros(1), 0, disp, tag=i)
        return None

    results, _ = run_ranks(NPRODUCERS + 1, prog)
    return results[0]


def _overwriting() -> float:
    """Same workload with one register per expected notification."""
    nregs = NPRODUCERS * MSGS_EACH

    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            space = yield from ctx.gaspi.notification_init(win, num=nregs)
            yield from ctx.barrier()
            yield ctx.timeout(SETTLE)
            seen = set()
            t0 = ctx.now
            for _ in range(nregs):
                slot, value = yield from ctx.gaspi.waitsome(space)
                seen.add(slot)
            t_cpu = ctx.now - t0
            assert len(seen) == nregs and space.overwrites == 0
            return t_cpu / nregs
        yield from ctx.barrier()
        for i in range(MSGS_EACH):
            yield ctx.timeout(_producer_delay(ctx, i))
            slot = (ctx.rank - 1) * MSGS_EACH + i
            yield from ctx.gaspi.write_notify(win, np.zeros(1), 0, slot * 8,
                                              slot=slot, value=i + 1)
        return None

    results, _ = run_ranks(NPRODUCERS + 1, prog)
    return results[0]


def _counting() -> float:
    """Counters identify the producer (one per source) but not the message."""
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 0:
            reqs = []
            for p in range(1, NPRODUCERS + 1):
                r = yield from ctx.counters.counter_init(
                    win, source=p, tag=p, expected_count=1)
                reqs.append(r)
            yield from ctx.barrier()
            yield ctx.timeout(SETTLE)
            t0 = ctx.now
            for _ in range(MSGS_EACH):
                for r in reqs:
                    yield from ctx.counters.start(r)
                for r in reqs:
                    yield from ctx.counters.wait(r)
            t_cpu = ctx.now - t0
            return t_cpu / (NPRODUCERS * MSGS_EACH)
        yield from ctx.barrier()
        for i in range(MSGS_EACH):
            yield ctx.timeout(_producer_delay(ctx, i))
            disp = ((ctx.rank - 1) * MSGS_EACH + i) * 8   # disjoint slots
            yield from ctx.counters.put_counted(win, np.zeros(1), 0, disp,
                                                tag=ctx.rank)
        return None

    results, _ = run_ranks(NPRODUCERS + 1, prog)
    return results[0]


def test_mechanism_comparison(benchmark):
    def sweep():
        return {"queueing": _queueing(), "overwriting": _overwriting(),
                "counting": _counting()}

    res = run_once(benchmark, sweep)
    print()
    print("consumer cost per identified notification (us):")
    print(f"  queueing (NA):     {res['queueing']:.3f}  "
          "(value + arrival order, no slot setup)")
    print(f"  overwriting/GASPI: {res['overwriting']:.3f}  "
          f"(needs {NPRODUCERS * MSGS_EACH} registers, loses order)")
    print(f"  counting:          {res['counting']:.3f}  "
          "(no message identity at all)")
    # The paper's argument: queueing stays competitive with the cheapest
    # mechanism while offering strictly more semantics.
    assert res["queueing"] < 3 * res["counting"] + 0.2
    # Overwriting pays register scans once many registers are armed.
    assert res["overwriting"] > res["counting"]
