"""Figure 1: pipelined stencil, strong scaling."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.stencil import run_stencil


@pytest.mark.parametrize("mode", ("mp", "na", "pscw"))
def test_fig1_point(benchmark, mode):
    r = run_once(benchmark, run_stencil, mode, 8, rows=256, cols=1280)
    assert r["gmops"] > 0


def test_fig1_table(benchmark):
    from repro.bench.figures import fig1_stencil_strong
    table = run_once(benchmark, fig1_stencil_strong,
                     nranks_list=(2, 8, 32), scale=0.2)
    print()
    print(table)
    # Paper shape: NA > 1.4x MP at 32 processes; One Sided far behind.
    last = table.rows[-1]
    assert last[0] == 32
    assert last[5] > 1.4                       # NA/MP
    assert last[4] > 4 * max(last[2], last[3])  # NA >> fence/PSCW
