"""Figure 4a: computation/communication overlap."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.overlap import OVERLAP_MODES, run_overlap


@pytest.mark.parametrize("mode", OVERLAP_MODES)
def test_fig4a_point(benchmark, mode):
    r = run_once(benchmark, run_overlap, mode, 8192, iters=10)
    assert 0.0 <= r["overlap_ratio"] <= 1.0


def test_fig4a_table(benchmark):
    from repro.bench.figures import fig4a_overlap
    table = run_once(benchmark, fig4a_overlap,
                     sizes=(64, 8192, 262144), iters=10)
    print()
    print(table)
    # Paper shape: NA overlaps well at every size; MP poorly at small.
    for row in table.rows:
        assert row[4] > 0.7          # NA column
    assert table.rows[0][1] < 0.5    # MP at 64 B
    assert table.rows[-1][1] > 0.9   # MP at 256 KB
