"""Figure 3a: put ping-pong latency, inter-node."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong

SIZES = (8, 2048, 131072)


@pytest.mark.parametrize("mode", ("mp", "onesided_pscw", "na", "raw"))
@pytest.mark.parametrize("size", SIZES)
def test_fig3a_point(benchmark, mode, size):
    r = run_once(benchmark, run_pingpong, mode, size, iters=20)
    assert r["half_rtt_us"] > 0


def test_fig3a_table(benchmark):
    from repro.bench.figures import fig3a_pingpong_put
    table = run_once(benchmark, fig3a_pingpong_put, sizes=(8, 512, 8192),
                     iters=10)
    print()
    print(table)
    # Paper shape: NA < 50% of One Sided on the smallest size.
    row8 = table.rows[0]
    na, onesided = row8[3], row8[2]
    assert na < 0.5 * onesided
    # NA beats eager MP at every size.
    for row in table.rows:
        assert row[3] < row[1]
