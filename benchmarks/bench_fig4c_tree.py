"""Figure 4c: 16-ary tree reduction latency."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.tree import TREE_MODES, run_tree_reduction


@pytest.mark.parametrize("mode", TREE_MODES)
def test_fig4c_point(benchmark, mode):
    r = run_once(benchmark, run_tree_reduction, mode, 32, arity=16, reps=3)
    assert r["time_us"] > 0


def test_fig4c_table(benchmark):
    from repro.bench.figures import fig4c_tree
    table = run_once(benchmark, fig4c_tree, nranks_list=(4, 16, 64),
                     reps=3)
    print()
    print(table)
    # Paper shape: NA beats MP, PSCW, and the vendor reduce at every P.
    for row in table.rows:
        na = row[4]
        assert na < row[1] and na < row[2] and na < row[3]
