"""Ablation: notified access on reliable vs unreliable networks (§VIII).

Two unreliability models are exercised:

* the *pricing* model (``TransportParams.reliable``): notified gets pay an
  extra ack round trip on the buffer-reuse path;
* the *mechanism* model (:class:`repro.faults.FaultPlan`): packets really
  drop and the transport retries with exponential backoff, duplicates are
  deduplicated by sequence number, and the drop/retry/duplicate counters
  are reported.  The NA-vs-flush_notify sweep below runs that machinery
  end-to-end at drop rates {0, 0.01, 0.1}.
"""

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong
from repro.bench.report import fault_table
from repro.cluster import ClusterConfig
from repro.faults import FaultPlan
from repro.network.loggp import TransportParams

DROP_RATES = (0.0, 0.01, 0.1)
FAULT_SEED = 2015                       # the paper's year; any fixed value


def _lossy_config(drop_prob: float) -> ClusterConfig:
    plan = (FaultPlan(drop_prob=drop_prob, seed=FAULT_SEED)
            if drop_prob else None)
    return ClusterConfig(nranks=2, ranks_per_node=1, faults=plan)


def test_unreliable_get_pays_roundtrip(benchmark):
    def sweep():
        rel = ClusterConfig(nranks=2,
                            params=TransportParams(reliable=True))
        unrel = ClusterConfig(nranks=2,
                              params=TransportParams(reliable=False))
        return (run_pingpong("na_get", 64, iters=15,
                             config=rel)["half_rtt_us"],
                run_pingpong("na_get", 64, iters=15,
                             config=unrel)["half_rtt_us"])

    t_rel, t_unrel = run_once(benchmark, sweep)
    print()
    print(f"notified-get half RTT: reliable={t_rel:.2f}us "
          f"unreliable={t_unrel:.2f}us")
    # The extra ack leg is roughly two wire latencies (data + ack).
    assert t_unrel > t_rel + 1.0


def test_put_unaffected_by_reliability_mode(benchmark):
    def sweep():
        rel = ClusterConfig(nranks=2,
                            params=TransportParams(reliable=True))
        unrel = ClusterConfig(nranks=2,
                              params=TransportParams(reliable=False))
        return (run_pingpong("na", 64, iters=15,
                             config=rel)["half_rtt_us"],
                run_pingpong("na", 64, iters=15,
                             config=unrel)["half_rtt_us"])

    t_rel, t_unrel = run_once(benchmark, sweep)
    assert t_rel == t_unrel


def test_retransmission_degrades_gracefully(benchmark):
    def sweep():
        lossy = ClusterConfig(
            nranks=2, params=TransportParams(drop_rate=0.2, rto=5.0),
            seed=3)
        clean = ClusterConfig(nranks=2)
        return (run_pingpong("na", 64, iters=30,
                             config=clean)["half_rtt_us"],
                run_pingpong("na", 64, iters=30,
                             config=lossy)["half_rtt_us"])

    t_clean, t_lossy = run_once(benchmark, sweep)
    print()
    print(f"NA put half RTT: clean={t_clean:.2f}us "
          f"20%-drop={t_lossy:.2f}us")
    assert t_lossy > t_clean


def test_na_vs_flush_notify_under_injected_drops(benchmark):
    """The paper's single-transaction argument, restated for lossy links:
    flush_notify exposes two transfers per handoff to the drop process, so
    injected loss hurts it at least as much as NA — and both survive with
    exactly-once delivery thanks to retry + dedup."""

    def sweep():
        rows = []
        for mode in ("na", "flush_notify"):
            for drop in DROP_RATES:
                res = run_pingpong(mode, 64, iters=25,
                                   config=_lossy_config(drop))
                res["drop_prob"] = drop
                rows.append(res)
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(fault_table(rows, title="NA vs flush_notify under packet loss"))
    by_key = {(r["mode"], r["drop_prob"]): r for r in rows}
    for mode in ("na", "flush_notify"):
        clean = by_key[(mode, 0.0)]
        assert "faults" not in clean           # no injector on the 0.0 runs
        # loss only ever slows a mode down, and monotonically so
        assert (by_key[(mode, 0.1)]["half_rtt_us"]
                > by_key[(mode, 0.01)]["half_rtt_us"]
                >= clean["half_rtt_us"])
        lossy = by_key[(mode, 0.1)]["faults"]
        assert lossy["retries"] > 0 and lossy["drops"] > 0
        assert lossy["lost_ops"] == 0          # every handoff recovered
    # two transfers per handoff: flush_notify is the slower mechanism
    # at every loss rate
    for drop in DROP_RATES:
        assert (by_key[("flush_notify", drop)]["half_rtt_us"]
                > by_key[("na", drop)]["half_rtt_us"])


def test_fault_injected_run_is_bit_reproducible(benchmark):
    """Acceptance: a fixed-seed FaultPlan(drop_prob=0.1) NA ping-pong run
    completes via retries and reproduces bit-for-bit."""

    def once():
        return run_pingpong("na", 64, iters=25, config=_lossy_config(0.1))

    first = run_once(benchmark, once)
    second = once()
    assert first["half_rtt_us"] == second["half_rtt_us"]
    assert first["faults"] == second["faults"]
    assert first["faults"]["retries"] > 0
    assert first["faults"]["lost_ops"] == 0
