"""Ablation: notified gets on reliable vs unreliable networks (§VIII).

On a reliable fabric the target's notification fires when the read is
served; on an unreliable one it may only fire after the data reached the
origin plus an ack — one extra round trip on the buffer-reuse path.
"""

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong
from repro.cluster import ClusterConfig
from repro.network.loggp import TransportParams


def test_unreliable_get_pays_roundtrip(benchmark):
    def sweep():
        rel = ClusterConfig(nranks=2,
                            params=TransportParams(reliable=True))
        unrel = ClusterConfig(nranks=2,
                              params=TransportParams(reliable=False))
        return (run_pingpong("na_get", 64, iters=15,
                             config=rel)["half_rtt_us"],
                run_pingpong("na_get", 64, iters=15,
                             config=unrel)["half_rtt_us"])

    t_rel, t_unrel = run_once(benchmark, sweep)
    print()
    print(f"notified-get half RTT: reliable={t_rel:.2f}us "
          f"unreliable={t_unrel:.2f}us")
    # The extra ack leg is roughly two wire latencies (data + ack).
    assert t_unrel > t_rel + 1.0


def test_put_unaffected_by_reliability_mode(benchmark):
    def sweep():
        rel = ClusterConfig(nranks=2,
                            params=TransportParams(reliable=True))
        unrel = ClusterConfig(nranks=2,
                              params=TransportParams(reliable=False))
        return (run_pingpong("na", 64, iters=15,
                             config=rel)["half_rtt_us"],
                run_pingpong("na", 64, iters=15,
                             config=unrel)["half_rtt_us"])

    t_rel, t_unrel = run_once(benchmark, sweep)
    assert t_rel == t_unrel


def test_retransmission_degrades_gracefully(benchmark):
    def sweep():
        lossy = ClusterConfig(
            nranks=2, params=TransportParams(drop_rate=0.2, rto=5.0),
            seed=3)
        clean = ClusterConfig(nranks=2)
        return (run_pingpong("na", 64, iters=30,
                             config=clean)["half_rtt_us"],
                run_pingpong("na", 64, iters=30,
                             config=lossy)["half_rtt_us"])

    t_clean, t_lossy = run_once(benchmark, sweep)
    print()
    print(f"NA put half RTT: clean={t_clean:.2f}us "
          f"20%-drop={t_lossy:.2f}us")
    assert t_lossy > t_clean
