"""Ablation: the FMA↔BTE engine crossover for notified puts.

FMA has lower latency but occupies the CPU for the injection; BTE adds
descriptor-post cost and higher L but offloads.  The default crossover
(4KB) should sit near where the latency curves intersect.
"""

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong
from repro.cluster import ClusterConfig
from repro.network.loggp import TransportParams


def _latency(size, fma_max):
    cfg = ClusterConfig(nranks=2, params=TransportParams(fma_max=fma_max))
    return run_pingpong("na", size, iters=15, config=cfg)["half_rtt_us"]


def test_fma_bte_crossover(benchmark):
    def sweep():
        out = {}
        for size in (512, 4096, 65536):
            out[size] = {
                "fma": _latency(size, fma_max=1 << 22),   # force FMA
                "bte": _latency(size, fma_max=0),         # force BTE
            }
        return out

    res = run_once(benchmark, sweep)
    print()
    for size, v in res.items():
        print(f"  {size:6d}B  FMA={v['fma']:.3f}us  BTE={v['bte']:.3f}us")
    # Small messages favour FMA (lower L, no descriptor post)...
    assert res[512]["fma"] < res[512]["bte"]
    # ...while the raw latency difference shrinks with size (both
    # curves are G-dominated and the Gs differ by ~4%).
    gap_small = res[512]["bte"] - res[512]["fma"]
    gap_large = res[65536]["bte"] - res[65536]["fma"]
    assert gap_large < gap_small * 1.5


def test_bte_overlaps_better_for_large(benchmark):
    """The real reason for BTE: CPU offload. At 64KB the FMA injection
    occupies the CPU for the whole transfer; BTE posts and returns."""
    from repro.apps.overlap import run_overlap

    def sweep():
        fma_cfg = ClusterConfig(
            nranks=2, params=TransportParams(fma_max=1 << 22))
        bte_cfg = ClusterConfig(
            nranks=2, params=TransportParams(fma_max=0))
        return (run_overlap("na", 65536, iters=8,
                            config=fma_cfg)["overlap_ratio"],
                run_overlap("na", 65536, iters=8,
                            config=bte_cfg)["overlap_ratio"])

    ov_fma, ov_bte = run_once(benchmark, sweep)
    print()
    print(f"64KB notified-put overlap: FMA={ov_fma:.2f} BTE={ov_bte:.2f}")
    assert ov_bte > ov_fma
