"""Figure 5: task-based Cholesky weak scaling (8KB tiles)."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.cholesky import run_cholesky
from repro.cluster import ClusterConfig


@pytest.mark.parametrize("mode", ("mp", "onesided", "na"))
def test_fig5_point(benchmark, mode):
    cfg = ClusterConfig(nranks=8, flops_per_us=60000)
    r = run_once(benchmark, run_cholesky, mode, 8, ntiles=12, b=32,
                 config=cfg)
    assert r["gflops"] > 0


def test_fig5_table(benchmark):
    from repro.bench.figures import fig5_cholesky
    table = run_once(benchmark, fig5_cholesky, nranks_list=(1, 4, 16),
                     base_tiles=8)
    print()
    print(table)
    # Paper shape: NA leads MP, which leads the One Sided ring protocol,
    # and the NA advantage grows with scale.
    for row in table.rows[1:]:
        assert row[4] > row[2] > row[3]
    assert table.rows[-1][5] >= table.rows[1][5] * 0.95
