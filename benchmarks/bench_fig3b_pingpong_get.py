"""Figure 3b: get ping-pong latency, inter-node."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong


@pytest.mark.parametrize("size", (8, 8192, 131072))
def test_fig3b_na_get_point(benchmark, size):
    r = run_once(benchmark, run_pingpong, "na_get", size, iters=20)
    assert r["half_rtt_us"] > 0


def test_fig3b_table(benchmark):
    from repro.bench.figures import fig3b_pingpong_get
    table = run_once(benchmark, fig3b_pingpong_get, sizes=(8, 512, 8192),
                     iters=10)
    print()
    print(table)
    # Paper shape: NA-get always beats One Sided.
    for row in table.rows:
        assert row[3] < row[2]
