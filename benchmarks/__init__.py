"""Benchmark suite regenerating the paper's tables and figures.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_fig*`` /
``bench_table*`` file covers one figure or table of the paper; the
``bench_ablation_*`` files cover the design knobs called out in DESIGN.md.
"""
