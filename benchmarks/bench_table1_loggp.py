"""Table I: LogGP parameters recovered by calibration."""

import pytest

from benchmarks.conftest import run_once


def test_table1(benchmark):
    from repro.bench.figures import table1_loggp
    table = run_once(benchmark, table1_loggp, iters=15)
    print()
    print(table)
    for row in table.rows:
        _, l_fit, l_paper, g_fit, g_paper = row
        assert l_fit == pytest.approx(l_paper, rel=0.05)
        assert g_fit == pytest.approx(g_paper, rel=0.05)
