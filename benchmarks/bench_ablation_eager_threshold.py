"""Ablation: the MP eager↔rendezvous threshold.

Sweeps ``eager_max`` and shows the crossover: below the message size, the
rendezvous path (3 transactions) costs more than eager's copy; far above,
eager's copy costs more than rendezvous' zero-copy transfer.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong
from repro.cluster import ClusterConfig
from repro.network.loggp import TransportParams

SIZE = 16384


def _latency(eager_max):
    cfg = ClusterConfig(nranks=2,
                        params=TransportParams(eager_max=eager_max))
    return run_pingpong("mp", SIZE, iters=15, config=cfg)["half_rtt_us"]


def test_eager_threshold_ablation(benchmark):
    def sweep():
        return {th: _latency(th) for th in (1024, 16384, 1 << 20)}

    res = run_once(benchmark, sweep)
    print()
    print("MP half-RTT at 16KB vs eager_max: "
          + ", ".join(f"{k}B->{v:.2f}us" for k, v in res.items()))
    # 16KB eagerly (th=16384) pays a 16KB copy; rendezvous (th=1024)
    # pays 2 extra control transactions. For this size the copy is cheaper.
    assert res[16384] < res[1024]
    # With a huge threshold the result equals the 16384 threshold (same
    # protocol decision).
    assert res[16384] == pytest.approx(res[1 << 20])


def test_rendezvous_wins_for_large(benchmark):
    def sweep():
        big = 512 * 1024
        eager_cfg = ClusterConfig(
            nranks=2, params=TransportParams(eager_max=1 << 20))
        rndv_cfg = ClusterConfig(
            nranks=2, params=TransportParams(eager_max=8192))
        return (run_pingpong("mp", big, iters=5,
                             config=eager_cfg)["half_rtt_us"],
                run_pingpong("mp", big, iters=5,
                             config=rndv_cfg)["half_rtt_us"])

    eager, rndv = run_once(benchmark, sweep)
    print()
    print(f"512KB: eager={eager:.1f}us rendezvous={rndv:.1f}us")
    assert rndv < eager          # the copy dominates at half a megabyte
