"""§V: matching-path cache misses and §V-A call costs."""

import pytest

from benchmarks.conftest import run_once
from repro.cluster import run_ranks


def test_sec5_cache_miss_table(benchmark):
    from repro.bench.figures import sec5_cache_misses
    table = run_once(benchmark, sec5_cache_misses)
    print()
    print(table)
    cold = table.rows[0]
    assert cold[3] <= 2            # total misses, the paper's bound


def test_sec5_call_costs(benchmark):
    """Reproduce the §V-A call-cost model: t_init, t_free, t_start, and
    the notified-access issue cost t_na."""
    def measure():
        out = {}

        def prog(ctx):
            import numpy as np
            win = yield from ctx.win_allocate(64)
            t0 = ctx.now
            req = yield from ctx.na.notify_init(win)
            out["t_init"] = ctx.now - t0
            t0 = ctx.now
            yield from ctx.na.start(req)
            out["t_start"] = ctx.now - t0
            t0 = ctx.now
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=0)
            out["t_na"] = ctx.now - t0
            yield from ctx.na.wait(req)
            t0 = ctx.now
            yield from ctx.na.request_free(req)
            out["t_free"] = ctx.now - t0
            return None

        run_ranks(1, prog)
        return out

    costs = run_once(benchmark, measure)
    print()
    print("Section V-A call costs (us): "
          + ", ".join(f"{k}={v:.3f}" for k, v in sorted(costs.items())))
    assert costs["t_init"] == pytest.approx(0.07)
    assert costs["t_free"] == pytest.approx(0.04)
    assert costs["t_start"] == pytest.approx(0.008)
    assert costs["t_na"] >= 0.29        # o_send plus engine occupancy
