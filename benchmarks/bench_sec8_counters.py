"""§VIII: completion counters vs queue matching overheads."""

import numpy as np

from benchmarks.conftest import run_once
from repro.cluster import run_ranks


def _wait_overhead(use_counter: bool, nmsgs: int = 50) -> float:
    """Mean target-side wait cost once the notification has arrived."""
    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 1:
            if use_counter:
                req = yield from ctx.counters.counter_init(win, source=0,
                                                           tag=1)
                eng = ctx.counters
            else:
                req = yield from ctx.na.notify_init(win, source=0, tag=1)
                eng = ctx.na
            total = 0.0
            for _ in range(nmsgs):
                yield from eng.start(req)
                yield from ctx.barrier()
                yield from ctx.barrier()
                t0 = ctx.now
                yield from eng.wait(req)
                total += ctx.now - t0
                yield from ctx.barrier()
            return total / nmsgs
        for _ in range(nmsgs):
            yield from ctx.barrier()
            if use_counter:
                yield from ctx.counters.put_counted(win, np.zeros(1), 1,
                                                    0, tag=1)
            else:
                yield from ctx.na.put_notify(win, np.zeros(1), 1, 0, tag=1)
            yield from win.flush(1)
            yield from ctx.barrier()
            yield from ctx.barrier()
        return None

    results, _ = run_ranks(2, prog)
    return results[1]


def test_counter_wait_cheaper(benchmark):
    def sweep():
        return _wait_overhead(True), _wait_overhead(False)

    t_counter, t_queue = run_once(benchmark, sweep)
    print()
    print(f"target wait overhead: counter={t_counter:.3f}us "
          f"queue-matching={t_queue:.3f}us (paper o_r=0.07us)")
    assert t_counter < t_queue
    assert t_queue >= 0.07 - 1e-9
