"""Benchmark-suite helpers.

Every benchmark wraps a simulation driver with ``benchmark.pedantic`` at one
round (the simulator is deterministic, so repeated rounds only measure
Python overhead), asserts the paper's shape claim on the result, and prints
the regenerated series so ``pytest benchmarks/ --benchmark-only`` output
doubles as the reproduction record.
"""

from __future__ import annotations

from repro.sim.engine import events_scheduled


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result.

    Also records the number of simulator heap events the call scheduled as
    ``extra_info["sim_events"]`` — the numerator of the events/sec metric
    the bench-smoke job tracks (free to collect: the engine counts
    schedules anyway).
    """
    before = events_scheduled()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                iterations=1)
    extra = getattr(benchmark, "extra_info", None)
    if extra is not None:
        extra["sim_events"] = events_scheduled() - before
    return result
