"""Benchmark-suite helpers.

Every benchmark wraps a simulation driver with ``benchmark.pedantic`` at one
round (the simulator is deterministic, so repeated rounds only measure
Python overhead), asserts the paper's shape claim on the result, and prints
the regenerated series so ``pytest benchmarks/ --benchmark-only`` output
doubles as the reproduction record.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
