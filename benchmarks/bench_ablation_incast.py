"""Ablation: incast fan-in width vs gather completion time.

Receiver-side link serialization means a P-wide gather of large tiles
drains in ~P transfer times; counting notifications hide the *software*
cost, not the wire. This bounds how wide a single level of the Figure 4c
tree can usefully be for bandwidth-bound payloads.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.cluster import run_ranks

TILE = 65536


def _gather_time(nsenders: int) -> float:
    def prog(ctx):
        win = yield from ctx.win_allocate(nsenders * TILE)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(
                win, expected_count=nsenders)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            t0 = ctx.now
            yield from ctx.na.wait(req)
            return ctx.now - t0
        yield from ctx.barrier()
        yield from ctx.na.put_notify(win, np.zeros(TILE // 8), 0,
                                     (ctx.rank - 1) * TILE, tag=1)
        return None

    results, _ = run_ranks(nsenders + 1, prog)
    return results[0]


def test_incast_scaling(benchmark):
    def sweep():
        return {n: _gather_time(n) for n in (1, 2, 4, 8)}

    times = run_once(benchmark, sweep)
    print()
    print("64KB gather drain time vs fan-in: "
          + ", ".join(f"{n}->{t:.1f}us" for n, t in times.items()))
    # Wide gathers drain roughly linearly in the fan-in (wire-bound).
    assert times[8] > 3.0 * times[2]
    assert times[2] > times[1]
