"""Bench-smoke gate: parallel-runner equality + events/sec regression check.

Run by the CI ``bench-smoke`` job (and usable locally)::

    PYTHONPATH=src python benchmarks/smoke.py --jobs 2 --json out/ \
        --baselines benchmarks/baselines

For each scaled-down experiment in :data:`repro.bench.runner.SMOKE_CONFIGS`
this script

1. runs the experiment serially and with ``--jobs N`` and fails unless the
   two rendered tables are **byte-identical** (the runner's merge contract);
2. writes ``BENCH_<id>.json`` for the parallel run under ``--json``;
3. compares against the committed baseline in ``--baselines``: the row
   values must match exactly (the simulation is deterministic) and the
   measured events/sec must be at least ``1/TOLERANCE`` of the baseline's
   (3x by default — generous enough for slow CI runners, tight enough to
   catch an engine fast-path regression that reverts the overhaul).

Exits non-zero on the first violated check.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.runner import (
    SMOKE_CONFIGS,
    run_experiment,
    write_bench_json,
)

#: events/sec may be this many times slower than the committed baseline
TOLERANCE = 3.0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=2,
                    help="pool size for the parallel leg (default 2)")
    ap.add_argument("--json", metavar="DIR", default=None,
                    help="write BENCH_<id>.json files under DIR")
    ap.add_argument("--baselines", metavar="DIR", default=None,
                    help="directory of committed BENCH_<id>.json baselines")
    args = ap.parse_args(argv)

    failures: list[str] = []
    total_wall = 0.0
    for eid, kwargs in SMOKE_CONFIGS.items():
        serial_table, serial_meta = run_experiment(eid, jobs=1, **kwargs)
        par_table, par_meta = run_experiment(eid, jobs=args.jobs, **kwargs)
        total_wall += par_meta["wall_s"]
        print(f"[{eid}] serial {serial_meta['wall_s']:.2f}s / "
              f"jobs={par_meta['jobs']} {par_meta['wall_s']:.2f}s, "
              f"{par_meta['events']:,} events, "
              f"{par_meta['events_per_s']:,.0f} events/s")

        if str(serial_table) != str(par_table):
            failures.append(f"{eid}: parallel table differs from serial")
        if serial_meta["events"] != par_meta["events"]:
            failures.append(
                f"{eid}: event counts differ (serial "
                f"{serial_meta['events']} vs parallel {par_meta['events']})")

        if args.json is not None:
            path = write_bench_json(args.json, par_table, par_meta)
            print(f"  wrote {path}")

        if args.baselines is not None:
            base_path = f"{args.baselines}/BENCH_{eid}.json"
            try:
                with open(base_path) as fh:
                    base = json.load(fh)
            except OSError as exc:
                failures.append(f"{eid}: missing baseline {base_path}: {exc}")
                continue
            from repro.bench.runner import bench_payload
            now = bench_payload(par_table, par_meta)
            if now["rows"] != base["rows"]:
                failures.append(f"{eid}: table rows differ from baseline "
                                f"{base_path} (determinism regression)")
            if now["events"] != base["events"]:
                failures.append(
                    f"{eid}: simulated event count changed "
                    f"({base['events']} -> {now['events']}); update the "
                    f"baseline if the schedule change is intentional")
            floor = base["events_per_s"] / TOLERANCE
            if now["events_per_s"] < floor:
                failures.append(
                    f"{eid}: events/sec regressed: {now['events_per_s']:,.0f}"
                    f" < {floor:,.0f} (baseline "
                    f"{base['events_per_s']:,.0f} / {TOLERANCE}x tolerance)")

    print(f"[smoke] total parallel wall {total_wall:.2f}s")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("[smoke] all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
