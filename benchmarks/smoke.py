"""Bench-smoke gate: scheduler matrix + parallel equality + trend check.

Run by the CI ``bench-smoke`` job (and usable locally)::

    PYTHONPATH=src python benchmarks/smoke.py --jobs 2 --json out/ \
        --baselines benchmarks/baselines --history benchmarks/history

For each scaled-down experiment in :data:`repro.bench.runner.SMOKE_CONFIGS`
this script

1. runs the experiment under every scheduler in ``--schedulers`` (default
   ``calendar,heap``) and fails unless all rendered tables and simulated
   event counts are **byte-identical** — the scheduler equivalence matrix
   for the engine's ``(time, priority, seq)`` ordering contract;
2. runs the first (primary) scheduler with ``--jobs N`` and fails unless
   the parallel table matches the serial one (the runner's merge
   contract), writing ``BENCH_<id>.json`` for that run under ``--json``;
3. with ``--shards LIST`` (e.g. ``--shards 1,2,4``), re-runs the
   experiments in :data:`SHARD_SMOKE` at every listed shard count and
   fails unless each rendered table is byte-identical to the serial run —
   the sharded conservative-parallel core's exactness contract.  Only the
   tables are compared: the sharded core schedules extra boundary-
   machinery events, so raw event counts legitimately differ;
4. compares against the committed baseline in ``--baselines``: the row
   values must match exactly (the simulation is deterministic) and the
   measured events/sec must be at least ``1/TOLERANCE`` of the baseline's
   (3x by default — generous enough for slow CI runners, tight enough to
   catch an engine fast-path regression that reverts the overhaul);
5. with ``--history DIR``, checks the measurement against the events/sec
   trend ledger (fails when it falls below the best recent entry by more
   than ``repro.bench.history.TREND_TOLERANCE``) and then appends it, so
   the ledger accumulates one entry per CI run.

Exits non-zero on the first violated check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.figures import ALL_EXPERIMENTS
from repro.bench.history import append_entry, trend_check
from repro.bench.runner import (
    SMOKE_CONFIGS,
    bench_payload,
    run_experiment,
    write_bench_json,
)

#: events/sec may be this many times slower than the committed baseline
TOLERANCE = 3.0

#: experiments exercised by the ``--shards`` equivalence matrix — small
#: cluster-driven sweeps whose tables carry no shard-count column, so
#: byte-equality across shard counts is the exactness contract verbatim
SHARD_SMOKE = ("fig1", "fig4c", "svc_kv", "svc_kv_ft", "svc_pubsub")


def coverage_failures(registry=None, configs=None) -> list[str]:
    """Registry/SMOKE_CONFIGS drift, as loud failure messages.

    Registering an experiment without a smoke config would silently
    exempt it from the baseline and trend gates — this turns the gap
    (in either direction) into a failed check instead.
    """
    registry = ALL_EXPERIMENTS if registry is None else registry
    configs = SMOKE_CONFIGS if configs is None else configs
    failures = []
    for eid in sorted(set(registry) - set(configs)):
        failures.append(
            f"{eid}: registered in ALL_EXPERIMENTS but has no "
            f"SMOKE_CONFIGS entry — add one so CI gives it a committed "
            f"baseline and a trend-ledger series")
    for eid in sorted(set(configs) - set(registry)):
        failures.append(
            f"{eid}: SMOKE_CONFIGS entry for an experiment that is not "
            f"in ALL_EXPERIMENTS — remove it or register the experiment")
    return failures


def baseline_failures(eid: str, base_path: str,
                      now: dict) -> list[str]:
    """Compare one run's payload against a committed baseline file.

    Every malformed-input path (missing file, unparsable JSON, absent
    keys) returns a named failure instead of raising — a new experiment
    whose baseline was never committed must fail the gate with a message
    saying exactly that, not crash it with a KeyError.
    """
    try:
        with open(base_path) as fh:
            base = json.load(fh)
    except OSError as exc:
        return [f"{eid}: missing baseline {base_path} ({exc}); commit "
                f"the BENCH_{eid}.json written by the smoke --json "
                f"output"]
    except ValueError as exc:
        return [f"{eid}: baseline {base_path} is not valid JSON: {exc}"]
    missing = [k for k in ("rows", "events", "events_per_s")
               if k not in base]
    if missing:
        return [f"{eid}: baseline {base_path} lacks required keys "
                f"{missing}; regenerate it"]
    failures = []
    if now["rows"] != base["rows"]:
        failures.append(f"{eid}: table rows differ from baseline "
                        f"{base_path} (determinism regression)")
    if now["events"] != base["events"]:
        failures.append(
            f"{eid}: simulated event count changed "
            f"({base['events']} -> {now['events']}); update the "
            f"baseline if the schedule change is intentional")
    floor = base["events_per_s"] / TOLERANCE
    if now["events_per_s"] < floor:
        failures.append(
            f"{eid}: events/sec regressed: {now['events_per_s']:,.0f}"
            f" < {floor:,.0f} (baseline "
            f"{base['events_per_s']:,.0f} / {TOLERANCE}x tolerance)")
    return failures


def _run_with_scheduler(name: str, eid: str, jobs: int, kwargs: dict):
    """Run one experiment with REPRO_SCHEDULER pinned to ``name``.

    The env var (not Engine(scheduler=...)) is the right knob here: the
    parallel runner's worker processes inherit it, so every engine in the
    fork pool uses the same implementation.
    """
    prev = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = name
    try:
        return run_experiment(eid, jobs=jobs, **kwargs)
    finally:
        if prev is None:
            del os.environ["REPRO_SCHEDULER"]
        else:
            os.environ["REPRO_SCHEDULER"] = prev


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=2,
                    help="pool size for the parallel leg (default 2)")
    ap.add_argument("--json", metavar="DIR", default=None,
                    help="write BENCH_<id>.json files under DIR")
    ap.add_argument("--baselines", metavar="DIR", default=None,
                    help="directory of committed BENCH_<id>.json baselines")
    ap.add_argument("--schedulers", default="calendar,heap",
                    help="comma-separated scheduler equivalence matrix; "
                         "the first entry is the primary (default "
                         "'calendar,heap')")
    ap.add_argument("--history", metavar="DIR", default=None,
                    help="events/sec trend ledger: check against it, then "
                         "append this run")
    ap.add_argument("--shards", default=None,
                    help="comma-separated shard counts (e.g. '1,2,4'): "
                         "re-run the SHARD_SMOKE experiments at each and "
                         "require byte-identical tables")
    args = ap.parse_args(argv)
    schedulers = [s for s in args.schedulers.split(",") if s]
    shard_counts = ([int(s) for s in args.shards.split(",") if s]
                    if args.shards else [])

    failures: list[str] = coverage_failures()
    total_wall = 0.0
    for eid, kwargs in SMOKE_CONFIGS.items():
        if eid not in ALL_EXPERIMENTS:
            continue  # already reported by coverage_failures
        # 1. scheduler equivalence matrix (serial legs)
        serial_table = serial_meta = None
        for sched in schedulers:
            table, meta = _run_with_scheduler(sched, eid, 1, kwargs)
            if serial_table is None:
                serial_table, serial_meta = table, meta
                continue
            if str(table) != str(serial_table):
                failures.append(
                    f"{eid}: {sched} scheduler table differs from "
                    f"{schedulers[0]} (ordering-contract violation)")
            if meta["events"] != serial_meta["events"]:
                failures.append(
                    f"{eid}: {sched} scheduler event count differs from "
                    f"{schedulers[0]} ({meta['events']} vs "
                    f"{serial_meta['events']})")

        # 2. parallel merge contract (primary scheduler)
        par_table, par_meta = _run_with_scheduler(
            schedulers[0], eid, args.jobs, kwargs)
        total_wall += par_meta["wall_s"]
        print(f"[{eid}] serial {serial_meta['wall_s']:.2f}s / "
              f"jobs={par_meta['jobs']} {par_meta['wall_s']:.2f}s, "
              f"{par_meta['events']:,} events, "
              f"{par_meta['events_per_s']:,.0f} events/s "
              f"({par_meta['scheduler']} scheduler, matrix "
              f"{'x'.join(schedulers)})")

        if str(serial_table) != str(par_table):
            failures.append(f"{eid}: parallel table differs from serial")
        if serial_meta["events"] != par_meta["events"]:
            failures.append(
                f"{eid}: event counts differ (serial "
                f"{serial_meta['events']} vs parallel {par_meta['events']})")

        # 3. sharded-core exactness matrix (tables only; the sharded core
        # schedules extra boundary events, so counts may differ)
        if shard_counts and eid in SHARD_SMOKE:
            for n in shard_counts:
                sh_table, sh_meta = _run_with_scheduler(
                    schedulers[0], eid, 1, {**kwargs, "shards": n})
                ok = str(sh_table) == str(serial_table)
                print(f"  shards={n}: {sh_meta['wall_s']:.2f}s, "
                      f"{'byte-identical' if ok else 'MISMATCH'}")
                if not ok:
                    failures.append(
                        f"{eid}: shards={n} table differs from serial "
                        f"(sharded-core exactness violation)")

        if args.json is not None:
            path = write_bench_json(args.json, par_table, par_meta)
            print(f"  wrote {path}")

        if args.baselines is not None:
            failures.extend(baseline_failures(
                eid, f"{args.baselines}/BENCH_{eid}.json",
                bench_payload(par_table, par_meta)))

        if args.history is not None:
            # check before appending, so today's slow run can't raise
            # tomorrow's floor; only same-configuration entries count.
            # require_history: a registered experiment must arrive with
            # a seeded ledger series, not silently skip the trend gate.
            msg = trend_check(args.history, eid, par_meta["events_per_s"],
                              kwargs=par_meta["kwargs"],
                              require_history=True)
            if msg is not None:
                failures.append(msg)
            entry = append_entry(args.history, par_meta)
            print(f"  ledger += {entry['events_per_s']:,.0f} ev/s "
                  f"[rev {entry['rev'] or '?'}]")

    print(f"[smoke] total parallel wall {total_wall:.2f}s")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("[smoke] all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
