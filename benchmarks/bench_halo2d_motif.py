"""The introduction's halo-exchange motif: 2D Jacobi with typed halos."""

import pytest

from benchmarks.conftest import run_once
from repro.apps.halo2d import HALO2D_MODES, run_halo2d


@pytest.mark.parametrize("mode", HALO2D_MODES)
def test_halo2d_point(benchmark, mode):
    r = run_once(benchmark, run_halo2d, mode, 4, g=64, iters=6)
    assert r["mlups"] > 0


def test_halo2d_comparison(benchmark):
    def sweep():
        return {m: run_halo2d(m, 9, g=96, iters=6)["mlups"]
                for m in HALO2D_MODES}

    perf = run_once(benchmark, sweep)
    print()
    print("2D Jacobi halo exchange, 9 ranks, 96x96 grid (MLUP/s): "
          + ", ".join(f"{m}={v:.1f}" for m, v in perf.items()))
    # Counting notifications win the per-iteration neighbourhood sync.
    assert perf["na"] > perf["mp"] > perf["pscw"]
