"""§III-A: Notified Access on a future large-scale on-chip network.

The paper conjectures NA "may also be a viable interface for future
large-scale on-chip networks where transfer pipelining becomes a must and
synchronization has a higher relative cost."  The ``noc_params`` preset
(nanosecond latencies, lean software) tests that conjecture on the same
protocol implementations.
"""

from benchmarks.conftest import run_once
from repro.apps.pingpong import run_pingpong
from repro.apps.stencil import run_stencil
from repro.cluster import ClusterConfig
from repro.network.loggp import noc_params


def test_noc_pingpong_ordering(benchmark):
    def sweep():
        out = {}
        for mode in ("mp", "na", "onesided_pscw", "raw"):
            cfg = ClusterConfig(nranks=2, params=noc_params())
            out[mode] = run_pingpong(mode, 64, iters=15,
                                     config=cfg)["half_rtt_us"] * 1000
        return out

    ns = run_once(benchmark, sweep)
    print()
    print("on-chip 64B ping-pong (ns): "
          + ", ".join(f"{m}={v:.0f}" for m, v in ns.items()))
    assert ns["na"] < ns["mp"] < ns["onesided_pscw"]
    assert ns["raw"] <= ns["na"]


def test_noc_stencil_na_advantage_persists(benchmark):
    """The producer-consumer advantage carries over: relative software
    overheads dominate even harder at nanosecond latencies."""
    def sweep():
        out = {}
        for mode in ("mp", "na"):
            cfg = ClusterConfig(nranks=8, params=noc_params(),
                                flops_per_us=8000.0)
            out[mode] = run_stencil(mode, 8, rows=200, cols=1280,
                                    config=cfg)["gmops"]
        return out

    gm = run_once(benchmark, sweep)
    print()
    print(f"on-chip stencil GMOPS: mp={gm['mp']:.1f} na={gm['na']:.1f} "
          f"(NA/MP={gm['na'] / gm['mp']:.2f})")
    assert gm["na"] > gm["mp"]
