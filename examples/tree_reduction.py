#!/usr/bin/env python
"""Counting notifications: a 16-ary reduction tree (Figure 4c).

Each inner node waits for *all* of its children with a single counting
request (``expected_count = #children``) instead of one request or receive
per child — the bulk-notification optimization of §III.

Run:  python examples/tree_reduction.py
"""

from repro.apps.tree import TREE_MODES, run_tree_reduction

P = 64
ARITY = 16


def main():
    print(f"{ARITY}-ary tree reduction of one double over {P} ranks\n")
    print(f"{'mode':8s} {'time_us':>9s}")
    times = {}
    for mode in TREE_MODES:
        r = run_tree_reduction(mode, P, arity=ARITY, elems=1, reps=5)
        times[mode] = r["time_us"]
        print(f"{mode:8s} {r['time_us']:9.2f}")
    print(f"\nNotified Access vs vendor-optimized reduce: "
          f"{times['vendor'] / times['na']:.2f}x faster")
    print(f"Notified Access vs message passing:        "
          f"{times['mp'] / times['na']:.2f}x faster")


if __name__ == "__main__":
    main()
