#!/usr/bin/env python
"""Pipelined stencil (PRK Sync_p2p) across all synchronization modes.

The wavefront pipeline moves one double per row across each rank boundary —
the latency-bound producer-consumer pattern of Figures 1/4b.  This example
runs a reduced domain with real numerics, checks the result against the
serial reference, and prints the GMOPS comparison.

Run:  python examples/halo_pipeline.py
"""

from repro.apps.stencil import STENCIL_MODES, run_stencil

P = 4
ROWS, COLS = 200, 256


def main():
    print(f"Sync_p2p on a {COLS}x{ROWS} grid over {P} ranks\n")
    print(f"{'mode':8s} {'time_us':>10s} {'GMOPS':>8s}  numerics")
    baseline = None
    for mode in STENCIL_MODES:
        r = run_stencil(mode, P, rows=ROWS, cols=COLS, iters=2,
                        verify=True)
        ok = abs(r["corner"] - r["corner_expected"]) < 1e-9
        print(f"{mode:8s} {r['time_us']:10.1f} {r['gmops']:8.3f}  "
              f"{'matches serial reference' if ok else 'MISMATCH'}")
        if mode == "mp":
            baseline = r["gmops"]
        if mode == "na":
            print(f"{'':8s} -> Notified Access is "
                  f"{r['gmops'] / baseline:.2f}x Message Passing")


if __name__ == "__main__":
    main()
