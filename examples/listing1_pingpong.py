#!/usr/bin/env python
"""The paper's Listing 1, transcribed through the foMPI-style shim.

Compare side by side with the C code in §III-B: window of 2*MAX_SIZE
doubles, one persistent notification request, and per size the client puts
a ping, flushes, and start/waits the pong; the server mirrors it.

Run:  python examples/listing1_pingpong.py
"""

import numpy as np

from repro import fompi
from repro.cluster import run_ranks

MAX_SIZE = 4096          # doubles
CLIENT_RANK, SERVER_RANK = 0, 1


def program(ctx):
    # MPI_Win_allocate(win_size, sizeof(double), ..., &buf, &win);
    win_size = 2 * MAX_SIZE * 8
    win = yield from fompi.Win_allocate(ctx, win_size, disp_unit=8)
    # The C listing's &buf is a pointer, not an access: take an unrecorded
    # view; the notified puts/waits carry all the synchronization.
    buf = win.local(np.float64, mode="raw")  # protocol: raw-ok
    my_rank = ctx.rank
    partner_rank = SERVER_RANK if my_rank == CLIENT_RANK else CLIENT_RANK

    # /* initialize notification request */
    customTag = 99
    expected_count = 1
    notification_request = yield from fompi.Notify_init(
        ctx, win, partner_rank, customTag, expected_count)

    latencies = []
    size = 8
    while size < MAX_SIZE:
        t0 = ctx.now
        if my_rank == CLIENT_RANK:
            # /* send ping */
            yield from fompi.Put_notify(ctx, buf, size, np.float64,
                                        partner_rank, 0, size, np.float64,
                                        win, customTag)
            yield from fompi.Win_flush(ctx, partner_rank, win)
            # /* wait for pong */
            yield from fompi.Start(ctx, notification_request)
            yield from fompi.Wait(ctx, notification_request)
            latencies.append((size * 8, (ctx.now - t0) / 2))
        else:
            # /* wait for ping */
            yield from fompi.Start(ctx, notification_request)
            yield from fompi.Wait(ctx, notification_request)
            # /* send pong */
            yield from fompi.Put_notify(ctx, buf, size, np.float64,
                                        partner_rank, MAX_SIZE, size,
                                        np.float64, win, customTag)
            yield from fompi.Win_flush(ctx, partner_rank, win)
        size *= 4

    yield from fompi.Request_free(ctx, notification_request)
    yield from fompi.Win_free(ctx, win)
    return latencies


def main():
    results, _ = run_ranks(2, program)
    print("Listing 1 ping-pong (notified access), half RTT:")
    for size_bytes, half_rtt in results[0]:
        print(f"  {size_bytes:7d} B   {half_rtt:7.3f} us")


if __name__ == "__main__":
    main()
