#!/usr/bin/env python
"""The three notification mechanisms of §VII, side by side.

Four producers publish tagged values to one consumer with unpredictable
delays.  The same workload runs over:

* **queueing** — the paper's Notified Access: one wildcard request returns
  each notification's source AND tag, in arrival order;
* **overwriting** — GASPI-style registers: values arrive, but the consumer
  must own one register per expected notification and scan them, and
  arrival order is lost;
* **counting** — completion counters: cheapest, but the consumer learns
  only *how many* arrived per producer, nothing else.

Run:  python examples/notification_mechanisms.py
"""

import numpy as np

from repro.cluster import run_ranks

NPRODUCERS = 3
MSGS = 4


def _delay(rank: int, i: int) -> float:
    return (rank * 5 + i * 11) % 17 + 1.0


def queueing(ctx):
    # analyze: nranks=4
    win = yield from ctx.win_allocate(256)
    if ctx.rank == 0:
        req = yield from ctx.na.notify_init(win)
        yield from ctx.barrier()
        log = []
        for _ in range(NPRODUCERS * MSGS):
            yield from ctx.na.start(req)
            st = yield from ctx.na.wait(req)
            log.append(f"src={st.source},tag={st.tag}")
        return log
    yield from ctx.barrier()
    for i in range(MSGS):
        yield ctx.timeout(_delay(ctx.rank, i))
        disp = ((ctx.rank - 1) * MSGS + i) * 8     # disjoint payload slots
        yield from ctx.na.put_notify(win, np.zeros(1), 0, disp, tag=i)
    return None


def overwriting(ctx):
    # analyze: nranks=4
    win = yield from ctx.win_allocate(256)
    if ctx.rank == 0:
        space = yield from ctx.gaspi.notification_init(
            win, num=NPRODUCERS * MSGS)
        yield from ctx.barrier()
        log = []
        for _ in range(NPRODUCERS * MSGS):
            slot, value = yield from ctx.gaspi.waitsome(space)
            log.append(f"reg={slot},val={value}")
        return log
    yield from ctx.barrier()
    for i in range(MSGS):
        yield ctx.timeout(_delay(ctx.rank, i))
        slot = (ctx.rank - 1) * MSGS + i           # private registers!
        yield from ctx.gaspi.write_notify(win, np.zeros(1), 0, slot * 8,
                                          slot=slot, value=i + 1)
    return None


def counting(ctx):
    # analyze: nranks=4
    win = yield from ctx.win_allocate(256)
    if ctx.rank == 0:
        reqs = {}
        for p in range(1, NPRODUCERS + 1):
            reqs[p] = yield from ctx.counters.counter_init(
                win, source=p, tag=p, expected_count=MSGS)
        yield from ctx.barrier()
        log = []
        for p, req in reqs.items():
            yield from ctx.counters.start(req)
            yield from ctx.counters.wait(req)
            log.append(f"src={p}: {MSGS} arrivals (identities unknown)")
        return log
    yield from ctx.barrier()
    for i in range(MSGS):
        yield ctx.timeout(_delay(ctx.rank, i))
        disp = ((ctx.rank - 1) * MSGS + i) * 8     # disjoint payload slots
        yield from ctx.counters.put_counted(win, np.zeros(1), 0, disp,
                                            tag=ctx.rank)
    return None


def main():
    for name, prog in (("queueing (Notified Access)", queueing),
                       ("overwriting (GASPI registers)", overwriting),
                       ("counting (completion counters)", counting)):
        results, _ = run_ranks(NPRODUCERS + 1, prog)
        print(f"{name}:")
        for entry in results[0]:
            print(f"   {entry}")
        print()


if __name__ == "__main__":
    main()
