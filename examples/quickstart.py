#!/usr/bin/env python
"""Quickstart: a producer-consumer handoff with Notified Access.

Runs the paper's core primitive end to end on the simulated fabric: the
producer issues a single ``put_notify`` (one network transaction) and the
consumer synchronizes through a persistent notification request matched on
``(source, tag)`` — no extra round trip, unlike classic One Sided schemes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import run_ranks

TAG = 7
N = 128


def program(ctx):
    # Windows are allocated collectively, like MPI_Win_allocate.
    win = yield from ctx.win_allocate(N * 8)

    if ctx.rank == 0:
        # ---- producer ----------------------------------------------------
        payload = np.arange(N, dtype=np.float64)
        yield from ctx.na.put_notify(win, payload, target=1,
                                     target_disp=0, tag=TAG)
        # flush_local: the source buffer is reusable; the *target* learns
        # about completion from the notification itself.
        yield from win.flush_local(1)
        return f"producer done at t={ctx.now:.2f}us"

    # ---- consumer ---------------------------------------------------------
    # One persistent request: init once, start/wait per message (§III-B).
    req = yield from ctx.na.notify_init(win, source=0, tag=TAG,
                                        expected_count=1)
    yield from ctx.na.start(req)
    status = yield from ctx.na.wait(req)

    received = win.local(np.float64, count=N)
    assert np.allclose(received, np.arange(N))
    yield from ctx.na.request_free(req)
    return (f"consumer got {status.count} bytes from rank "
            f"{status.source} (tag {status.tag}) at t={ctx.now:.2f}us")


def main():
    results, cluster = run_ranks(2, program)
    for rank, msg in enumerate(results):
        print(f"rank {rank}: {msg}")
    stats = cluster.stats()
    print(f"wire transactions: {stats['wire_transactions']} "
          f"(2 window-setup barrier messages + 1 notified put — the data "
          f"transfer carries its own notification)")


if __name__ == "__main__":
    main()
