#!/usr/bin/env python
"""Consumer-managed buffering with notified gets (§VI-B).

When many producers feed one consumer and the producer set changes
dynamically, producer-managed buffers (each producer choosing a target
address) become expensive.  With a *notified get* the consumer pulls data
at its own pace into its own buffers, and each producer learns from the
notification that its buffer has been read and can be refilled.

Run:  python examples/consumer_managed_buffering.py
"""

import numpy as np

from repro import run_ranks

NPRODUCERS = 4
ITEMS = 3          # values each producer publishes, one at a time
N = 64             # doubles per item


def program(ctx):
    win = yield from ctx.win_allocate(N * 8)

    if ctx.rank == 0:
        # ---- consumer: pulls from whoever it likes, owns all buffering ----
        # A producer's tiny notified put says "round r is published"; only
        # then may the consumer pull, or the get could read a buffer that
        # is still being (re)filled.
        ready = []
        for p in range(1, NPRODUCERS + 1):
            r = yield from ctx.na.notify_init(win, source=p)
            ready.append(r)
        sums = []
        buf = ctx.alloc(N * 8)
        for round_no in range(ITEMS):
            for producer in range(1, NPRODUCERS + 1):
                yield from ctx.na.start(ready[producer - 1])
                st = yield from ctx.na.wait(ready[producer - 1])
                assert st.tag == round_no
                yield from ctx.na.get_notify(win, buf, producer, 0,
                                             nbytes=N * 8, tag=round_no)
                yield from win.flush(producer)
                sums.append(float(buf.ndarray(np.float64).sum()))
        for p in range(1, NPRODUCERS + 1):
            yield from ctx.na.request_free(ready[p - 1])
        return sums

    # ---- producers: publish, announce, wait for 'buffer consumed' --------
    req = yield from ctx.na.notify_init(win, source=0)
    for round_no in range(ITEMS):
        win.local(np.float64)[:] = ctx.rank * 100 + round_no
        # Announce the publication (8 bytes into the consumer's slot for
        # this producer), then wait for the notified get's 'was read'.
        yield from ctx.na.put_notify(win, np.zeros(1), 0,
                                     (ctx.rank - 1) * 8, tag=round_no)
        yield from win.flush_local(0)
        yield from ctx.na.start(req)
        status = yield from ctx.na.wait(req)       # buffer was read
        assert status.tag == round_no
    yield from ctx.na.request_free(req)
    return f"producer {ctx.rank} drained {ITEMS} buffers"


def main():
    results, _ = run_ranks(NPRODUCERS + 1, program)
    sums = results[0]
    print(f"consumer pulled {len(sums)} items from {NPRODUCERS} producers")
    expected = [(p * 100 + r) * N
                for r in range(ITEMS) for p in range(1, NPRODUCERS + 1)]
    assert sums == expected, (sums, expected)
    print("all payloads verified; producers reused buffers only after "
          "their notified-get notifications")
    for msg in results[1:]:
        print(" ", msg)


if __name__ == "__main__":
    main()
