#!/usr/bin/env python
"""Task-based Cholesky factorization with dataflow notifications (§VI-C).

Tiles are broadcast along a binary tree as soon as they are produced;
consumers cannot predict what arrives next.  With Notified Access a single
wildcard request delivers both the data *and* its identity (the tile index
travels in the tag) — where classic One Sided needs a ring buffer, a remote
counter, and an extra coordinate message.

Runs all three variants with real numerics (verified against
``numpy.linalg.cholesky``) and prints the Figure 5 comparison.

Run:  python examples/cholesky_tasks.py
"""

from repro.apps.cholesky import CHOLESKY_MODES, run_cholesky

P = 4
NTILES = 8
B = 16          # small tiles so the verified numerics stay fast


def main():
    print(f"Tiled Cholesky: {NTILES}x{NTILES} tiles of {B}x{B} doubles "
          f"over {P} ranks (verified numerics)\n")
    print(f"{'variant':10s} {'time_us':>9s} {'GFlop/s':>9s}  check")
    results = {}
    for mode in CHOLESKY_MODES:
        r = run_cholesky(mode, P, ntiles=NTILES, b=B, verify=True)
        results[mode] = r
        print(f"{mode:10s} {r['time_us']:9.1f} {r['gflops']:9.2f}  "
              f"{'L matches numpy.linalg.cholesky' if r['verified'] else 'FAILED'}")
    speedup = results["mp"]["time_us"] / results["na"]["time_us"]
    print(f"\nNotified Access is {speedup:.2f}x Message Passing on this "
          f"dependency graph")


if __name__ == "__main__":
    main()
