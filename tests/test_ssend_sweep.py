"""Synchronous sends and the sweep helper."""

import numpy as np

from repro.bench.report import sweep
from tests.conftest import run_cluster


def test_ssend_small_message_goes_rendezvous():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.ssend(np.zeros(4), 1, tag=1)
        else:
            buf = np.zeros(4)
            yield from ctx.comm.recv(buf, 0, 1)
        return None

    _, cluster = run_cluster(2, prog)
    assert cluster.stats()["rndv_sends"] == 1
    assert cluster.stats()["eager_copies"] == 0


def test_ssend_completion_implies_matched_receive():
    """The sender cannot complete before the receiver posts."""
    def prog(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            yield from ctx.comm.ssend(np.zeros(4), 1, tag=1)
            return ctx.now - t0
        yield from ctx.compute(50.0)       # receive posted late
        buf = np.zeros(4)
        yield from ctx.comm.recv(buf, 0, 1)
        return None

    results, _ = run_cluster(2, prog)
    assert results[0] > 45.0               # waited for the late receiver


def test_plain_send_completes_eagerly_in_contrast():
    def prog(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            yield from ctx.comm.send(np.zeros(4), 1, tag=1)
            dt = ctx.now - t0
            yield from ctx.barrier()
            return dt
        yield from ctx.compute(50.0)
        buf = np.zeros(4)
        yield from ctx.comm.recv(buf, 0, 1)
        yield from ctx.barrier()
        return None

    results, _ = run_cluster(2, prog)
    assert results[0] < 5.0                # eager: local completion


def test_sweep_tabulates_grid():
    from repro.apps.pingpong import run_pingpong

    table = sweep(
        lambda mode, size_bytes: run_pingpong(mode, size_bytes, iters=3),
        {"mode": ["na", "mp"], "size_bytes": [64, 1024]},
        title="pingpong sweep", metric="half_rtt_us")
    assert len(table.rows) == 4
    assert table.columns == ["mode", "size_bytes", "half_rtt_us"]
    # Deterministic grid order: na/64, na/1024, mp/64, mp/1024.
    assert [r[0] for r in table.rows] == ["na", "na", "mp", "mp"]
    assert all(r[2] > 0 for r in table.rows)
