"""Dynamic particle exchange (§VI-B motif)."""

import pytest

from repro.apps.particles import PARTICLE_MODES, run_particles
from repro.errors import ReproError


@pytest.mark.parametrize("mode", PARTICLE_MODES)
@pytest.mark.parametrize("nranks", [1, 2, 3, 6])
def test_trajectories_match_serial_reference(mode, nranks):
    r = run_particles(mode, nranks, per_rank=40, steps=6, verify=True)
    assert r["max_error"] == pytest.approx(0.0, abs=1e-12)
    assert r["particles_conserved"]


@pytest.mark.parametrize("mode", PARTICLE_MODES)
def test_many_steps_parity_slot_reuse(mode):
    r = run_particles(mode, 4, per_rank=30, steps=15, verify=True)
    assert r["max_error"] == pytest.approx(0.0, abs=1e-12)


def test_invalid_mode_rejected():
    with pytest.raises(ReproError):
        run_particles("bogus", 2)


def test_na_termination_scales_flat():
    """The §VI-B point: NA replaces the per-step global allreduce with
    point-to-point done-notifications, so step cost is flat in P while
    the MP termination grows."""
    t_mp = {p: run_particles("mp", p, per_rank=40,
                             steps=6)["time_us"] for p in (2, 8)}
    t_na = {p: run_particles("na", p, per_rank=40,
                             steps=6)["time_us"] for p in (2, 8)}
    assert t_na[8] < t_na[2] * 1.5          # flat-ish
    assert t_mp[8] > t_mp[2] * 1.5          # allreduce grows
    assert t_na[8] < t_mp[8]


def test_determinism_same_seed():
    a = run_particles("na", 3, per_rank=30, steps=5, seed=9, verify=True)
    b = run_particles("na", 3, per_rank=30, steps=5, seed=9, verify=True)
    assert a["time_us"] == b["time_us"]


def test_seed_changes_workload():
    a = run_particles("na", 3, per_rank=30, steps=5, seed=1)
    b = run_particles("na", 3, per_rank=30, steps=5, seed=2)
    assert a["time_us"] != b["time_us"]
