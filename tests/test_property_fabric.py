"""Property tests: fabric memory consistency and timing monotonicity."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import AddressSpace
from repro.network.fabric import Fabric
from repro.network.loggp import TransportParams
from repro.network.topology import Machine
from repro.sim.engine import Engine


def make_fabric(nranks=3):
    eng = Engine()
    machine = Machine(nranks)
    spaces = [AddressSpace(r, 1 << 18) for r in range(nranks)]
    return eng, Fabric(eng, machine, spaces), spaces


@st.composite
def put_schedules(draw):
    """Random puts from ranks 1, 2 into overlapping slots of rank 0."""
    nputs = draw(st.integers(min_value=1, max_value=12))
    puts = []
    for i in range(nputs):
        origin = draw(st.integers(min_value=1, max_value=2))
        slot = draw(st.integers(min_value=0, max_value=3))
        delay = draw(st.floats(min_value=0.0, max_value=20.0,
                               allow_nan=False))
        value = float(i + 1)
        puts.append((origin, slot, delay, value))
    return puts


@settings(max_examples=30, deadline=None)
@given(puts=put_schedules())
def test_memory_equals_commit_order_replay(puts):
    """Final target memory equals a sequential replay ordered by commit
    time (ties broken by issue order, which the engine preserves)."""
    eng, fabric, spaces = make_fabric()
    commits = []   # (commit_at, issue_idx, slot, value)

    def issue(origin, slot, value):
        data = np.full(8, value)
        h = fabric.put(origin, 0, slot * 64, data)
        commits.append((h.commit_at, len(commits), slot, value))

    def driver(e, origin, slot, delay, value):
        yield e.timeout(delay)
        issue(origin, slot, value)

    for origin, slot, delay, value in puts:
        eng.process(driver(eng, origin, slot, delay, value))
    eng.run(detect_deadlock=False)

    expected = {}
    for _, _, slot, value in sorted(commits,
                                    key=lambda c: (c[0], c[1])):
        expected[slot] = value
    for slot, value in expected.items():
        got = spaces[0].copy_out(slot * 64, 64).view(np.float64)
        assert np.allclose(got, value), (slot, value, got)


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 18),
                      min_size=2, max_size=10))
def test_put_latency_monotone_in_size_property(sizes):
    """For a fresh fabric, one-way put latency is non-decreasing in size
    within each engine class (FMA / BTE)."""
    p = TransportParams()
    lat = {}
    for s in set(sizes):
        eng, fabric, _ = make_fabric(2)
        h = fabric.put(0, 1, 0, np.zeros(s, np.uint8))
        lat[s] = h.commit_at
    fma = sorted(s for s in lat if s <= p.fma_max)
    bte = sorted(s for s in lat if s > p.fma_max)
    for group in (fma, bte):
        for a, b in zip(group, group[1:]):
            assert lat[a] <= lat[b]


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=30))
def test_fifo_per_engine_property(n):
    """N same-size puts through one engine commit in issue order with the
    LogGP serialization gap between consecutive commits."""
    p = TransportParams()
    eng, fabric, _ = make_fabric(2)
    commits = [fabric.put(0, 1, i * 8, np.zeros(8, np.uint8)).commit_at
               for i in range(n)]
    gap = p.fma.g + 8 * p.fma.G
    for a, b in zip(commits, commits[1:]):
        assert abs((b - a) - gap) < 1e-12
    eng.run(detect_deadlock=False)


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                       min_size=1, max_size=20))
def test_amo_sum_accumulates_property(values):
    eng, fabric, spaces = make_fabric(2)
    for v in values:
        fabric.amo(0, 1, 0, "sum", v)
    eng.run(detect_deadlock=False)
    assert spaces[1].copy_out(0, 8).view(np.int64)[0] == sum(values)
