"""Property: the three notification mechanisms agree on *what happened*.

For any producer schedule, the queueing path must observe exactly the
multiset of (source, tag) pairs sent; the counter path must count exactly
the per-source totals; the overwriting path must deliver every value when
registers are private.  Semantics differ; the ground truth must not.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import run_cluster


@st.composite
def schedules(draw):
    nproducers = draw(st.integers(min_value=1, max_value=3))
    sends = {p: draw(st.lists(st.integers(min_value=0, max_value=5),
                              min_size=1, max_size=5))
             for p in range(1, nproducers + 1)}
    return sends


@settings(max_examples=15, deadline=None)
@given(sends=schedules())
def test_queue_observes_exact_multiset(sends):
    total = sum(len(v) for v in sends.values())

    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(win)
            yield from ctx.barrier()
            seen = []
            for _ in range(total):
                yield from ctx.na.start(req)
                st_ = yield from ctx.na.wait(req)
                seen.append((st_.source, st_.tag))
            return sorted(seen)
        yield from ctx.barrier()
        for i, tag in enumerate(sends[ctx.rank]):
            # Disjoint destination slots: the property under test is the
            # notification multiset, not concurrent same-address writes.
            disp = ((ctx.rank - 1) * 5 + i) * 8
            yield from ctx.na.put_notify(win, np.zeros(1), 0, disp,
                                         tag=tag)
        return None

    results, _ = run_cluster(len(sends) + 1, prog)
    expected = sorted((p, t) for p, tags in sends.items() for t in tags)
    assert results[0] == expected


@settings(max_examples=15, deadline=None)
@given(sends=schedules())
def test_counters_count_exact_totals(sends):
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 0:
            reqs = {}
            for p, tags in sends.items():
                reqs[p] = yield from ctx.counters.counter_init(
                    win, source=p, tag=p, expected_count=len(tags))
            yield from ctx.barrier()
            for p, req in reqs.items():
                yield from ctx.counters.start(req)
                yield from ctx.counters.wait(req)
            return {p: r.cell.increments for p, r in reqs.items()}
        yield from ctx.barrier()
        for i, _ in enumerate(sends[ctx.rank]):
            disp = ((ctx.rank - 1) * 5 + i) * 8
            yield from ctx.counters.put_counted(win, np.zeros(1), 0, disp,
                                                tag=ctx.rank)
        return None

    results, _ = run_cluster(len(sends) + 1, prog)
    assert results[0] == {p: len(tags) for p, tags in sends.items()}


@settings(max_examples=15, deadline=None)
@given(sends=schedules())
def test_overwriting_delivers_all_values_with_private_registers(sends):
    total = sum(len(v) for v in sends.values())
    width = max(len(v) for v in sends.values())

    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 0:
            space = yield from ctx.gaspi.notification_init(
                win, num=len(sends) * width)
            yield from ctx.barrier()
            got = {}
            for _ in range(total):
                slot, value = yield from ctx.gaspi.waitsome(space)
                got[slot] = value
            assert space.overwrites == 0
            return got
        yield from ctx.barrier()
        for i, tag in enumerate(sends[ctx.rank]):
            slot = (ctx.rank - 1) * width + i
            yield from ctx.gaspi.write_notify(win, np.zeros(1), 0,
                                              slot * 8, slot=slot,
                                              value=tag + 1)
        return None

    results, _ = run_cluster(len(sends) + 1, prog)
    expected = {(p - 1) * width + i: tag + 1
                for p, tags in sends.items() for i, tag in enumerate(tags)}
    assert results[0] == expected
