"""Task-based Cholesky (Figure 5): kernels, numerics, variants, shapes."""

import numpy as np
import pytest

from repro.apps.cholesky import (CHOLESKY_MODES, FLOPS, TileMatrix,
                                 gemm_update, potrf, run_cholesky,
                                 syrk_update, tree_children, tree_parent,
                                 trsm)
from repro.apps.cholesky.kernels import total_flops
from repro.apps.cholesky.matrix import make_spd
from repro.errors import ReproError


# -- kernels ----------------------------------------------------------------
def test_potrf_matches_numpy():
    a = make_spd(8, seed=1)
    tile = a.copy()
    potrf(tile)
    assert np.allclose(np.tril(tile), np.linalg.cholesky(a))


def test_potrf_rejects_indefinite():
    with pytest.raises(ReproError):
        potrf(-np.eye(4))


def test_trsm_solves_right_triangular_system():
    rng = np.random.default_rng(2)
    lkk = np.linalg.cholesky(make_spd(6, seed=3))
    a = rng.standard_normal((6, 6))
    x = trsm(lkk, a.copy())
    assert np.allclose(x @ lkk.T, a)


def test_gemm_and_syrk_updates():
    rng = np.random.default_rng(4)
    lik = rng.standard_normal((4, 4))
    ljk = rng.standard_normal((4, 4))
    aij = np.zeros((4, 4))
    gemm_update(aij, lik, ljk)
    assert np.allclose(aij, -lik @ ljk.T)
    ajj = np.zeros((4, 4))
    syrk_update(ajj, ljk)
    assert np.allclose(ajj, -ljk @ ljk.T)


def test_flop_counts_positive_and_ordered():
    b = 32
    assert FLOPS["potrf"](b) < FLOPS["trsm"](b) < FLOPS["gemm"](b)
    # Total is ~ (t*b)^3 / 3 for big t.
    t = 16
    n = t * b
    assert total_flops(t, b) == pytest.approx(n ** 3 / 3, rel=0.2)


# -- tiles / distribution ----------------------------------------------------
def test_tile_matrix_block_cyclic_ownership():
    tm = TileMatrix(6, 4, rank=1, nranks=3, materialize=False)
    assert tm.local_columns() == [1, 4]
    assert tm.owner(5) == 2
    assert set(tm.tiles) == {(i, j) for j in (1, 4) for i in range(j, 6)}


def test_tile_matrix_reference_check():
    tm = TileMatrix(4, 4, rank=0, nranks=1, materialize=True, seed=11)
    ref = tm.reference_lower(seed=11)
    # Factor serially through the kernels.
    T, b = 4, 4
    for k in range(T):
        potrf(tm.get(k, k))
        for i in range(k + 1, T):
            trsm(tm.get(k, k), tm.get(i, k))
        for j in range(k + 1, T):
            syrk_update(tm.get(j, j), tm.get(j, k))
            for i in range(j + 1, T):
                gemm_update(tm.get(i, j), tm.get(i, k), tm.get(j, k))
    assert tm.check_against(ref)


def test_bcast_tree_covers_all_ranks_once():
    for size in (2, 5, 9):
        for root in range(size):
            seen = set()
            frontier = [root]
            while frontier:
                r = frontier.pop()
                assert r not in seen
                seen.add(r)
                frontier.extend(tree_children(r, root, size))
            assert seen == set(range(size))
            for r in range(size):
                parent = tree_parent(r, root, size)
                if r == root:
                    assert parent is None
                else:
                    assert r in tree_children(parent, root, size)


# -- end-to-end -------------------------------------------------------------
@pytest.mark.parametrize("mode", CHOLESKY_MODES)
@pytest.mark.parametrize("nranks", [1, 3, 4])
def test_factorization_verified(mode, nranks):
    r = run_cholesky(mode, nranks, ntiles=6, b=8, verify=True)
    assert r["verified"] is True


@pytest.mark.parametrize("mode", CHOLESKY_MODES)
def test_more_tiles_than_pattern(mode):
    r = run_cholesky(mode, 2, ntiles=9, b=4, verify=True)
    assert r["verified"] is True


def test_invalid_args_rejected():
    with pytest.raises(ReproError):
        run_cholesky("bogus", 2, ntiles=4)
    with pytest.raises(ReproError):
        run_cholesky("na", 2, ntiles=300)     # exceeds tag encoding


def test_na_fastest_variant():
    """Figure 5 ordering: NA > MP > OneSided(ring) in GFlop/s."""
    from repro.cluster import ClusterConfig
    g = {}
    for mode in CHOLESKY_MODES:
        cfg = ClusterConfig(nranks=8, flops_per_us=60000)
        g[mode] = run_cholesky(mode, 8, ntiles=12, b=32,
                               config=cfg)["gflops"]
    assert g["na"] > g["mp"] > g["onesided"]


def test_tile_bytes_is_8kb_as_paper():
    r = run_cholesky("na", 2, ntiles=4, b=32)
    assert r["tile_bytes"] == 8192


@pytest.mark.parametrize("mode", CHOLESKY_MODES)
def test_left_looking_variant_verified(mode):
    """The paper names the left-looking Kurzak schedule; both schedules
    must produce the same factor."""
    r = run_cholesky(mode, 3, ntiles=7, b=8, verify=True, variant="left")
    assert r["verified"] is True


def test_unknown_variant_rejected():
    with pytest.raises(ReproError):
        run_cholesky("na", 2, ntiles=4, variant="diagonal")


def test_variants_move_identical_bytes():
    """Left- and right-looking only reschedule compute; the panel
    broadcasts are the same messages."""
    from repro.cluster import Cluster, ClusterConfig
    out = {}
    for variant in ("left", "right"):
        cfg = ClusterConfig(nranks=4, trace=True)
        from repro.apps.cholesky.driver import _cholesky_program
        cluster = Cluster(cfg)
        cluster.run(lambda ctx: _cholesky_program(ctx, "na", 8, 8, False,
                                                  7, variant))
        out[variant] = (cluster.tracer.wire_transactions(),
                        cluster.tracer.bytes_by_kind["wire"])
    assert out["left"] == out["right"]
