"""Receiver-side link serialization: incast congestion."""

import numpy as np
import pytest

from repro.memory.address import AddressSpace
from repro.network.fabric import Fabric
from repro.network.loggp import TransportParams
from repro.network.topology import Machine
from repro.sim.engine import Engine


def make_fabric(nranks):
    eng = Engine()
    machine = Machine(nranks)
    spaces = [AddressSpace(r, 1 << 21) for r in range(nranks)]
    return eng, Fabric(eng, machine, spaces), spaces


def test_single_flow_unaffected():
    """A lone transfer commits exactly at the LogGP time."""
    p = TransportParams()
    eng, fabric, _ = make_fabric(2)
    n = 100_000
    h = fabric.put(0, 1, 0, np.zeros(n, np.uint8))
    expected = p.bte.g + n * p.bte.G + p.bte.L
    assert h.commit_at == pytest.approx(expected)


def test_incast_serializes_at_target():
    """N senders into one target: commits spaced by the per-byte gap."""
    p = TransportParams()
    eng, fabric, _ = make_fabric(5)
    n = 100_000
    commits = sorted(
        fabric.put(src, 0, src * n, np.zeros(n, np.uint8)).commit_at
        for src in range(1, 5))
    occupancy = n * p.bte.G
    for a, b in zip(commits, commits[1:]):
        assert b - a == pytest.approx(occupancy)
    # Total drain time ~ N * occupancy, not 1 * occupancy.
    assert commits[-1] - commits[0] == pytest.approx(3 * occupancy)
    eng.run(detect_deadlock=False)


def test_distinct_targets_do_not_interfere():
    eng, fabric, _ = make_fabric(5)
    n = 100_000
    commits = [fabric.put(0, t, 0, np.zeros(n, np.uint8)).commit_at
               for t in range(1, 5)]
    # Sender-side injection serializes these, but each target's rx is free:
    # spacing equals the sender's serialization, no extra rx queueing.
    p = TransportParams()
    gap = p.bte.g + n * p.bte.G
    for a, b in zip(commits, commits[1:]):
        assert b - a == pytest.approx(gap)


def test_incast_visible_at_application_level():
    """A wide gather of large tiles takes longer per child than a chain of
    independent transfers would suggest."""
    from tests.conftest import run_cluster

    def prog(ctx):
        win = yield from ctx.win_allocate(8 * 65536)
        if ctx.rank == 0:
            req = yield from ctx.na.notify_init(
                win, expected_count=ctx.size - 1)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            t0 = ctx.now
            yield from ctx.na.wait(req)
            return ctx.now - t0
        yield from ctx.barrier()
        yield from ctx.na.put_notify(win, np.zeros(65536 // 8), 0,
                                     (ctx.rank - 1) * 65536, tag=1)
        return None

    t4, _ = run_cluster(5, prog)     # 4 concurrent senders
    t1, _ = run_cluster(2, prog)     # 1 sender
    # With rx serialization the 4-sender gather takes ~4x the payload
    # drain time of one transfer (plus constants), not ~1x.
    p = TransportParams()
    drain = 65536 * p.bte.G
    assert t4[0] - t1[0] > 2.5 * drain


def test_zero_byte_messages_skip_rx_occupancy():
    eng, fabric, _ = make_fabric(3)
    h1 = fabric.put(1, 0, 0, np.empty(0, np.uint8),
                    immediate=(1 << 16) | 1, win_id=1)
    h2 = fabric.put(2, 0, 0, np.empty(0, np.uint8),
                    immediate=(2 << 16) | 1, win_id=1)
    assert h1.commit_at == pytest.approx(h2.commit_at)
