"""§III's notified-synchronization alternative (flush_notify)."""

import numpy as np

from tests.conftest import run_cluster


def _producer_consumer(data_bytes: int):
    """Producer puts ``data_bytes`` then flush_notify; consumer waits the
    notification and checks the data is already committed."""
    def prog(ctx):
        win = yield from ctx.win_allocate(max(data_bytes, 64))
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from ctx.barrier()
            n = data_bytes // 8
            yield from win.put(np.arange(float(n)), 1, 0)
            t0 = ctx.now
            yield from ctx.na.flush_notify(win, 1, tag=4)
            cost = ctx.now - t0
            yield from win.unlock_all()
            return cost
        req = yield from ctx.na.notify_init(win, source=0, tag=4)
        yield from ctx.na.start(req)
        yield from ctx.barrier()
        st = yield from ctx.na.wait(req)
        assert st.count == 0                      # notification only
        got = win.local(np.float64, count=data_bytes // 8)
        assert np.allclose(got, np.arange(data_bytes / 8))
        yield from win.unlock_all()
        return "consumed"

    return run_cluster(2, prog)


def test_flush_notify_guarantees_data_visibility_small():
    results, _ = _producer_consumer(64)
    assert results[1] == "consumed"


def test_flush_notify_guarantees_data_visibility_large():
    results, _ = _producer_consumer(32768)
    assert results[1] == "consumed"


def test_out_of_order_path_pays_the_round_trip():
    """BTE-size data forces the flush-before-notify (§III: 'hard to
    guarantee without additional transfers on adaptively routed
    networks')."""
    small, _ = _producer_consumer(64)
    large, _ = _producer_consumer(32768)
    assert large[0] > small[0] + 1.0


def test_flush_notify_needs_two_transactions_vs_one():
    """The reason the paper chose notified *accesses*: flush_notify costs
    an extra wire transaction per handoff."""
    def make(use_flush_notify):
        def prog(ctx):
            win = yield from ctx.win_allocate(64)
            yield from win.lock_all()
            if ctx.rank == 0:
                yield from ctx.barrier()
                mark = ctx.cluster.tracer.wire_transactions()
                if use_flush_notify:
                    yield from win.put(np.arange(4.0), 1, 0)
                    yield from ctx.na.flush_notify(win, 1, tag=1)
                else:
                    yield from ctx.na.put_notify(win, np.arange(4.0), 1,
                                                 0, tag=1)
                yield from win.flush_local(1)
                count = ctx.cluster.tracer.wire_transactions() - mark
                yield from win.unlock_all()
                return count
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
            yield from ctx.barrier()
            yield from ctx.na.wait(req)
            yield from win.unlock_all()
            return None

        results, _ = run_cluster(2, prog, trace=True)
        return results[0]

    assert make(False) == 1
    assert make(True) == 2
