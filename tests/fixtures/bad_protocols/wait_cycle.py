"""Wait-for cycle: both ranks wait for the peer's notification before
posting their own — the budget balances, the ordering deadlocks.

Expected diagnostic: ``deadlock.wait-cycle`` anchored at the
``ctx.na.wait`` line, ranks (0, 1), nranks=2 — and nothing else.
"""

import numpy as np


def program(ctx):
    # analyze: nranks=2
    win = yield from ctx.win_allocate(64)
    peer = 1 - ctx.rank
    req = yield from ctx.na.notify_init(win, source=peer, tag=0)
    yield from ctx.na.start(req)
    yield from ctx.na.wait(req)  # both ranks block here forever
    yield from ctx.na.put_notify(win, np.zeros(1), peer, 0, tag=0)
    yield from ctx.na.request_free(req)
    yield from win.free()
