"""Stale view: the consumer reads its local window view before waiting
for the producer's notification, so it can observe the slot half-way
through the incoming transfer.

Expected diagnostic: ``race.stale-view`` on the ``put_notify`` line,
ranks (0, 1), nranks=2 — and nothing else.
"""

import numpy as np


def program(ctx):
    # analyze: nranks=2
    win = yield from ctx.win_allocate(8)
    if ctx.rank == 0:
        data = np.array([1.0])
        yield from ctx.na.put_notify(win, data, 1, 0, tag=0)  # in flight
        yield from win.flush(1)
    else:
        req = yield from ctx.na.notify_init(win, source=0, tag=0)
        yield from ctx.na.start(req)
        view = win.local(np.float64, count=1, mode="r")
        stale = float(view[0])  # read before the wait: may be stale
        yield from ctx.na.wait(req)
        yield from ctx.na.request_free(req)
        del stale
    yield from win.free()
