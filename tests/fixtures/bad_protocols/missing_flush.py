"""Missing flush: the origin reads the buffer of a notified get before
any flush — the data may still be in flight.

Expected diagnostic: ``epoch.missing-flush`` on the ``buf.ndarray``
line — and nothing else.  The race checker sees the same defect as a
stale-view race; that duplicate is waived here so the fixture pins the
epoch lint alone (and exercises the ``race-ok`` waiver).
"""

import numpy as np


def program(ctx):
    # analyze: nranks=2
    win = yield from ctx.win_allocate(64)
    if ctx.rank == 0:
        buf = ctx.alloc(64)
        yield from ctx.na.get_notify(win, buf, 1, 0, nbytes=64, tag=0)
        arr = buf.ndarray(np.float64)  # read too early # protocol: race-ok
        total = float(arr.sum())
        yield from win.flush(1)
        yield from win.free()
        return total
    req = yield from ctx.na.notify_init(win, source=0, tag=0)
    yield from ctx.na.start(req)
    yield from ctx.na.wait(req)  # consumes the get's notification
    yield from ctx.na.request_free(req)
    yield from win.free()
    return None
