"""Read before notify: rank 2 gets rank 0's slot without waiting for
any signal that rank 1's put landed, so the remote read races the
incoming write and may return either value.

Expected diagnostic: ``race.unordered-read`` on the ``put_notify``
line, ranks (1, 2), nranks=3 — and nothing else.
"""

import numpy as np


def program(ctx):
    # analyze: nranks=3
    win = yield from ctx.win_allocate(8)
    if ctx.rank == 0:
        put_req = yield from ctx.na.notify_init(win, source=1, tag=0)
        get_req = yield from ctx.na.notify_init(win, source=2, tag=1)
        yield from ctx.na.start(put_req)
        yield from ctx.na.wait(put_req)
        yield from ctx.na.start(get_req)
        yield from ctx.na.wait(get_req)
        yield from ctx.na.request_free(put_req)
        yield from ctx.na.request_free(get_req)
    elif ctx.rank == 1:
        data = np.array([1.0])
        yield from ctx.na.put_notify(win, data, 0, 0, tag=0)  # racy put
        yield from win.flush(0)
    else:
        buf = ctx.alloc(8)
        # reads the slot with no wait ordering it after rank 1's put
        yield from ctx.na.get_notify(win, buf, 0, 0, nbytes=8, tag=1)
        yield from win.flush(0)
    yield from win.free()
