"""Overlapping unordered puts: ranks 1 and 2 both write the same eight
bytes of rank 0's window, and nothing orders one transfer before the
other — whichever commits last wins, nondeterministically.

Expected diagnostic: ``race.overlap-write`` on the ``put_notify`` line,
ranks (1, 2), nranks=3 — and nothing else.
"""

import numpy as np

from repro.mpi.constants import ANY_SOURCE


def program(ctx):
    # analyze: nranks=3
    win = yield from ctx.win_allocate(8)
    if ctx.rank == 0:
        req = yield from ctx.na.notify_init(win, source=ANY_SOURCE, tag=0)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
        yield from ctx.na.request_free(req)
    else:
        data = np.array([float(ctx.rank)])
        yield from ctx.na.put_notify(win, data, 0, 0, tag=0)  # unordered
        yield from win.flush(0)
    yield from win.free()
