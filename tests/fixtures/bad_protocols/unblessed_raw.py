"""Unblessed raw view: a ``mode="raw"`` window view in a program that
never takes a sanitizer blessing and carries no waiver comment.

Expected diagnostic: ``epoch.raw-view`` on the ``win.local`` line —
and nothing else.
"""

import numpy as np


def program(ctx):
    # analyze: nranks=2
    win = yield from ctx.win_allocate(64)
    flags = win.local(np.int64, mode="raw")  # no san_acquire anywhere
    if ctx.rank == 0:
        req = yield from ctx.na.notify_init(win, source=1, tag=0)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
        yield from ctx.na.request_free(req)
        yield from win.free()
        return int(flags[0])
    yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=0)
    yield from win.free()
    return None
