"""Starved wait: rank 1 blocks on a notification nobody ever posts.

Expected diagnostic: ``budget.starved-wait`` on the ``ctx.na.wait``
line, ranks (0, 1), nranks=2 — and nothing else.
"""


def program(ctx):
    # analyze: nranks=2
    win = yield from ctx.win_allocate(64)
    if ctx.rank == 1:
        req = yield from ctx.na.notify_init(win, source=0, tag=7)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)  # starved: rank 0 never posts
        yield from ctx.na.request_free(req)
    yield from win.free()
