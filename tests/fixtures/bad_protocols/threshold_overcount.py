"""Threshold overcount: the wait demands three notifications, the
producer posts only two.

Expected diagnostic: ``budget.threshold-overcount`` on the
``ctx.na.wait`` line, rank (0,), nranks=2 — and nothing else.
"""

import numpy as np


def program(ctx):
    # analyze: nranks=2
    win = yield from ctx.win_allocate(64)
    if ctx.rank == 0:
        req = yield from ctx.na.notify_init(win, source=1, tag=3,
                                            expected_count=3)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)  # only 2 of 3 can ever arrive
        yield from ctx.na.request_free(req)
    else:
        for _ in range(2):
            yield from ctx.na.put_notify(win, np.zeros(1), 0, 0, tag=3)
    yield from win.free()
