"""Unit tests for the static race checker (:mod:`repro.analysis.races`).

Each case is a minimal inline program pinning one edge of the static
happens-before lattice: which synchronization constructs suppress a
race, which omissions surface one, and which programs fall outside the
exactly-modelled fragment (and must stay silent rather than guess).
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_file


def _races(source: str):
    findings = analyze_file("<mem>", textwrap.dedent(source))
    return [f for f in findings if f.check.startswith("race.")]


PRODUCER_CONSUMER = """
    import numpy as np

    def program(ctx):
        # analyze: nranks=2
        win = yield from ctx.win_allocate(8)
        if ctx.rank == 0:
            yield from ctx.na.put_notify(win, np.array([1.0]), 1, 0,
                                         tag=0)
            yield from win.flush(1)
        else:
            req = yield from ctx.na.notify_init(win, source=0, tag=0)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            view = win.local(np.float64, count=1, mode="r")
            yield from ctx.na.request_free(req)
        yield from win.free()
"""


def test_notification_wait_orders_view_after_put():
    assert _races(PRODUCER_CONSUMER) == []


def test_view_before_wait_is_stale():
    racy = PRODUCER_CONSUMER.replace(
        "yield from ctx.na.wait(req)\n"
        "            view = win.local(np.float64, count=1, mode=\"r\")",
        "view = win.local(np.float64, count=1, mode=\"r\")\n"
        "            yield from ctx.na.wait(req)")
    (finding,) = _races(racy)
    assert finding.check == "race.stale-view"
    assert finding.ranks == (0, 1)


def test_race_ok_waiver_suppresses():
    racy = PRODUCER_CONSUMER.replace(
        "yield from ctx.na.wait(req)\n"
        "            view = win.local(np.float64, count=1, mode=\"r\")",
        "view = win.local(np.float64, count=1, "
        "mode=\"r\")  # protocol: race-ok\n"
        "            yield from ctx.na.wait(req)")
    assert _races(racy) == []


def test_disjoint_slots_do_not_overlap():
    source = """
        import numpy as np

        def program(ctx):
            # analyze: nranks=3
            win = yield from ctx.win_allocate(16)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(win, source=1, tag=0)
                req2 = yield from ctx.na.notify_init(win, source=2,
                                                     tag=0)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                yield from ctx.na.start(req2)
                yield from ctx.na.wait(req2)
                yield from ctx.na.request_free(req)
                yield from ctx.na.request_free(req2)
            else:
                data = np.array([float(ctx.rank)])
                yield from ctx.na.put_notify(win, data, 0,
                                             (ctx.rank - 1) * 8, tag=0)
                yield from win.flush(0)
            yield from win.free()
    """
    assert _races(source) == []


def test_same_origin_small_puts_chain_in_order():
    """Two small puts from one origin to one target ride the same
    in-order channel: the second overwrites the first, deliberately."""
    source = """
        import numpy as np

        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                yield from ctx.na.put_notify(win, np.array([1.0]), 1, 0,
                                             tag=0)
                yield from ctx.na.put_notify(win, np.array([2.0]), 1, 0,
                                             tag=1)
                yield from win.flush(1)
            else:
                req = yield from ctx.na.notify_init(win, source=0, tag=1)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                yield from ctx.na.request_free(req)
            yield from win.free()
    """
    races = _races(source)
    # budget: tag-0 notification is unconsumed, but no *race*: the
    # channel orders the writes and the tag-1 wait orders the epilogue
    assert races == []


def test_different_origin_puts_to_same_slot_race():
    source = """
        import numpy as np

        from repro.mpi.constants import ANY_SOURCE

        def program(ctx):
            # analyze: nranks=3
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(win,
                                                    source=ANY_SOURCE,
                                                    tag=0)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                yield from ctx.na.request_free(req)
            else:
                data = np.array([float(ctx.rank)])
                yield from ctx.na.put_notify(win, data, 0, 0, tag=0)
                yield from win.flush(0)
            yield from win.free()
    """
    (finding,) = _races(source)
    assert finding.check == "race.overlap-write"
    assert finding.ranks == (1, 2)
    assert "bytes [0, 8)" in finding.message


def test_accumulates_commute():
    """Two unordered accumulates to the same slot are atomic: no race."""
    source = """
        import numpy as np

        from repro.mpi.constants import ANY_SOURCE

        def program(ctx):
            # analyze: nranks=3
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                req = yield from ctx.na.notify_init(win,
                                                    source=ANY_SOURCE,
                                                    tag=0)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                yield from ctx.na.request_free(req)
            else:
                data = np.array([float(ctx.rank)])
                yield from ctx.na.accumulate_notify(win, data, 0, 0,
                                                    tag=0)
                yield from win.flush(0)
            yield from win.free()
    """
    assert _races(source) == []


def test_barrier_orders_across_ranks():
    """A barrier after the producer's flush orders the consumer's view
    even without a notification."""
    source = """
        import numpy as np

        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                yield from ctx.na.put_notify(win, np.array([1.0]), 1, 0,
                                             tag=0)
                yield from win.flush(1)
            yield from ctx.barrier()
            if ctx.rank == 1:
                req = yield from ctx.na.notify_init(win, source=0, tag=0)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                view = win.local(np.float64, count=1, mode="r")
                yield from ctx.na.request_free(req)
            yield from win.free()
    """
    assert _races(source) == []


def test_unflushed_put_races_with_barrier():
    """The barrier alone does not complete an unflushed put: the
    producer's transfer may still be in flight on the other side."""
    source = """
        import numpy as np

        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                yield from ctx.na.put_notify(win, np.array([1.0]), 1, 0,
                                             tag=0)
            yield from ctx.barrier()
            if ctx.rank == 1:
                view = win.local(np.float64, count=1, mode="r")
            yield from ctx.barrier()
            if ctx.rank == 1:
                req = yield from ctx.na.notify_init(win, source=0, tag=0)
                yield from ctx.na.start(req)
                yield from ctx.na.wait(req)
                yield from ctx.na.request_free(req)
            yield from win.free()
    """
    (finding,) = _races(source)
    assert finding.check == "race.stale-view"


def test_counter_wait_orders_counted_puts():
    source = """
        import numpy as np

        def program(ctx):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                yield from ctx.counters.put_counted(win,
                                                    np.array([1.0]), 1,
                                                    0, tag=0)
                yield from win.flush(1)
            else:
                req = yield from ctx.counters.counter_init(
                    win, source=0, tag=0, expected_count=1)
                yield from ctx.counters.start(req)
                yield from ctx.counters.wait(req)
                view = win.local(np.float64, count=1, mode="r")
                yield from ctx.counters.request_free(req)
            yield from win.free()
    """
    assert _races(source) == []


def test_get_read_races_unordered_put():
    source = """
        import numpy as np

        def program(ctx):
            # analyze: nranks=3
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                put_req = yield from ctx.na.notify_init(win, source=1,
                                                        tag=0)
                get_req = yield from ctx.na.notify_init(win, source=2,
                                                        tag=1)
                yield from ctx.na.start(put_req)
                yield from ctx.na.wait(put_req)
                yield from ctx.na.start(get_req)
                yield from ctx.na.wait(get_req)
                yield from ctx.na.request_free(put_req)
                yield from ctx.na.request_free(get_req)
            elif ctx.rank == 1:
                yield from ctx.na.put_notify(win, np.array([1.0]), 0, 0,
                                             tag=0)
                yield from win.flush(0)
            else:
                buf = ctx.alloc(8)
                yield from ctx.na.get_notify(win, buf, 0, 0, nbytes=8,
                                             tag=1)
                yield from win.flush(0)
            yield from win.free()
    """
    (finding,) = _races(source)
    assert finding.check == "race.unordered-read"


def test_inexact_geometry_stays_silent():
    """Unknown transfer sizes put the program outside the modelled
    fragment: the checker reports nothing instead of guessing."""
    source = """
        def program(ctx, payload):
            # analyze: nranks=2
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                yield from ctx.na.put_notify(win, payload, 1, 0, tag=0)
            yield from win.free()
    """
    assert _races(source) == []


def test_cross_size_findings_dedupe():
    """The same defect at several instantiation sizes reports once."""
    source = """
        import numpy as np

        def program(ctx):
            # analyze: nranks=2,3
            win = yield from ctx.win_allocate(8)
            if ctx.rank == 0:
                yield from ctx.na.put_notify(win, np.array([1.0]), 1, 0,
                                             tag=0)
                yield from win.flush(1)
            elif ctx.rank == 1:
                req = yield from ctx.na.notify_init(win, source=0, tag=0)
                yield from ctx.na.start(req)
                view = win.local(np.float64, count=1, mode="r")
                yield from ctx.na.wait(req)
                yield from ctx.na.request_free(req)
            yield from win.free()
    """
    races = _races(source)
    assert len(races) == 1
    assert races[0].size == 2       # first size seen wins


def test_cli_races_filter_and_report_artifact(tmp_path, capsys):
    from repro.analysis.__main__ import main

    import os
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures", "bad_protocols",
                           "overlapping_puts.py")
    artifact = tmp_path / "findings.txt"
    code = main(["--races", "--report", str(artifact), fixture])
    assert code == 1
    out = capsys.readouterr().out
    assert "race.overlap-write" in out
    text = artifact.read_text()
    assert "race.overlap-write" in text
    # the filter drops non-race checks entirely
    assert "epoch." not in text and "budget." not in text
