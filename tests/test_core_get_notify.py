"""Notified get: consumer-managed buffering and §VIII reliability modes."""

import numpy as np

from repro.network.loggp import TransportParams
from tests.conftest import run_cluster


def test_get_notify_moves_data_and_notifies_owner():
    def prog(ctx):
        win = yield from ctx.win_allocate(256)
        if ctx.rank == 1:
            win.local(np.float64)[:8] = np.arange(8.0)
            yield from ctx.barrier()
            req = yield from ctx.na.notify_init(win, source=0, tag=2)
            yield from ctx.na.start(req)
            st = yield from ctx.na.wait(req)
            # Owner may now reuse its buffer.
            assert (st.source, st.tag, st.count) == (0, 2, 64)
            win.local(np.float64)[:8] = -1.0
            return "reused"
        yield from ctx.barrier()
        buf = ctx.alloc(64)
        yield from ctx.na.get_notify(win, buf, 1, 0, nbytes=64, tag=2)
        yield from win.flush(1)
        assert np.allclose(buf.ndarray(np.float64), np.arange(8.0))
        return "read"

    results, _ = run_cluster(2, prog)
    assert results == ["read", "reused"]


def test_reliable_notifies_before_data_arrival():
    times = {}

    def prog(ctx):
        win = yield from ctx.win_allocate(8192)
        if ctx.rank == 1:
            yield from ctx.barrier()
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            times["notified"] = ctx.now
        else:
            yield from ctx.barrier()
            buf = ctx.alloc(8192)
            yield from ctx.na.get_notify(win, buf, 1, 0, tag=1)
            yield from win.flush(1)
            times["data"] = ctx.now
        return None

    run_cluster(2, prog, params=TransportParams(reliable=True))
    assert times["notified"] < times["data"]


def test_unreliable_notifies_after_data_arrival():
    times = {}

    def prog(ctx):
        win = yield from ctx.win_allocate(8192)
        if ctx.rank == 1:
            yield from ctx.barrier()
            req = yield from ctx.na.notify_init(win, source=0, tag=1)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            times["notified"] = ctx.now
        else:
            yield from ctx.barrier()
            buf = ctx.alloc(8192)
            yield from ctx.na.get_notify(win, buf, 1, 0, tag=1)
            yield from win.flush(1)
            times["data"] = ctx.now
        return None

    run_cluster(2, prog, params=TransportParams(reliable=False))
    assert times["notified"] > times["data"]


def test_consumer_managed_buffering_pattern():
    """§VI-B: multiple producers expose data; the consumer pulls with
    notified gets, so producers never manage consumer buffers."""
    nproducers = 3

    def prog(ctx):
        win = yield from ctx.win_allocate(64)
        if ctx.rank == 0:          # consumer
            yield from ctx.barrier()
            buf = ctx.alloc(64 * nproducers)
            for p in range(1, nproducers + 1):
                yield from ctx.na.get_notify(win, buf, p, 0, nbytes=64,
                                             tag=p, local_offset=(p - 1) * 64)
            yield from win.flush_all()
            got = buf.ndarray(np.float64).reshape(nproducers, 8)
            for p in range(1, nproducers + 1):
                assert np.allclose(got[p - 1], float(p))
            return "consumed"
        # producers: expose data, then wait until it has been read.
        win.local(np.float64)[:8] = float(ctx.rank)
        yield from ctx.barrier()
        req = yield from ctx.na.notify_init(win, source=0, tag=ctx.rank)
        yield from ctx.na.start(req)
        yield from ctx.na.wait(req)
        return "drained"

    results, _ = run_cluster(nproducers + 1, prog)
    assert results[0] == "consumed"
    assert results[1:] == ["drained"] * nproducers


def test_get_notify_shm_path():
    def prog(ctx):
        win = yield from ctx.win_allocate(128)
        if ctx.rank == 1:
            win.local(np.float64)[:4] = 3.5
            yield from ctx.barrier()
            req = yield from ctx.na.notify_init(win, source=0, tag=4)
            yield from ctx.na.start(req)
            yield from ctx.na.wait(req)
            return "ok"
        yield from ctx.barrier()
        buf = ctx.alloc(32)
        yield from ctx.na.get_notify(win, buf, 1, 0, nbytes=32, tag=4)
        yield from win.flush(1)
        assert np.allclose(buf.ndarray(np.float64), 3.5)
        return "ok"

    results, _ = run_cluster(2, prog, ranks_per_node=2)
    assert results == ["ok", "ok"]
