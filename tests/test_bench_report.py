"""Table formatting and harness helpers."""

import pytest

from repro.bench.report import Table, format_table, geo_ratio


def test_table_add_and_column():
    t = Table("demo", ["a", "b"])
    t.add(1, 2.5)
    t.add(3, 4.5)
    assert t.column("b") == [2.5, 4.5]


def test_table_row_arity_checked():
    t = Table("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_format_contains_all_cells():
    t = Table("My Title", ["size", "lat"])
    t.add(8, 1.234)
    t.add(131072, 17.25)
    s = format_table(t)
    assert "My Title" in s
    assert "1.234" in s
    assert "131072" in s


def test_format_notes_appended():
    t = Table("x", ["c"], notes="shape note")
    t.add(1)
    assert "shape note" in str(t)


def test_geo_ratio():
    assert geo_ratio([2.0, 8.0], [1.0, 2.0]) == pytest.approx(
        (2.0 * 4.0) ** 0.5)
    with pytest.raises(ValueError):
        geo_ratio([], [])
    with pytest.raises(ValueError):
        geo_ratio([1.0], [0.0])


def test_experiment_registry_complete():
    from repro.bench.figures import ALL_EXPERIMENTS
    for eid in ("fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig4a",
                "fig4b", "fig4c", "fig5", "table1", "sec5"):
        assert eid in ALL_EXPERIMENTS


def test_fault_table_renders_counters_and_defaults():
    from repro.bench.report import fault_table

    rows = [
        {"mode": "na", "drop_prob": 0.0, "half_rtt_us": 1.4},
        {"mode": "na", "drop_prob": 0.1, "half_rtt_us": 2.2,
         "faults": {"drops": 5, "retries": 5, "duplicates": 1,
                    "dup_suppressed": 1, "lost_ops": 0, "delays": 3}},
    ]
    t = fault_table(rows, title="loss sweep")
    assert t.columns[:3] == ["mode", "drop_prob", "half_rtt_us"]
    assert t.column("drops") == [0, 5]       # fault-free row padded with 0
    assert t.column("retries") == [0, 5]
    assert t.column("dup_suppressed") == [0, 1]
    assert "loss sweep" in str(t)
