"""Table formatting and harness helpers."""

import pytest

from repro.bench.report import Table, format_table, geo_ratio


def test_table_add_and_column():
    t = Table("demo", ["a", "b"])
    t.add(1, 2.5)
    t.add(3, 4.5)
    assert t.column("b") == [2.5, 4.5]


def test_table_row_arity_checked():
    t = Table("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_format_contains_all_cells():
    t = Table("My Title", ["size", "lat"])
    t.add(8, 1.234)
    t.add(131072, 17.25)
    s = format_table(t)
    assert "My Title" in s
    assert "1.234" in s
    assert "131072" in s


def test_format_notes_appended():
    t = Table("x", ["c"], notes="shape note")
    t.add(1)
    assert "shape note" in str(t)


def test_geo_ratio():
    assert geo_ratio([2.0, 8.0], [1.0, 2.0]) == pytest.approx(
        (2.0 * 4.0) ** 0.5)
    with pytest.raises(ValueError):
        geo_ratio([], [])
    with pytest.raises(ValueError):
        geo_ratio([1.0], [0.0])


def test_experiment_registry_complete():
    from repro.bench.figures import ALL_EXPERIMENTS
    for eid in ("fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig4a",
                "fig4b", "fig4c", "fig5", "table1", "sec5"):
        assert eid in ALL_EXPERIMENTS
