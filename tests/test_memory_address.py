"""Address spaces, the allocator, and regions — including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, BufferError_
from repro.memory.address import AddressSpace, Region


def test_alloc_returns_aligned_region():
    space = AddressSpace(0, 4096)
    r = space.alloc(100, align=64)
    assert r.addr % 64 == 0
    assert r.nbytes == 100


def test_alloc_zero_rejected():
    space = AddressSpace(0, 4096)
    with pytest.raises(AllocationError):
        space.alloc(0)


def test_alloc_bad_alignment_rejected():
    space = AddressSpace(0, 4096)
    with pytest.raises(AllocationError):
        space.alloc(16, align=3)


def test_exhaustion_raises():
    space = AddressSpace(0, 1024)
    space.alloc(512)
    with pytest.raises(AllocationError):
        space.alloc(1024)


def test_free_allows_reuse():
    space = AddressSpace(0, 1024)
    r = space.alloc(1024, align=1)
    r.free()
    r2 = space.alloc(1024, align=1)
    assert r2.addr == 0


def test_double_free_detected():
    space = AddressSpace(0, 4096)
    r = space.alloc(64)
    space.free(r)
    with pytest.raises(AllocationError):
        space.free(r)


def test_region_free_idempotent_via_method():
    space = AddressSpace(0, 4096)
    r = space.alloc(64)
    r.free()
    r.free()    # second call is a no-op through the Region API


def test_coalescing_recovers_full_space():
    space = AddressSpace(0, 4096)
    regions = [space.alloc(256, align=1) for _ in range(16)]
    for r in regions[::2]:
        r.free()
    for r in regions[1::2]:
        r.free()
    assert space.free_bytes() == 4096
    big = space.alloc(4096, align=1)
    assert big.nbytes == 4096


def test_region_ndarray_roundtrip():
    space = AddressSpace(0, 4096)
    r = space.alloc(64)
    view = r.ndarray(np.float64)
    view[:] = np.arange(8)
    assert np.allclose(r.ndarray(np.float64), np.arange(8))
    # Writes through the view are visible in raw memory.
    assert space.copy_out(r.addr, 8).view(np.float64)[0] == 0.0


def test_region_read_write_bytes():
    space = AddressSpace(0, 4096)
    r = space.alloc(16)
    r.write(4, b"\x01\x02\x03")
    assert r.read(4, 3) == b"\x01\x02\x03"


def test_region_out_of_bounds_rejected():
    space = AddressSpace(0, 4096)
    r = space.alloc(16)
    with pytest.raises(BufferError_):
        r.read(10, 10)
    with pytest.raises(BufferError_):
        r.write(-1, b"x")
    with pytest.raises(BufferError_):
        r.ndarray(np.float64, offset=8, count=2)


def test_use_after_free_rejected():
    space = AddressSpace(0, 4096)
    r = space.alloc(16)
    r.free()
    with pytest.raises(BufferError_):
        r.read(0, 4)


def test_dma_bounds_checked():
    space = AddressSpace(0, 128)
    with pytest.raises(BufferError_):
        space.copy_in(120, np.zeros(16, np.uint8))
    with pytest.raises(BufferError_):
        space.copy_out(120, 16)


def test_foreign_region_free_rejected():
    a, b = AddressSpace(0, 1024), AddressSpace(1, 1024)
    r = a.alloc(64)
    with pytest.raises(AllocationError):
        b.free(r)


def test_peak_accounting():
    space = AddressSpace(0, 4096)
    r1 = space.alloc(1000, align=1)
    r2 = space.alloc(1000, align=1)
    r1.free()
    assert space.allocated_bytes == 1000
    assert space.peak_bytes == 2000


# -- property-based: allocator never hands out overlapping live regions ------
@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["alloc", "free"]),
              st.integers(min_value=1, max_value=512)),
    min_size=1, max_size=60))
def test_allocator_no_overlap_property(ops):
    space = AddressSpace(0, 8192)
    live: list[Region] = []
    for op, size in ops:
        if op == "alloc":
            try:
                live.append(space.alloc(size, align=8))
            except AllocationError:
                pass
        elif live:
            live.pop(size % len(live)).free()
        # Invariant: live regions are pairwise disjoint and in-bounds.
        spans = sorted((r.addr, r.end) for r in live)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0, "overlapping allocations"
        for a0, a1 in spans:
            assert 0 <= a0 and a1 <= space.size
    # Accounting matches the live set.
    assert space.allocated_bytes == sum(r.nbytes for r in live)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=256), min_size=1,
                max_size=30))
def test_alloc_free_all_restores_space(sizes):
    space = AddressSpace(0, 32768)
    regions = [space.alloc(s) for s in sizes]
    for r in regions:
        r.free()
    assert space.free_bytes() == 32768
    assert space.allocated_bytes == 0
