"""The foMPI-style API shim (Listing 1 fidelity layer)."""

import numpy as np
import pytest

from repro import fompi
from tests.conftest import run_cluster


def test_listing1_transcription_runs_and_matches_na_latency():
    """The shim adds no overhead over the native API."""
    import runpy
    from pathlib import Path
    from repro.apps.pingpong import run_pingpong

    script = (Path(__file__).resolve().parent.parent / "examples"
              / "listing1_pingpong.py")
    mod = runpy.run_path(str(script))
    results, _ = run_cluster(2, mod["program"])
    shim_lat = dict(results[0])
    native = run_pingpong("na", 64, iters=20)["half_rtt_us"]
    assert shim_lat[64] == pytest.approx(native, rel=0.02)


def test_put_get_notify_shim_roundtrip():
    def prog(ctx):
        win = yield from fompi.Win_allocate(ctx, 1024, disp_unit=8)
        if ctx.rank == 0:
            data = np.arange(16.0)
            yield from fompi.Put_notify(ctx, data, 16, np.float64, 1, 0,
                                        16, np.float64, win, 5)
            yield from fompi.Win_flush_local(ctx, 1, win)
            return "put"
        req = yield from fompi.Notify_init(ctx, win, 0, 5, 1)
        yield from fompi.Start(ctx, req)
        flag, st = yield from fompi.Test(ctx, req)
        status = yield from fompi.Wait(ctx, req)
        assert status.source == 0 and status.tag == 5
        assert np.allclose(win.local(np.float64, count=16), np.arange(16))
        yield from fompi.Request_free(ctx, req)
        return "notified"

    results, _ = run_cluster(2, prog)
    assert results == ["put", "notified"]


def test_get_notify_shim():
    def prog(ctx):
        win = yield from fompi.Win_allocate(ctx, 256, disp_unit=8)
        if ctx.rank == 1:
            win.local(np.float64)[:8] = 4.5
            yield from ctx.barrier()
            req = yield from fompi.Notify_init(ctx, win, 0, 2, 1)
            yield from fompi.Start(ctx, req)
            yield from fompi.Wait(ctx, req)
            return "buffer reusable"
        yield from ctx.barrier()
        region = ctx.alloc(64)
        yield from fompi.Get_notify(ctx, region, 8, np.float64, 1, 0, 8,
                                    np.float64, win, 2)
        yield from fompi.Win_flush(ctx, 1, win)
        assert np.allclose(region.ndarray(np.float64), 4.5)
        return "read"

    results, _ = run_cluster(2, prog)
    assert results == ["read", "buffer reusable"]


def test_size_mismatch_rejected():
    def prog(ctx):
        win = yield from fompi.Win_allocate(ctx, 256)
        yield from fompi.Put_notify(ctx, np.zeros(4), 4, np.float64,
                                    1 - ctx.rank, 0, 2, np.float64, win, 0)

    with pytest.raises(Exception):
        run_cluster(2, prog)


def test_wildcard_names_reexported():
    from repro.mpi.constants import ANY_SOURCE, ANY_TAG
    assert fompi.MPI_ANY_SOURCE == ANY_SOURCE
    assert fompi.MPI_ANY_TAG == ANY_TAG
