"""Endpoint internals: protocol error paths and bookkeeping."""

import numpy as np
import pytest

from repro.errors import MatchingError, SimulationError
from repro.mpi.endpoint import BOUNCE_BYTES, _Unexpected
from repro.network.fabric import SysPacket
from tests.conftest import run_cluster


def _lone_endpoint():
    from repro.cluster import Cluster, ClusterConfig
    cluster = Cluster(ClusterConfig(nranks=1))
    return cluster, cluster.ranks[0].endpoint


def _drive(cluster, gen):
    proc = cluster.engine.process(gen)
    cluster.engine.run(detect_deadlock=False)
    if proc.triggered and not proc.ok:
        _ = proc.value       # re-raise
    return proc.value if proc.triggered else None


def _expect_matching_error(cluster, gen):
    with pytest.raises(SimulationError) as ei:
        _drive(cluster, gen)
    assert isinstance(ei.value.__cause__, MatchingError)


def test_unknown_packet_type_rejected():
    cluster, ep = _lone_endpoint()
    ep.nic.sys_inbox.put(SysPacket("mystery", 0, 0, 8))
    _expect_matching_error(cluster, ep.progress())


def test_cts_for_unknown_send_rejected():
    cluster, ep = _lone_endpoint()
    ep.nic.sys_inbox.put(SysPacket("cts", 0, 0, 8,
                                   payload={"send_id": 999,
                                            "recv_id": 1}))
    _expect_matching_error(cluster, ep.progress())


def test_rdata_for_unknown_recv_rejected():
    cluster, ep = _lone_endpoint()
    ep.nic.sys_inbox.put(SysPacket("rdata", 0, 0, 8,
                                   payload={"recv_id": 42, "tag": 0},
                                   data=np.zeros(1, np.uint8)))
    _expect_matching_error(cluster, ep.progress())


def test_async_handled_cts_skipped_by_progress():
    cluster, ep = _lone_endpoint()
    ep.nic.sys_inbox.put(SysPacket("cts", 0, 0, 8,
                                   payload={"send_id": 999, "recv_id": 1,
                                            "async_handled": True}))
    handled = _drive(cluster, ep.progress())
    assert handled == 1                 # consumed without error


def test_bounce_buffer_wraparound():
    """Many unexpected eager messages wrap the bounce region cleanly."""
    n, doubles = 200, 512                 # 200 x 4KB, still eager-size

    def prog(ctx):
        if ctx.rank == 0:
            for i in range(n):
                yield from ctx.comm.send(np.zeros(doubles), 1, tag=i)
        else:
            yield from ctx.compute(2000.0)
            # Force everything through the unexpected path.
            st = yield from ctx.comm.iprobe()
            assert st is not None
            for i in range(n):
                buf = np.zeros(doubles)
                yield from ctx.comm.recv(buf, 0, tag=i)
            return ctx.endpoint.bounce_copies
        return None

    results, _ = run_cluster(2, prog)
    assert results[1] == n
    assert n * doubles * 8 > BOUNCE_BYTES   # the region really wrapped


def test_ctrl_counters_consumed_by_ctrl_wait():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.endpoint.ctrl_wait("pscw-test", [1],
                                              count_each=2)
            assert ctx.endpoint.ctrl_counts[("pscw-test", 1)] == 0
            return "done"
        for _ in range(2):
            h = ctx.fabric.send_sys(1, 0, "pscw-test", 16)
            yield ctx.timeout(h.cpu_busy or 0.01)
        return None

    results, _ = run_cluster(2, prog)
    assert results[0] == "done"


def test_unexpected_dataclass_defaults():
    um = _Unexpected("eager", 0, 1, 8)
    assert um.context == 0 and um.send_id is None
