"""Property: generated fault storms never lose an acked write at R >= 2.

Hypothesis generates node-failure-only :class:`~repro.faults.FaultPlan`s
— up to ``replication - 1`` server deaths at arbitrary times and
detection latencies — and runs the fault-tolerant KV service under each.
The durability invariant of the replication protocol is that an *acked*
write (the client collected its full credit count) survives any such
storm: at completion every acked record's final replica set has a live
member, so ``acked_lost`` must be exactly zero.  Value legality of every
get is checked inside the run (``verify=True``).

Run with ``--sanitize`` to layer the synchronization sanitizer's
happens-before checking over every generated storm.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.services import run_kv_ft
from repro.cluster import ClusterConfig
from repro.faults import FaultPlan


@st.composite
def _fault_storms(draw):
    nservers = draw(st.integers(min_value=3, max_value=4))
    replication = draw(st.integers(min_value=2, max_value=nservers - 1))
    ndeaths = draw(st.integers(min_value=1, max_value=replication - 1))
    victims = draw(st.lists(
        st.integers(min_value=0, max_value=nservers - 1),
        min_size=ndeaths, max_size=ndeaths, unique=True))
    # deaths land after setup (validated at runtime) and inside or just
    # past the ~8000us run, so storms hit live traffic
    times = draw(st.lists(
        st.floats(min_value=1_000.0, max_value=9_000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=ndeaths, max_size=ndeaths))
    detect_us = draw(st.floats(min_value=10.0, max_value=500.0,
                               allow_nan=False, allow_infinity=False))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return (nservers, replication,
            dict(zip(victims, times)), detect_us, seed)


@given(_fault_storms())
@settings(max_examples=10, deadline=None)
def test_fault_storm_never_loses_acked_write(storm):
    nservers, replication, deaths, detect_us, seed = storm
    nclients = 3
    cfg = ClusterConfig(
        nranks=nservers + nclients, ranks_per_node=2,
        faults=FaultPlan(node_failures=deaths, detect_us=detect_us))
    r = run_kv_ft(nservers=nservers, nclients=nclients,
                  replication=replication, reqs_per_client=8,
                  rate_rps=8_000.0, nkeys=16, ckpt_every=3,
                  verify=True, seed=seed, config=cfg)
    # the invariant under test: no acked write lost at R >= 2 with at
    # most R-1 deaths (run_kv_ft also audits that every ack had a
    # matching server-side apply, raising if not)
    assert r["acked_lost"] == 0
    assert r["completed"] + r["failed"] == r["requests"]
    # a death planned past the natural end of stream never crash-exits
    # (the server saw every EOS credit first)
    assert r["crashed"] <= len(deaths)
    assert 0.0 <= r["availability"] <= 1.0
