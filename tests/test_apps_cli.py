"""The ``python -m repro.apps`` command-line driver."""

import json

import pytest

from repro.apps.__main__ import build_parser, main


def test_every_subcommand_runs(capsys):
    cmds = [
        ["pingpong", "--mode", "na", "--size", "64", "--iters", "5"],
        ["overlap", "--mode", "na", "--size", "4096"],
        ["stencil", "--mode", "mp", "-P", "2", "--rows", "16",
         "--cols", "8", "--verify"],
        ["tree", "--mode", "na", "-P", "9", "--arity", "4", "--reps", "2"],
        ["cholesky", "--mode", "na", "-P", "2", "--ntiles", "4",
         "--tile", "8", "--verify"],
        ["halo2d", "--mode", "na", "-P", "4", "--grid", "16", "--verify"],
        ["particles", "--mode", "na", "-P", "3", "--steps", "4",
         "--verify"],
    ]
    for cmd in cmds:
        assert main(cmd) == 0, cmd
        out = capsys.readouterr().out
        assert "time_us" in out or "half_rtt_us" in out \
            or "overlap" in out, cmd


def test_json_output_parses(capsys):
    assert main(["pingpong", "--mode", "raw", "--size", "64",
                 "--iters", "3", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["mode"] == "raw" and doc["half_rtt_us"] > 0


def test_shm_flag(capsys):
    assert main(["pingpong", "--mode", "na", "--size", "64",
                 "--iters", "3", "--shm", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["same_node"] is True


def test_left_variant_flag(capsys):
    assert main(["cholesky", "--mode", "mp", "-P", "2", "--ntiles", "4",
                 "--tile", "8", "--variant", "left", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["variant"] == "left"


def test_bad_mode_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["stencil", "--mode", "bogus"])
