"""Fabric RDMA operations: data correctness, timing, notifications."""

import numpy as np
import pytest

from repro.memory.address import AddressSpace
from repro.network.cq import decode_immediate, encode_immediate
from repro.network.fabric import Fabric
from repro.network.loggp import TransportParams
from repro.network.topology import Machine
from repro.sim.engine import Engine
from repro.sim.trace import Tracer


def make_fabric(nranks=2, ranks_per_node=1, params=None, trace=False,
                seed=1):
    eng = Engine()
    machine = Machine(nranks, ranks_per_node)
    spaces = [AddressSpace(r, 1 << 20) for r in range(nranks)]
    fabric = Fabric(eng, machine, spaces, params=params or TransportParams(),
                    tracer=Tracer(enabled=trace), seed=seed)
    return eng, fabric, spaces


def test_put_moves_bytes():
    eng, fabric, spaces = make_fabric()
    data = np.arange(16, dtype=np.float64)
    h = fabric.put(0, 1, 256, data)
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[1].copy_out(256, 128).view(np.float64), data)
    assert h.local_done.processed and h.remote_done.processed


def test_put_commit_time_matches_loggp():
    p = TransportParams()
    eng, fabric, spaces = make_fabric(params=p)
    data = np.zeros(64, np.uint8)
    h = fabric.put(0, 1, 0, data)
    expected = p.fma.g + 64 * p.fma.G + p.fma.L
    assert h.commit_at == pytest.approx(expected)
    eng.run(detect_deadlock=False)


def test_put_selects_bte_above_threshold():
    p = TransportParams()
    eng, fabric, _ = make_fabric(params=p)
    small = fabric.put(0, 1, 0, np.zeros(64, np.uint8))
    big = fabric.put(0, 1, 4096, np.zeros(8192, np.uint8))
    assert fabric.nic(0).fma.stats[0] == 1
    assert fabric.nic(0).bte.stats[0] == 1
    eng.run(detect_deadlock=False)


def test_put_snapshot_isolates_source_buffer():
    eng, fabric, spaces = make_fabric()
    data = np.arange(8, dtype=np.float64)
    fabric.put(0, 1, 0, data)
    data[:] = -1          # overwrite immediately after issue
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[1].copy_out(0, 64).view(np.float64),
                       np.arange(8))


def test_notified_put_posts_immediate_at_commit():
    eng, fabric, spaces = make_fabric()
    imm = encode_immediate(0, 42)
    h = fabric.put(0, 1, 0, np.zeros(8, np.uint8), immediate=imm, win_id=5)
    eng.run(detect_deadlock=False)
    cq = fabric.nic(1).dest_cq
    entry = cq.poll()
    assert entry is not None
    assert decode_immediate(entry.immediate) == (0, 42)
    assert entry.win_id == 5
    assert entry.time == pytest.approx(h.commit_at)


def test_unnotified_put_posts_nothing():
    eng, fabric, _ = make_fabric()
    fabric.put(0, 1, 0, np.zeros(8, np.uint8))
    eng.run(detect_deadlock=False)
    assert len(fabric.nic(1).dest_cq) == 0


def test_zero_byte_notified_put():
    eng, fabric, spaces = make_fabric()
    fabric.put(0, 1, 0, np.empty(0, np.uint8),
               immediate=encode_immediate(0, 7), win_id=1)
    eng.run(detect_deadlock=False)
    entry = fabric.nic(1).dest_cq.poll()
    assert entry.nbytes == 0
    assert decode_immediate(entry.immediate) == (0, 7)


def test_shm_put_uses_ring_and_inline():
    p = TransportParams()
    eng, fabric, _ = make_fabric(ranks_per_node=2, params=p)
    fabric.put(0, 1, 0, np.zeros(16, np.uint8),
               immediate=encode_immediate(0, 1), win_id=1)
    eng.run(detect_deadlock=False)
    nic1 = fabric.nic(1)
    assert len(nic1.dest_cq) == 0
    entry = nic1.shm_ring.poll()
    assert entry.inline is not None          # 16B <= inline_max


def test_shm_large_put_not_inline():
    eng, fabric, _ = make_fabric(ranks_per_node=2)
    fabric.put(0, 1, 0, np.zeros(4096, np.uint8),
               immediate=encode_immediate(0, 1), win_id=1)
    eng.run(detect_deadlock=False)
    entry = fabric.nic(1).shm_ring.poll()
    assert entry.inline is None


def test_get_moves_bytes_back():
    eng, fabric, spaces = make_fabric()
    src = np.arange(32, dtype=np.float64)
    spaces[1].copy_in(512, src.view(np.uint8))
    fabric.get(0, 1, 512, 256, local_addr=1024)
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[0].copy_out(1024, 256).view(np.float64), src)


def test_get_snapshots_at_serve_time():
    """The value read is the value at serve, not at request issue."""
    eng, fabric, spaces = make_fabric()
    spaces[1].copy_in(0, np.full(8, 1.0).view(np.uint8))
    h = fabric.get(0, 1, 0, 64, local_addr=256)

    # Mutate the source before serve time: get must see the new value.
    def mutate():
        spaces[1].copy_in(0, np.full(8, 2.0).view(np.uint8))
    fabric._at(0.01, mutate)
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[0].copy_out(256, 64).view(np.float64), 2.0)


def test_notified_get_notifies_target_reliable():
    """On a reliable network the target is notified at serve time, before
    the data reaches the origin (§VIII case 1)."""
    eng, fabric, _ = make_fabric()
    h = fabric.get(0, 1, 0, 1024, local_addr=0,
                   immediate=encode_immediate(0, 3), win_id=1)
    eng.run(detect_deadlock=False)
    entry = fabric.nic(1).dest_cq.poll()
    assert entry is not None
    assert entry.time < h.commit_at


def test_notified_get_unreliable_waits_roundtrip():
    p = TransportParams(reliable=False)
    eng, fabric, _ = make_fabric(params=p)
    h = fabric.get(0, 1, 0, 1024, local_addr=0,
                   immediate=encode_immediate(0, 3), win_id=1)
    eng.run(detect_deadlock=False)
    entry = fabric.nic(1).dest_cq.poll()
    assert entry.time > h.commit_at    # data at origin, plus the ack back


def test_amo_fetch_add():
    eng, fabric, spaces = make_fabric()
    spaces[1].copy_in(64, np.array([10], np.int64).view(np.uint8))
    h1 = fabric.amo(0, 1, 64, "sum", 5)
    eng.run(detect_deadlock=False)
    assert h1.remote_done.value == 10
    assert spaces[1].copy_out(64, 8).view(np.int64)[0] == 15


def test_amo_cas_success_and_failure():
    eng, fabric, spaces = make_fabric()
    h = fabric.amo(0, 1, 0, "cas", 9, compare=0)
    eng.run(detect_deadlock=False)
    assert h.remote_done.value == 0
    assert spaces[1].copy_out(0, 8).view(np.int64)[0] == 9
    h2 = fabric.amo(0, 1, 0, "cas", 5, compare=0)
    eng.run(detect_deadlock=False)
    assert h2.remote_done.value == 9                      # failed compare
    assert spaces[1].copy_out(0, 8).view(np.int64)[0] == 9


def test_amo_replace_and_noop():
    eng, fabric, spaces = make_fabric()
    fabric.amo(0, 1, 0, "replace", 77)
    eng.run(detect_deadlock=False)
    h = fabric.amo(0, 1, 0, "no_op", 0)
    eng.run(detect_deadlock=False)
    assert h.remote_done.value == 77
    assert spaces[1].copy_out(0, 8).view(np.int64)[0] == 77


def test_amo_unknown_op_rejected():
    eng, fabric, _ = make_fabric()
    with pytest.raises(Exception):
        fabric.amo(0, 1, 0, "xor", 1)


def test_accumulate_sum():
    eng, fabric, spaces = make_fabric()
    spaces[1].copy_in(0, np.full(4, 1.0).view(np.uint8))
    fabric.put(0, 1, 0, np.full(4, 2.5), accumulate="sum")
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[1].copy_out(0, 32).view(np.float64), 3.5)


def test_accumulate_max_min():
    eng, fabric, spaces = make_fabric()
    spaces[1].copy_in(0, np.array([1.0, 5.0]).view(np.uint8))
    fabric.put(0, 1, 0, np.array([3.0, 3.0]), accumulate="max")
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[1].copy_out(0, 16).view(np.float64),
                       [3.0, 5.0])
    fabric.put(0, 1, 0, np.array([2.0, 2.0]), accumulate="min")
    eng.run(detect_deadlock=False)
    assert np.allclose(spaces[1].copy_out(0, 16).view(np.float64),
                       [2.0, 2.0])


def test_injection_serializes_per_engine():
    """Two back-to-back FMA puts commit g + s*G apart, not together."""
    p = TransportParams()
    eng, fabric, _ = make_fabric(params=p)
    h1 = fabric.put(0, 1, 0, np.zeros(1024, np.uint8))
    h2 = fabric.put(0, 1, 2048, np.zeros(1024, np.uint8))
    gap = p.fma.g + 1024 * p.fma.G
    assert h2.commit_at - h1.commit_at == pytest.approx(gap)
    eng.run(detect_deadlock=False)


def test_in_order_delivery_same_pair_same_engine():
    eng, fabric, _ = make_fabric()
    imm = encode_immediate(0, 0)
    times = []
    for i in range(5):
        h = fabric.put(0, 1, i * 64, np.zeros(64, np.uint8),
                       immediate=encode_immediate(0, i), win_id=1)
        times.append(h.commit_at)
    eng.run(detect_deadlock=False)
    cq = fabric.nic(1).dest_cq
    tags = [decode_immediate(cq.poll().immediate)[1] for _ in range(5)]
    assert tags == [0, 1, 2, 3, 4]
    assert times == sorted(times)


def test_drop_rate_adds_retransmission_delay():
    base = TransportParams()
    lossy = TransportParams(drop_rate=1.0, rto=50.0)   # always retransmits
    eng1, f1, _ = make_fabric(params=base)
    h1 = f1.put(0, 1, 0, np.zeros(64, np.uint8))
    eng2, f2, _ = make_fabric(params=lossy)
    h2 = f2.put(0, 1, 0, np.zeros(64, np.uint8))
    assert h2.commit_at > h1.commit_at + 40.0


def test_wire_trace_counts():
    eng, fabric, _ = make_fabric(trace=True)
    fabric.put(0, 1, 0, np.zeros(8, np.uint8))
    fabric.get(0, 1, 0, 8, local_addr=64)
    fabric.amo(0, 1, 128, "sum", 1)
    eng.run(detect_deadlock=False)
    assert fabric.tracer.wire_transactions() == 1 + 2 + 2


def test_sys_packet_delivery_and_hook():
    eng, fabric, _ = make_fabric()
    seen = []
    fabric.on_sys_arrival = lambda tgt, pkt: seen.append((tgt, pkt.ptype))
    fabric.send_sys(0, 1, "hello", 32, payload={"x": 1})
    eng.run(detect_deadlock=False)
    assert seen == [(1, "sys-hello")] or seen == [(1, "hello")]
    ok, pkt = fabric.nic(1).sys_inbox.try_get()
    assert ok and pkt.payload == {"x": 1} and pkt.source == 0
