"""Property stress tests of the DES kernel itself."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.resources import Resource, Store


@st.composite
def process_specs(draw):
    """Random set of processes, each a list of (delay, action) steps."""
    nprocs = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for _ in range(nprocs):
        steps = draw(st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=5.0,
                                allow_nan=False),
                      st.sampled_from(["sleep", "put", "get"])),
            min_size=1, max_size=8))
        specs.append(steps)
    return specs


@settings(max_examples=40, deadline=None)
@given(specs=process_specs())
def test_random_schedules_deterministic_and_monotone(specs):
    """Any random workload: time never goes backwards, two runs agree."""
    def build():
        eng = Engine()
        store = Store(eng)
        log = []
        puts = sum(1 for steps in specs for _, a in steps if a == "put")
        gets = [0]

        def proc(e, pid, steps):
            last = 0.0
            for delay, action in steps:
                yield e.timeout(delay)
                assert e.now >= last
                last = e.now
                if action == "put":
                    store.put((pid, e.now))
                elif action == "get" and gets[0] < puts:
                    gets[0] += 1
                    item = yield from store.get()
                    log.append(("got", pid, item, e.now))
                log.append((action, pid, e.now))

        for pid, steps in enumerate(specs):
            eng.process(proc(eng, pid, steps), name=f"p{pid}")
        eng.run()
        return log, eng.now

    try:
        a = build()
    except Exception:
        # A get with no matching put deadlocks; that must also be
        # deterministic.
        import pytest
        with pytest.raises(Exception):
            build()
        return
    b = build()
    assert a == b


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 3, allow_nan=False),
                          st.floats(0.1, 2, allow_nan=False)),
                min_size=1, max_size=10),
       st.integers(min_value=1, max_value=3))
def test_resource_never_oversubscribed(arrivals, capacity):
    eng = Engine()
    res = Resource(eng, capacity=capacity)
    active = [0]
    peak = [0]

    def worker(e, delay, hold):
        yield e.timeout(delay)
        yield from res.acquire()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield e.timeout(hold)
        active[0] -= 1
        res.release()

    for delay, hold in arrivals:
        eng.process(worker(eng, delay, hold))
    eng.run()
    assert peak[0] <= capacity
    assert active[0] == 0
