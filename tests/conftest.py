"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.network.loggp import TransportParams
from repro.sim.engine import Engine

pytest_plugins = ("repro.analysis.pytest_plugin",)


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="run every cluster with the synchronization sanitizer on "
             "(sets REPRO_SANITIZE=1; see docs/architecture.md)")


def pytest_configure(config):
    if config.getoption("--sanitize"):
        os.environ["REPRO_SANITIZE"] = "1"


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def params() -> TransportParams:
    return TransportParams()


def run_cluster(nranks: int, program, *, check=None, **cfg_kw):
    """Run ``program`` on a fresh cluster; returns (results, cluster)."""
    cluster = Cluster(ClusterConfig(nranks=nranks, **cfg_kw))
    results = cluster.run(program)
    if check is not None:
        check(results, cluster)
    return results, cluster


def filled(n: int, value: float = 1.0, dtype=np.float64) -> np.ndarray:
    return np.full(n, value, dtype=dtype)
