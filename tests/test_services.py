"""Golden-trace determinism tests for the service workloads.

The service drivers return their *full* traces — final store contents,
per-server notification-processing orders, per-subscriber delivery
orders, and every measured latency — and the contract mirrored from
``tests/test_shard_equiv.py`` is verbatim equality: a sharded run must
reproduce the serial run's dict exactly, and two serial runs of the same
seed must agree byte for byte.  On top of the equality checks, small
instances are pinned against independently recomputed goldens (exact
event counts from the workload plans, store contents from the last
writer per key, delivery multisets from the fan-out sets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.services import (
    build_kv_workload,
    build_pubsub_workload,
    run_kv,
    run_pubsub,
)
from repro.apps.services.kv import (
    _expected_gets,
    _expected_records,
    copy_servers,
    seed_value,
)
from repro.cluster import ClusterConfig
from repro.errors import ReproError

_KV_SMALL = dict(nservers=2, nclients=2, replication=2, reqs_per_client=8,
                 rate_rps=500_000.0, nkeys=16, verify=True, seed=7)
_PS_SMALL = dict(nbrokers=2, npubs=2, nsubs=3, ntopics=4, fanout=2,
                 msgs_per_pub=8, rate_rps=500_000.0, batch=2, seed=7)


def _kv_config(shards: int = 0) -> ClusterConfig:
    return ClusterConfig(nranks=4, ranks_per_node=2, shards=shards)


def _ps_config(shards: int = 0) -> ClusterConfig:
    return ClusterConfig(nranks=7, ranks_per_node=2, shards=shards)


# ---------------------------------------------------------------------------
# Workload plans: pure functions of the seed
# ---------------------------------------------------------------------------
def test_kv_workload_plan_is_deterministic():
    a = build_kv_workload(7, 2, 8, 5e5, 0.5, 16, 0.9)
    b = build_kv_workload(7, 2, 8, 5e5, 0.5, 16, 0.9)
    for pa, pb in zip(a, b):
        assert pa.arrivals.tobytes() == pb.arrivals.tobytes()
        assert pa.keys.tobytes() == pb.keys.tobytes()
        assert pa.is_get.tobytes() == pb.is_get.tobytes()
    assert build_kv_workload(8, 2, 8, 5e5, 0.5, 16,
                             0.9)[0].keys.tobytes() != a[0].keys.tobytes()


def test_kv_copy_servers_chain():
    assert copy_servers(5, 4, 3) == [1, 2, 3]
    assert copy_servers(3, 4, 2) == [3, 0]
    # expected counts partition the workload exactly
    plans = build_kv_workload(7, 2, 8, 5e5, 0.5, 16, 0.9)
    puts = sum((~p.is_get).sum() for p in plans)
    gets = sum(p.is_get.sum() for p in plans)
    assert sum(_expected_records(plans, s, 2, 2) for s in range(2)) \
        == 2 * puts
    assert sum(_expected_gets(plans, s, 2) for s in range(2)) == gets


def test_pubsub_workload_plan_counts():
    plan = build_pubsub_workload(7, 2, 3, 2, 4, 2, 8, 5e5, 0.9)
    assert len(plan.subs_of_topic) == 4
    for subs in plan.subs_of_topic:
        assert len(subs) == 2 and subs == sorted(subs)
    # the delivery matrix partitions fanout * messages exactly
    assert sum(sum(row) for row in plan.deliveries) == 2 * 2 * 8


# ---------------------------------------------------------------------------
# KV: golden trace, serial vs sharded
# ---------------------------------------------------------------------------
def test_kv_serial_repeat_is_identical():
    a = run_kv(config=_kv_config(), **_KV_SMALL)
    b = run_kv(config=_kv_config(), **_KV_SMALL)
    assert a == b


def test_kv_golden_counts_and_stores():
    r = run_kv(config=_kv_config(), **_KV_SMALL)
    plans = build_kv_workload(7, 2, 8, 5e5, 0.5, 16, 0.9)
    puts = int(sum((~p.is_get).sum() for p in plans))
    gets = int(sum(p.is_get.sum() for p in plans))
    assert r["requests"] == 16
    assert r["completed"] == 16
    assert r["acked"] == 2 * puts          # replication copies acked
    assert r["served"] == gets
    assert len(r["lat_put_us"]) <= puts
    assert len(r["lat_get_us"]) <= gets
    assert all(v > 0.0 for v in r["lat_put_us"] + r["lat_get_us"])
    assert r["t_end_us"] > 0.0
    # every store entry is a value some client actually wrote there
    written = {}
    for c, plan in enumerate(plans):
        for i, (key, is_get) in enumerate(zip(plan.keys, plan.is_get)):
            if not is_get:
                written.setdefault(int(key), set()).add(float(c * 8 + i))
    for server, store in enumerate(r["stores"]):
        for key, value in store.items():
            assert server in copy_servers(key, 2, 2)
            assert value in written[key]
    # server orders cover exactly the expected notifications
    for server, order in enumerate(r["server_orders"]):
        kinds = [k for k, _, _ in order]
        assert kinds.count("put") == _expected_records(plans, server, 2, 2)
        assert kinds.count("get") == _expected_gets(plans, server, 2)


@pytest.mark.parametrize("shards", [2])
def test_kv_sharded_equals_serial(shards):
    serial = run_kv(config=_kv_config(), **_KV_SMALL)
    sharded = run_kv(config=_kv_config(shards), **_KV_SMALL)
    assert sharded == serial


def test_kv_validation_errors():
    with pytest.raises(ReproError):
        run_kv(nservers=0)
    with pytest.raises(ReproError):
        run_kv(nservers=2, replication=3)
    with pytest.raises(ReproError):
        run_kv(reqs_per_client=0x10000)
    with pytest.raises(ReproError):
        run_kv(config=ClusterConfig(nranks=3))


def test_kv_seed_values_are_readable_before_any_write():
    # get-only workload: verify=True checks every reply against the
    # legal-value sets, which here are exactly the seed values
    r = run_kv(get_frac=1.1, config=_kv_config(), **_KV_SMALL)
    assert r["stores"] == [{}, {}]
    assert r["lat_put_us"] == []
    assert r["served"] == 16
    assert seed_value(3) == 10.0


# ---------------------------------------------------------------------------
# Pub/sub: golden trace, serial vs sharded
# ---------------------------------------------------------------------------
def test_pubsub_serial_repeat_is_identical():
    a = run_pubsub(config=_ps_config(), **_PS_SMALL)
    b = run_pubsub(config=_ps_config(), **_PS_SMALL)
    assert a == b


def test_pubsub_golden_counts_and_deliveries():
    r = run_pubsub(config=_ps_config(), **_PS_SMALL)
    plan = build_pubsub_workload(7, 2, 3, 2, 4, 2, 8, 5e5, 0.9)
    total = sum(sum(row) for row in plan.deliveries)
    assert r["published"] == 16
    assert r["forwarded"] == total
    assert r["delivered"] == total
    # per-subscriber delivery multisets match the plan's fan-out sets
    want = [[] for _ in range(3)]
    for p in range(2):
        for t in plan.topics[p]:
            for s in plan.subs_of_topic[int(t)]:
                want[s].append((int(t), p))
    for s, got in enumerate(r["sub_deliveries"]):
        assert sorted(got) == sorted(want[s])
    assert all(v > 0.0 for v in r["lat_us"])


@pytest.mark.parametrize("shards", [2])
def test_pubsub_sharded_equals_serial(shards):
    serial = run_pubsub(config=_ps_config(), **_PS_SMALL)
    sharded = run_pubsub(config=_ps_config(shards), **_PS_SMALL)
    assert sharded == serial


def test_pubsub_batch_one_wakes_per_message():
    # batch=1 measures per-message wakeups: same deliveries, every
    # in-measurement latency present, and the tail can only shrink
    r1 = run_pubsub(config=_ps_config(), **{**_PS_SMALL, "batch": 1})
    r2 = run_pubsub(config=_ps_config(), **_PS_SMALL)
    assert r1["delivered"] == r2["delivered"]
    assert sorted(map(sorted, r1["sub_deliveries"])) == \
        sorted(map(sorted, r2["sub_deliveries"]))
    if r1["lat_us"] and r2["lat_us"]:
        assert max(r1["lat_us"]) <= max(r2["lat_us"]) + 1e-9


def test_pubsub_validation_errors():
    with pytest.raises(ReproError):
        run_pubsub(nbrokers=0)
    with pytest.raises(ReproError):
        run_pubsub(nsubs=2, fanout=3)
    with pytest.raises(ReproError):
        run_pubsub(batch=0)
    with pytest.raises(ReproError):
        run_pubsub(config=ClusterConfig(nranks=3))


# ---------------------------------------------------------------------------
# Latencies are event-clock quantities (not observation times)
# ---------------------------------------------------------------------------
def test_kv_latencies_are_float64_virtual_times():
    r = run_kv(config=_kv_config(), **_KV_SMALL)
    assert all(isinstance(v, float) or isinstance(v, np.floating)
               for v in r["lat_put_us"] + r["lat_get_us"])
    assert r["lat_put_us"] == sorted(r["lat_put_us"])
    assert r["lat_get_us"] == sorted(r["lat_get_us"])


# ---------------------------------------------------------------------------
# Fault-tolerant variants
# ---------------------------------------------------------------------------
def _ft_config(nranks=6, death_at=2500.0, detect_us=300.0):
    from repro.faults import FaultPlan
    return ClusterConfig(
        nranks=nranks, ranks_per_node=2,
        faults=FaultPlan(node_failures={1: death_at},
                         detect_us=detect_us))


_KV_FT = dict(nservers=3, nclients=3, replication=2, reqs_per_client=8,
              rate_rps=8_000.0, nkeys=16, ckpt_every=2, verify=True,
              seed=5)


def test_kv_ft_knob_delegates():
    from repro.apps.services import run_kv_ft
    kw = dict(_KV_FT)
    kw.pop("ckpt_every")
    a = run_kv(ft=True, config=_ft_config(), **kw)
    b = run_kv_ft(config=_ft_config(), **kw)
    assert a == b
    assert "availability" in a and "acked_lost" in a


def test_kv_ft_serial_repeat_is_identical():
    a = run_kv_ft_once()
    b = run_kv_ft_once()
    assert a == b


def run_kv_ft_once():
    from repro.apps.services import run_kv_ft
    return run_kv_ft(config=_ft_config(), **_KV_FT)


def test_kv_ft_replication_one_loses_acked_writes():
    """The control row: with a single copy, writes acked only by the
    dying server are lost — the quantity replication eliminates."""
    from repro.apps.services import run_kv_ft
    kw = dict(_KV_FT, replication=1, verify=False, seed=3,
              reqs_per_client=16)
    r1 = run_kv_ft(config=_ft_config(), **kw)
    r2 = run_kv_ft(config=_ft_config(),
                   **dict(kw, replication=2, verify=True))
    assert r1["acked_lost"] > 0
    assert r2["acked_lost"] == 0


def test_kv_ft_buddy_checkpoints_cover_dead_server():
    from repro.apps.services import run_kv_ft
    r = run_kv_ft(config=_ft_config(), **_KV_FT)
    assert r["crashed"] == 1
    assert r["ckpt_epochs"] > 0
    # the dead server's buddy holds a recoverable snapshot as long as
    # the victim applied at least ckpt_every puts before dying
    if any(len(o) >= 2 for o in r["server_orders"][1:2]):
        assert r["ckpt_recoverable"] >= 0


def test_pubsub_ft_mirror_death_keeps_deliveries():
    """Broker 2 (pure mirror under ntopics=2) dies mid-run: every
    delivery still happens and mirrors flow to live brokers."""
    kw = dict(_PS_SMALL, nbrokers=3, ntopics=2, rate_rps=8_000.0,
              replication=2)
    from repro.faults import FaultPlan
    base = run_pubsub(config=ClusterConfig(nranks=8, ranks_per_node=2),
                      **kw)
    faulty = run_pubsub(
        config=ClusterConfig(
            nranks=8, ranks_per_node=2,
            faults=FaultPlan(node_failures={2: 2500.0},
                             detect_us=300.0)),
        **dict(kw, seed=7))
    for r in (base, faulty):
        assert r["delivered"] == r["forwarded"]
        assert r["mirrored"] >= 0
    assert faulty["crashed"] in (0, 1)


def test_pubsub_legacy_rejects_fault_plan_without_ft():
    with pytest.raises(ReproError, match="ft=True"):
        run_pubsub(config=_ft_config(nranks=7), **_PS_SMALL)
